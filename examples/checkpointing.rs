//! Checkpointing: train RRRE, save the weights, restore them into a fresh
//! model and verify bit-identical predictions — the deployment workflow.
//!
//! ```sh
//! cargo run --release --example checkpointing
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rrre::prelude::*;

fn main() {
    let dataset = generate(&SynthConfig::yelp_chi().scaled(0.08));
    let corpus = EncodedCorpus::build(&dataset, &CorpusConfig::default());
    let mut rng = StdRng::seed_from_u64(99);
    let split = train_test_split(&dataset, 0.3, &mut rng);

    let cfg = RrreConfig { epochs: 6, k: 32, ..Default::default() };
    println!("training…");
    let model = Rrre::fit(&dataset, &corpus, &split.train, cfg);
    println!(
        "trained model: {} parameters ({} scalars)",
        model.params().len(),
        model.params().num_scalars()
    );

    let path = std::env::temp_dir().join("rrre-demo.rrrp");
    model.save_weights(&path).expect("save");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("checkpoint written: {} ({bytes} bytes)", path.display());

    // A fresh model with a different seed — different weights…
    println!("training a decoy with a different seed…");
    let mut restored = Rrre::fit(
        &dataset,
        &corpus,
        &split.train,
        RrreConfig { seed: cfg.seed ^ 0xBEEF, epochs: 1, ..cfg },
    );
    let probe = (dataset.reviews[0].user, dataset.reviews[0].item);
    let before = restored.predict(&corpus, probe.0, probe.1);
    // …until the checkpoint restores the original brain.
    restored.load_weights(&path, &corpus).expect("load");
    let after = restored.predict(&corpus, probe.0, probe.1);
    let original = model.predict(&corpus, probe.0, probe.1);

    println!("decoy prediction   : rating {:.4}, reliability {:.4}", before.rating, before.reliability);
    println!("restored prediction: rating {:.4}, reliability {:.4}", after.rating, after.reliability);
    println!("original prediction: rating {:.4}, reliability {:.4}", original.rating, original.reliability);
    assert_eq!(after, original, "restored model must match the original bit-for-bit");
    println!("restored == original ✓");
    std::fs::remove_file(&path).ok();
}
