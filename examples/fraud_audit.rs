//! Fraud audit: run all four reliability methods of the paper's Table IV on
//! one dataset, compare AUC / average precision, and surface the most
//! suspicious reviews each method flags.
//!
//! ```sh
//! cargo run --release --example fraud_audit
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rrre::baselines::reliability::{Icwsm13, Rev2, Rev2Config, SpEagle, SpEagleConfig};
use rrre::prelude::*;

fn main() {
    let dataset = generate(&SynthConfig::yelp_chi().scaled(0.15));
    let corpus = EncodedCorpus::build(&dataset, &CorpusConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let split = train_test_split(&dataset, 0.3, &mut rng);
    let labels: Vec<bool> = split.test.iter().map(|&i| dataset.reviews[i].label.is_benign()).collect();

    println!(
        "auditing {} ({} reviews, {:.1}% fake)\n",
        dataset.name,
        dataset.len(),
        dataset.fake_fraction() * 100.0
    );
    println!("{:<10} {:>7} {:>12}", "method", "AUC", "AP(benign)");

    // ICWSM13: behavioural features + logistic regression.
    let icwsm = Icwsm13::fit(&dataset, &corpus, &split.train);
    let s_icwsm = icwsm.score(&dataset, &corpus, &split.test);
    report("ICWSM13", &s_icwsm, &labels);

    // SpEagle+: supervised belief propagation over the review network.
    let speagle = SpEagle::run(&dataset, &corpus, &split.train, SpEagleConfig::default());
    let s_speagle = speagle.score(&split.test);
    report("SpEagle+", &s_speagle, &labels);

    // REV2: fairness/goodness/reliability fixed point (no supervision).
    let rev2 = Rev2::run(&dataset, Rev2Config::default());
    let s_rev2 = rev2.score(&split.test);
    report("REV2", &s_rev2, &labels);

    // RRRE: the joint model's reliability head.
    let model = Rrre::fit(&dataset, &corpus, &split.train, RrreConfig { epochs: 10, k: 32, ..Default::default() });
    let s_rrre: Vec<f32> = model
        .predict_reviews(&dataset, &corpus, &split.test)
        .iter()
        .map(|p| p.reliability)
        .collect();
    report("RRRE", &s_rrre, &labels);

    // Show RRRE's three most-suspicious test reviews.
    let mut order: Vec<usize> = (0..split.test.len()).collect();
    order.sort_by(|&a, &b| s_rrre[a].total_cmp(&s_rrre[b]));
    println!("\nRRRE's most suspicious test reviews:");
    for &pos in order.iter().take(3) {
        let review = &dataset.reviews[split.test[pos]];
        println!(
            "  reliability {:.3} | true label {:?} | rating {} | \"{}\"",
            s_rrre[pos],
            review.label,
            review.rating,
            &review.text[..review.text.len().min(70)]
        );
    }
}

fn report(name: &str, scores: &[f32], labels: &[bool]) {
    println!("{:<10} {:>7.3} {:>12.3}", name, auc(scores, labels), average_precision(scores, labels));
}
