//! Quickstart: generate a fraud-labelled review dataset, train RRRE, and
//! produce a recommendation with a reliable review-level explanation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rrre::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. A small YelpChi-shaped dataset (13.2 % fake reviews from campaigns).
    let dataset = generate(&SynthConfig::yelp_chi().scaled(0.2));
    println!(
        "dataset: {} — {} reviews, {} users, {} items, {:.1}% fake",
        dataset.name,
        dataset.len(),
        dataset.n_users,
        dataset.n_items,
        dataset.fake_fraction() * 100.0
    );

    // 2. Text pipeline: tokenize, build the vocabulary, pretrain word
    //    vectors (from-scratch skip-gram), encode each review.
    let corpus = EncodedCorpus::build(&dataset, &CorpusConfig::default());
    println!("vocabulary: {} words, {}-d pretrained vectors", corpus.vocab.len(), corpus.embed_dim());

    // 3. The paper's 70/30 protocol.
    let mut rng = StdRng::seed_from_u64(42);
    let split = train_test_split(&dataset, 0.3, &mut rng);

    // 4. Train RRRE: joint rating + reliability prediction.
    let cfg = RrreConfig { k: 32, ..Default::default() };
    let model = Rrre::fit(&dataset, &corpus, &split.train, cfg);

    // 5. Evaluate both tasks on the test split.
    let preds = model.predict_reviews(&dataset, &corpus, &split.test);
    let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
    let reliabilities: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
    let targets: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].rating).collect();
    let weights: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].label.as_f32()).collect();
    let labels: Vec<bool> = split.test.iter().map(|&i| dataset.reviews[i].label.is_benign()).collect();
    println!("test bRMSE        = {:.3}", brmse(&ratings, &targets, &weights));
    println!("test reliability AUC = {:.3}", auc(&reliabilities, &labels));
    println!("test NDCG@50      = {:.3}", ndcg_at_k(&reliabilities, &labels, 50));

    // 6. Recommend for a user and explain with reliable reviews (§III-B).
    let user = dataset.reviews[split.test[0]].user;
    println!("\nrecommendations for {}:", dataset.user_name(user));
    let recs = recommend(&model, &dataset, &corpus, user, 3);
    for r in &recs {
        println!("  {:<22} rating {:.2}  reliability {:.2}", r.item_name, r.rating, r.reliability);
    }
    let top = &recs[0];
    println!("\nreliable explanations for '{}':", top.item_name);
    for e in explain(&model, &dataset, &corpus, top.item, 2) {
        let marker = if e.filtered { " [filtered: low reliability]" } else { "" };
        println!(
            "  {} (rating {:.2}, reliability {:.2}){marker}\n    \"{}\"",
            e.user_name,
            e.rating,
            e.reliability,
            &e.text[..e.text.len().min(90)]
        );
    }
}
