//! Dataset report: generate all five presets (Table II shapes), print their
//! statistics, and contrast benign vs fake review text and rating bias —
//! the signals every detection method in this workspace keys on.
//!
//! ```sh
//! cargo run --release --example dataset_report
//! ```

use rrre::data::stats::dataset_stats;
use rrre::data::Label;
use rrre::prelude::*;

fn main() {
    println!(
        "{:<14} {:>8} {:>7} {:>7} {:>8} {:>9} {:>9} {:>11} {:>10}",
        "dataset", "reviews", "%fake", "items", "users", "med|W^u|", "med|W^i|", "benign-avg", "fake-avg"
    );
    for preset in SynthConfig::all_presets() {
        let ds = generate(&preset.scaled(0.1));
        let s = dataset_stats(&ds);
        println!(
            "{:<14} {:>8} {:>6.1}% {:>7} {:>8} {:>9} {:>9} {:>11.2} {:>10.2}",
            s.name,
            s.n_reviews,
            s.fake_pct,
            s.n_items,
            s.n_users,
            s.median_user_degree,
            s.median_item_degree,
            s.benign_mean_rating,
            s.fake_mean_rating
        );
    }

    // Show what the two classes actually look like.
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
    let benign = ds.reviews.iter().find(|r| r.label == Label::Benign).expect("benign review");
    let fake = ds.reviews.iter().find(|r| r.label == Label::Fake).expect("fake review");
    println!("\nsample benign review (rating {}):\n  \"{}\"", benign.rating, benign.text);
    println!("\nsample fake review (rating {}):\n  \"{}\"", fake.rating, fake.text);

    // Fakes oppose item quality: show the rating gap on campaign targets.
    let index = ds.index();
    let mut printed = 0;
    println!("\ncampaign targets (benign mean vs fake mean per item):");
    for item in 0..ds.n_items {
        let item = ItemId(item as u32);
        let revs = index.item_reviews(item);
        let (mut b_sum, mut b_n, mut f_sum, mut f_n) = (0.0, 0usize, 0.0, 0usize);
        for &ri in revs {
            let r = &ds.reviews[ri];
            match r.label {
                Label::Benign => {
                    b_sum += r.rating;
                    b_n += 1;
                }
                Label::Fake => {
                    f_sum += r.rating;
                    f_n += 1;
                }
            }
        }
        if b_n >= 3 && f_n >= 3 {
            println!(
                "  {:<22} benign {:.2} ({b_n}) vs fake {:.2} ({f_n})",
                ds.item_name(item),
                b_sum / b_n as f32,
                f_sum / f_n as f32
            );
            printed += 1;
            if printed >= 5 {
                break;
            }
        }
    }
}
