//! Semi-supervised reliability learning — the paper's §V future-work item,
//! implemented via `RrreConfig::labeled_fraction`: only a fraction of
//! training reviews keep their reliability label; unlabelled examples skip
//! the cross-entropy loss and gate their rating loss by the model's own
//! reliability estimate (self-training).
//!
//! ```sh
//! cargo run --release --example semi_supervised
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rrre::prelude::*;

fn main() {
    let dataset = generate(&SynthConfig::yelp_chi().scaled(0.12));
    let corpus = EncodedCorpus::build(&dataset, &CorpusConfig::default());
    let mut rng = StdRng::seed_from_u64(23);
    let split = train_test_split(&dataset, 0.3, &mut rng);
    let labels: Vec<bool> = split.test.iter().map(|&i| dataset.reviews[i].label.is_benign()).collect();
    let targets: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].rating).collect();
    let weights: Vec<f32> = split.test.iter().map(|&i| dataset.reviews[i].label.as_f32()).collect();

    println!("{:<18} {:>10} {:>10}", "labels available", "AUC", "bRMSE");
    for labeled_fraction in [1.0f32, 0.5, 0.25, 0.1] {
        let cfg = RrreConfig { epochs: 10, k: 32, labeled_fraction, ..Default::default() };
        let model = Rrre::fit(&dataset, &corpus, &split.train, cfg);
        let preds = model.predict_reviews(&dataset, &corpus, &split.test);
        let rels: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
        let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
        println!(
            "{:<18} {:>10.3} {:>10.3}",
            format!("{:.0}%", labeled_fraction * 100.0),
            auc(&rels, &labels),
            brmse(&ratings, &targets, &weights)
        );
    }
    println!("\nEven with a quarter of the labels, the reliability head keeps most of");
    println!("its ranking power — the text signal does the heavy lifting.");
}
