//! Explainable recommendation deep-dive: reproduce the paper's §IV-F case
//! study flow end-to-end and inspect the fraud-attention weights — *which*
//! of a user's reviews shaped their profile.
//!
//! ```sh
//! cargo run --release --example explainable_recommendation
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rrre::prelude::*;

fn main() {
    let dataset = generate(&SynthConfig::yelp_chi().scaled(0.12));
    let corpus = EncodedCorpus::build(&dataset, &CorpusConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    let split = train_test_split(&dataset, 0.3, &mut rng);
    let model = Rrre::fit(&dataset, &corpus, &split.train, RrreConfig { epochs: 12, k: 32, ..Default::default() });

    // Pick an active user.
    let index = dataset.index();
    let user = (0..dataset.n_users)
        .map(|u| UserId(u as u32))
        .max_by_key(|&u| index.user_reviews(u).len())
        .expect("non-empty dataset");
    println!(
        "user {} wrote {} reviews",
        dataset.user_name(user),
        index.user_reviews(user).len()
    );

    // Step 1 (§III-B): candidate set by predicted rating, re-ranked by
    // reliability.
    let recs = recommend(&model, &dataset, &corpus, user, 3);
    println!("\ntop-3 candidates (reliability-ordered):");
    for r in &recs {
        println!("  {:<22} rating {:.2}  reliability {:.2}", r.item_name, r.rating, r.reliability);
    }
    let chosen = &recs[0];

    // Step 2: reliable explanations for the winning item; low-reliability
    // reviews are filtered exactly as in Table VIII.
    println!("\nexplanations for '{}':", chosen.item_name);
    for e in explain(&model, &dataset, &corpus, chosen.item, 3) {
        let verdict = if e.filtered { "FILTERED (low reliability)" } else { "shown to customer" };
        println!(
            "  [{verdict}] {} — pred rating {:.2}, pred reliability {:.2}\n    \"{}\"",
            e.user_name,
            e.rating,
            e.reliability,
            &e.text[..e.text.len().min(80)]
        );
    }

    // Step 3: open the hood — the fraud-attention weights over the user's
    // own reviews for this target item (Eq. 5–6).
    let (review_indices, weights) = model.user_attention(&corpus, user, chosen.item);
    println!("\nfraud-attention over {}'s reviews w.r.t. '{}':", dataset.user_name(user), chosen.item_name);
    for (&ri, &w) in review_indices.iter().zip(&weights) {
        let review = &dataset.reviews[ri];
        println!(
            "  weight {:.3} | {:?} | rating {} on {} | \"{}\"",
            w,
            review.label,
            review.rating,
            dataset.item_name(review.item),
            &review.text[..review.text.len().min(50)]
        );
    }
}
