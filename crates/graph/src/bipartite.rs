//! Bipartite user–item review graph in CSR-like form.
//!
//! Nodes are users and items; edges are reviews. The graph stores, per user
//! and per item, the indices of incident reviews, plus per-edge endpoints —
//! the structure both SpEagle-style belief propagation and REV2's
//! fixed-point iterations walk.

use rrre_data::{Dataset, ItemId, UserId};

/// One edge (review) of the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Authoring user.
    pub user: UserId,
    /// Reviewed item.
    pub item: ItemId,
    /// Star rating of the review.
    pub rating: f32,
    /// Index of the review in the originating dataset.
    pub review_idx: usize,
}

/// The bipartite review graph over a subset of a dataset's reviews.
#[derive(Debug, Clone)]
pub struct ReviewGraph {
    n_users: usize,
    n_items: usize,
    edges: Vec<Edge>,
    user_edges: Vec<Vec<usize>>,
    item_edges: Vec<Vec<usize>>,
}

impl ReviewGraph {
    /// Builds the graph from the listed review indices of a dataset (e.g. a
    /// training split). Users/items keep the dataset's dense id space.
    pub fn from_dataset(ds: &Dataset, review_indices: &[usize]) -> Self {
        let mut edges = Vec::with_capacity(review_indices.len());
        let mut user_edges: Vec<Vec<usize>> = vec![Vec::new(); ds.n_users];
        let mut item_edges: Vec<Vec<usize>> = vec![Vec::new(); ds.n_items];
        for &ri in review_indices {
            let r = &ds.reviews[ri];
            let e = edges.len();
            edges.push(Edge { user: r.user, item: r.item, rating: r.rating, review_idx: ri });
            user_edges[r.user.index()].push(e);
            item_edges[r.item.index()].push(e);
        }
        Self { n_users: ds.n_users, n_items: ds.n_items, edges, user_edges, item_edges }
    }

    /// Number of user nodes.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of item nodes.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge indices incident to a user.
    pub fn user_edges(&self, user: UserId) -> &[usize] {
        &self.user_edges[user.index()]
    }

    /// Edge indices incident to an item.
    pub fn item_edges(&self, item: ItemId) -> &[usize] {
        &self.item_edges[item.index()]
    }

    /// Degree of a user node.
    pub fn user_degree(&self, user: UserId) -> usize {
        self.user_edges[user.index()].len()
    }

    /// Degree of an item node.
    pub fn item_degree(&self, item: ItemId) -> usize {
        self.item_edges[item.index()].len()
    }

    /// Mean rating over an item's incident edges (`None` if isolated).
    pub fn item_mean_rating(&self, item: ItemId) -> Option<f32> {
        let es = self.item_edges(item);
        if es.is_empty() {
            return None;
        }
        Some(es.iter().map(|&e| self.edges[e].rating).sum::<f32>() / es.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::{Label, Review};

    fn dataset() -> Dataset {
        let reviews = vec![
            Review { user: UserId(0), item: ItemId(0), rating: 5.0, label: Label::Benign, timestamp: 0, text: String::new() },
            Review { user: UserId(0), item: ItemId(1), rating: 1.0, label: Label::Fake, timestamp: 1, text: String::new() },
            Review { user: UserId(1), item: ItemId(0), rating: 3.0, label: Label::Benign, timestamp: 2, text: String::new() },
        ];
        Dataset::new("t", 2, 2, reviews)
    }

    #[test]
    fn builds_adjacency() {
        let ds = dataset();
        let g = ReviewGraph::from_dataset(&ds, &[0, 1, 2]);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.user_degree(UserId(0)), 2);
        assert_eq!(g.item_degree(ItemId(0)), 2);
        assert_eq!(g.user_edges(UserId(1)), &[2]);
    }

    #[test]
    fn subset_respected() {
        let ds = dataset();
        let g = ReviewGraph::from_dataset(&ds, &[0, 2]);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.user_degree(UserId(0)), 1);
        assert_eq!(g.edges()[1].review_idx, 2);
    }

    #[test]
    fn item_mean_rating() {
        let ds = dataset();
        let g = ReviewGraph::from_dataset(&ds, &[0, 1, 2]);
        assert_eq!(g.item_mean_rating(ItemId(0)), Some(4.0));
        let g2 = ReviewGraph::from_dataset(&ds, &[0]);
        assert_eq!(g2.item_mean_rating(ItemId(1)), None);
    }
}
