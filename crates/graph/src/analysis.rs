//! Structural analysis of the review graph: connected components, density
//! and k-core decomposition — the sparsity diagnostics behind the paper's
//! "low degree of users and items leads to a sparse network" discussion of
//! REV2/SpEagle behaviour.

use crate::bipartite::ReviewGraph;
use rrre_data::{ItemId, UserId};

/// Node handle in the unified (users-then-items) node space.
fn user_node(u: usize) -> usize {
    u
}
fn item_node(g: &ReviewGraph, i: usize) -> usize {
    g.n_users() + i
}

/// Connected-component labelling of the bipartite graph.
///
/// Returns `(labels, n_components)` where `labels[node]` identifies the
/// component of each user (`0..n_users`) and item (`n_users..n_users+n_items`).
/// Isolated nodes (no reviews) each form their own component.
pub fn connected_components(g: &ReviewGraph) -> (Vec<usize>, usize) {
    let n = g.n_users() + g.n_items();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = next;
        stack.push(start);
        while let Some(node) = stack.pop() {
            let edges: &[usize] = if node < g.n_users() {
                g.user_edges(UserId(node as u32))
            } else {
                g.item_edges(ItemId((node - g.n_users()) as u32))
            };
            for &e in edges {
                let edge = g.edges()[e];
                for neighbour in [user_node(edge.user.index()), item_node(g, edge.item.index())] {
                    if labels[neighbour] == usize::MAX {
                        labels[neighbour] = next;
                        stack.push(neighbour);
                    }
                }
            }
        }
        next += 1;
    }
    (labels, next)
}

/// Size of the largest connected component (in nodes).
pub fn largest_component_size(g: &ReviewGraph) -> usize {
    let (labels, n_components) = connected_components(g);
    let mut sizes = vec![0usize; n_components];
    for &l in &labels {
        sizes[l] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Bipartite density: edges / (users × items).
pub fn density(g: &ReviewGraph) -> f64 {
    let cells = g.n_users() as f64 * g.n_items() as f64;
    if cells == 0.0 {
        0.0
    } else {
        g.n_edges() as f64 / cells
    }
}

/// K-core decomposition: the core number of every node — the largest `k`
/// such that the node survives in the subgraph where every node has degree
/// ≥ `k`. Fraud rings appear as unusually dense cores.
///
/// Returns core numbers indexed like [`connected_components`]'s labels.
pub fn core_numbers(g: &ReviewGraph) -> Vec<usize> {
    let n = g.n_users() + g.n_items();
    let mut degree: Vec<usize> = (0..n)
        .map(|node| {
            if node < g.n_users() {
                g.user_degree(UserId(node as u32))
            } else {
                g.item_degree(ItemId((node - g.n_users()) as u32))
            }
        })
        .collect();
    // Peeling with a bucket queue over degrees.
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (node, &d) in degree.iter().enumerate() {
        buckets[d].push(node);
    }
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut k = 0usize;
    // Peel from the lowest available degree; buckets can refill below the
    // cursor as neighbours' degrees drop, so the cursor moves both ways.
    let mut cursor = 0;
    while cursor <= max_deg {
        let Some(node) = buckets[cursor].pop() else {
            cursor += 1;
            continue;
        };
        if removed[node] || degree[node] != cursor {
            continue; // stale entry from an earlier degree
        }
        k = k.max(cursor);
        core[node] = k;
        removed[node] = true;
        let edges: Vec<usize> = if node < g.n_users() {
            g.user_edges(UserId(node as u32)).to_vec()
        } else {
            g.item_edges(ItemId((node - g.n_users()) as u32)).to_vec()
        };
        for e in edges {
            let edge = g.edges()[e];
            let other = if node < g.n_users() {
                item_node(g, edge.item.index())
            } else {
                user_node(edge.user.index())
            };
            if !removed[other] && degree[other] > 0 {
                degree[other] -= 1;
                buckets[degree[other]].push(other);
                cursor = cursor.min(degree[other]);
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::{Dataset, Label, Review};

    fn dataset(pairs: &[(u32, u32)], n_users: usize, n_items: usize) -> Dataset {
        let reviews = pairs
            .iter()
            .enumerate()
            .map(|(i, &(u, it))| Review {
                user: UserId(u),
                item: ItemId(it),
                rating: 3.0,
                label: Label::Benign,
                timestamp: i as i64,
                text: String::new(),
            })
            .collect();
        Dataset::new("t", n_users, n_items, reviews)
    }

    fn graph(pairs: &[(u32, u32)], n_users: usize, n_items: usize) -> ReviewGraph {
        let ds = dataset(pairs, n_users, n_items);
        let all: Vec<usize> = (0..ds.len()).collect();
        ReviewGraph::from_dataset(&ds, &all)
    }

    #[test]
    fn components_split_disconnected_blocks() {
        // users 0,1 ↔ item 0; user 2 ↔ item 1; user 3 and item 2 isolated.
        let g = graph(&[(0, 0), (1, 0), (2, 1)], 4, 3);
        let (labels, n) = connected_components(&g);
        assert_eq!(n, 4); // block A, block B, isolated user, isolated item
        assert_eq!(labels[0], labels[1]); // users 0,1 together
        assert_eq!(labels[0], labels[4]); // with item 0 (node 4)
        assert_ne!(labels[0], labels[2]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn density_known_value() {
        let g = graph(&[(0, 0), (1, 0)], 2, 2);
        assert!((density(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn core_numbers_peel_stars_before_cliques() {
        // A biclique K2,2 (core 2) plus a pendant user on item 0 (core 1).
        let g = graph(&[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)], 3, 2);
        let cores = core_numbers(&g);
        assert_eq!(cores[2], 1, "pendant user");
        assert_eq!(cores[0], 2);
        assert_eq!(cores[1], 2);
        assert_eq!(cores[3], 2); // item 0
        assert_eq!(cores[4], 2); // item 1
    }

    /// Reference k-core by the definition: for ascending `k`, repeatedly
    /// delete nodes of degree < `k`; a node's core number is the last `k`
    /// at which it survived.
    fn reference_core_numbers(g: &ReviewGraph) -> Vec<usize> {
        let n = g.n_users() + g.n_items();
        // adjacency as node -> multiset of neighbours
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in g.edges() {
            let u = e.user.index();
            let i = g.n_users() + e.item.index();
            adj[u].push(i);
            adj[i].push(u);
        }
        let mut core = vec![0usize; n];
        let max_deg = adj.iter().map(Vec::len).max().unwrap_or(0);
        for k in 1..=max_deg {
            let mut alive: Vec<bool> = adj.iter().map(|a| !a.is_empty()).collect();
            let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for node in 0..n {
                    if alive[node] && degree[node] < k {
                        alive[node] = false;
                        changed = true;
                        for &nb in &adj[node] {
                            if alive[nb] {
                                degree[nb] -= 1;
                            }
                        }
                    }
                }
            }
            for node in 0..n {
                if alive[node] {
                    core[node] = k;
                }
            }
        }
        core
    }

    #[test]
    fn core_numbers_match_reference_on_generated_graph() {
        use rrre_data::synth::{generate, SynthConfig};
        let ds = generate(&SynthConfig::cds().scaled(0.05));
        let all: Vec<usize> = (0..ds.len()).collect();
        let g = ReviewGraph::from_dataset(&ds, &all);
        let fast = core_numbers(&g);
        let reference = reference_core_numbers(&g);
        assert_eq!(fast, reference);
    }

    #[test]
    fn core_numbers_zero_for_isolated() {
        let g = graph(&[(0, 0)], 2, 1);
        let cores = core_numbers(&g);
        assert_eq!(cores[1], 0); // isolated user
        assert_eq!(cores[0], 1);
    }
}
