//! Loopy belief propagation over a pairwise Markov random field with binary
//! node states — the inference engine behind the SpEagle+/FraudEagle
//! baseline.
//!
//! Nodes carry prior potentials over two states; edges carry `2 × 2`
//! compatibility tables. Messages are updated synchronously with damping
//! until the maximum message change falls below a tolerance.

/// A pairwise MRF with binary states.
#[derive(Debug, Clone, Default)]
pub struct BpNetwork {
    priors: Vec<[f64; 2]>,
    edges: Vec<BpEdge>,
    /// Edge indices incident to each node.
    adjacency: Vec<Vec<usize>>,
}

/// One undirected edge with its compatibility table `psi[state_a][state_b]`.
#[derive(Debug, Clone, Copy)]
pub struct BpEdge {
    /// First endpoint.
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Compatibility `psi[sa][sb]`.
    pub psi: [[f64; 2]; 2],
}

/// Result of a BP run.
#[derive(Debug, Clone)]
pub struct BpResult {
    /// Posterior marginal per node (normalised over the two states).
    pub beliefs: Vec<[f64; 2]>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the message updates converged within tolerance.
    pub converged: bool,
}

impl BpNetwork {
    /// Creates a network with `n` nodes and uniform priors.
    pub fn new(n: usize) -> Self {
        Self { priors: vec![[0.5, 0.5]; n], edges: Vec::new(), adjacency: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.priors.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sets a node's prior (need not be normalised; must be non-negative and
    /// not both zero).
    ///
    /// # Panics
    /// Panics on an invalid prior.
    pub fn set_prior(&mut self, node: usize, prior: [f64; 2]) {
        assert!(
            prior[0] >= 0.0 && prior[1] >= 0.0 && prior[0] + prior[1] > 0.0,
            "set_prior: invalid prior {prior:?}"
        );
        self.priors[node] = prior;
    }

    /// Clamps a node to a known state (supervision): the prior becomes a
    /// near-delta on `state`.
    pub fn clamp(&mut self, node: usize, state: usize) {
        assert!(state < 2, "clamp: state {state} out of range");
        let mut p = [1e-6; 2];
        p[state] = 1.0 - 1e-6;
        self.priors[node] = p;
    }

    /// Adds an undirected edge with compatibility table `psi`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or non-positive table entries.
    pub fn add_edge(&mut self, a: usize, b: usize, psi: [[f64; 2]; 2]) {
        assert!(a < self.n_nodes() && b < self.n_nodes(), "add_edge: endpoint out of range");
        assert!(
            psi.iter().flatten().all(|&x| x > 0.0),
            "add_edge: compatibility entries must be positive"
        );
        let e = self.edges.len();
        self.edges.push(BpEdge { a, b, psi });
        self.adjacency[a].push(e);
        self.adjacency[b].push(e);
    }

    /// Runs damped synchronous loopy BP.
    ///
    /// `damping ∈ [0, 1)`: fraction of the old message retained (0 = no
    /// damping). Beliefs are always well defined even without convergence.
    pub fn run(&self, max_iters: usize, damping: f64, tol: f64) -> BpResult {
        assert!((0.0..1.0).contains(&damping), "run: damping {damping} outside [0, 1)");
        let m = self.edges.len();
        // Messages: msg_ab[e] flows a→b, msg_ba[e] flows b→a.
        let mut msg_ab = vec![[0.5f64; 2]; m];
        let mut msg_ba = vec![[0.5f64; 2]; m];
        let mut iterations = 0;
        let mut converged = false;

        for it in 0..max_iters {
            iterations = it + 1;
            let mut max_delta = 0.0f64;
            let mut new_ab = msg_ab.clone();
            let mut new_ba = msg_ba.clone();

            for (e, edge) in self.edges.iter().enumerate() {
                // a → b: marginalise a's state over prior × incoming
                // messages (excluding b's) × psi.
                let pre_a = self.pre_message(edge.a, e, &msg_ab, &msg_ba);
                let mut out_ab = [0.0f64; 2];
                for (out, sb) in out_ab.iter_mut().zip(0..2) {
                    for (pa, psi_row) in pre_a.iter().zip(&edge.psi) {
                        *out += pa * psi_row[sb];
                    }
                }
                normalise(&mut out_ab);

                let pre_b = self.pre_message(edge.b, e, &msg_ab, &msg_ba);
                let mut out_ba = [0.0f64; 2];
                for (out, psi_row) in out_ba.iter_mut().zip(&edge.psi) {
                    for (pb, psi) in pre_b.iter().zip(psi_row) {
                        *out += pb * psi;
                    }
                }
                normalise(&mut out_ba);

                for s in 0..2 {
                    let blended_ab = damping * msg_ab[e][s] + (1.0 - damping) * out_ab[s];
                    let blended_ba = damping * msg_ba[e][s] + (1.0 - damping) * out_ba[s];
                    max_delta = max_delta.max((blended_ab - msg_ab[e][s]).abs());
                    max_delta = max_delta.max((blended_ba - msg_ba[e][s]).abs());
                    new_ab[e][s] = blended_ab;
                    new_ba[e][s] = blended_ba;
                }
            }
            msg_ab = new_ab;
            msg_ba = new_ba;
            if max_delta < tol {
                converged = true;
                break;
            }
        }

        let beliefs = (0..self.n_nodes())
            .map(|n| {
                let mut b = self.priors[n];
                for &e in &self.adjacency[n] {
                    let incoming = if self.edges[e].a == n { &msg_ba[e] } else { &msg_ab[e] };
                    b[0] *= incoming[0];
                    b[1] *= incoming[1];
                    normalise(&mut b);
                }
                normalise(&mut b);
                b
            })
            .collect();

        BpResult { beliefs, iterations, converged }
    }

    /// Prior × product of incoming messages at `node`, excluding edge
    /// `skip_edge`.
    fn pre_message(&self, node: usize, skip_edge: usize, msg_ab: &[[f64; 2]], msg_ba: &[[f64; 2]]) -> [f64; 2] {
        let mut pre = self.priors[node];
        normalise(&mut pre);
        for &e in &self.adjacency[node] {
            if e == skip_edge {
                continue;
            }
            let incoming = if self.edges[e].a == node { &msg_ba[e] } else { &msg_ab[e] };
            pre[0] *= incoming[0];
            pre[1] *= incoming[1];
            normalise(&mut pre);
        }
        pre
    }
}

fn normalise(p: &mut [f64; 2]) {
    let s = p[0] + p[1];
    if s > 0.0 {
        p[0] /= s;
        p[1] /= s;
    } else {
        *p = [0.5, 0.5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Attractive potential: neighbours prefer matching states.
    const ATTRACT: [[f64; 2]; 2] = [[0.9, 0.1], [0.1, 0.9]];
    /// Repulsive potential: neighbours prefer differing states.
    const REPEL: [[f64; 2]; 2] = [[0.1, 0.9], [0.9, 0.1]];

    #[test]
    fn isolated_node_keeps_prior() {
        let mut net = BpNetwork::new(1);
        net.set_prior(0, [0.3, 0.7]);
        let r = net.run(10, 0.0, 1e-9);
        assert!(r.converged);
        assert!((r.beliefs[0][1] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn chain_propagates_evidence_exactly() {
        // Tree-structured graphs are exact: 0 — 1 with attractive coupling,
        // node 0 clamped to state 1.
        let mut net = BpNetwork::new(2);
        net.clamp(0, 1);
        net.add_edge(0, 1, ATTRACT);
        let r = net.run(50, 0.0, 1e-12);
        assert!(r.converged);
        // P(s1 = 1) = 0.9 by direct computation.
        assert!((r.beliefs[1][1] - 0.9).abs() < 1e-3, "{:?}", r.beliefs[1]);
    }

    #[test]
    fn repulsive_edge_flips_evidence() {
        let mut net = BpNetwork::new(2);
        net.clamp(0, 1);
        net.add_edge(0, 1, REPEL);
        let r = net.run(50, 0.0, 1e-12);
        assert!(r.beliefs[1][0] > 0.85);
    }

    #[test]
    fn longer_chains_attenuate() {
        // Evidence decays along the chain: belief at distance 2 is weaker
        // than at distance 1.
        let mut net = BpNetwork::new(3);
        net.clamp(0, 1);
        net.add_edge(0, 1, ATTRACT);
        net.add_edge(1, 2, ATTRACT);
        let r = net.run(100, 0.0, 1e-12);
        assert!(r.beliefs[1][1] > r.beliefs[2][1]);
        assert!(r.beliefs[2][1] > 0.5);
    }

    #[test]
    fn loopy_graph_still_produces_sane_beliefs() {
        // A frustrated triangle: all repulsive. Beliefs must remain valid
        // distributions whether or not BP converges.
        let mut net = BpNetwork::new(3);
        net.set_prior(0, [0.8, 0.2]);
        net.add_edge(0, 1, REPEL);
        net.add_edge(1, 2, REPEL);
        net.add_edge(2, 0, REPEL);
        let r = net.run(200, 0.5, 1e-9);
        for b in &r.beliefs {
            assert!((b[0] + b[1] - 1.0).abs() < 1e-9);
            assert!(b[0] >= 0.0 && b[1] >= 0.0);
        }
    }

    #[test]
    fn damping_reaches_same_fixed_point_on_tree() {
        let build = || {
            let mut net = BpNetwork::new(2);
            net.clamp(0, 0);
            net.add_edge(0, 1, ATTRACT);
            net
        };
        let a = build().run(200, 0.0, 1e-12);
        let b = build().run(400, 0.7, 1e-12);
        assert!((a.beliefs[1][0] - b.beliefs[1][0]).abs() < 1e-6);
    }
}
