//! Generic damped fixed-point iteration with convergence detection — the
//! driver behind REV2's fairness/goodness/reliability updates.

/// Configuration for [`fixed_point`].
#[derive(Debug, Clone, Copy)]
pub struct FixedPointConfig {
    /// Maximum iterations.
    pub max_iters: usize,
    /// L∞ convergence tolerance between successive states.
    pub tol: f64,
}

impl Default for FixedPointConfig {
    fn default() -> Self {
        Self { max_iters: 100, tol: 1e-6 }
    }
}

/// Outcome of a fixed-point run.
#[derive(Debug, Clone)]
pub struct FixedPointResult<T> {
    /// Final state.
    pub state: T,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether `distance` fell below tolerance.
    pub converged: bool,
}

/// Iterates `state ← step(state)` until `distance(old, new) < tol` or the
/// iteration budget is exhausted.
pub fn fixed_point<T>(
    initial: T,
    cfg: FixedPointConfig,
    mut step: impl FnMut(&T) -> T,
    mut distance: impl FnMut(&T, &T) -> f64,
) -> FixedPointResult<T> {
    let mut state = initial;
    for it in 0..cfg.max_iters {
        let next = step(&state);
        let d = distance(&state, &next);
        state = next;
        if d < cfg.tol {
            return FixedPointResult { state, iterations: it + 1, converged: true };
        }
    }
    FixedPointResult { state, iterations: cfg.max_iters, converged: false }
}

/// L∞ distance between two equal-length `f64` slices — the standard
/// `distance` argument for vector-valued fixed points.
pub fn linf(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_contraction() {
        // x ← (x + 2/x) / 2 converges to sqrt(2).
        let r = fixed_point(
            1.0f64,
            FixedPointConfig { max_iters: 50, tol: 1e-12 },
            |&x| (x + 2.0 / x) / 2.0,
            |&a, &b| (a - b).abs(),
        );
        assert!(r.converged);
        assert!((r.state - 2.0f64.sqrt()).abs() < 1e-10);
        assert!(r.iterations < 10);
    }

    #[test]
    fn reports_non_convergence() {
        let r = fixed_point(
            0.0f64,
            FixedPointConfig { max_iters: 5, tol: 1e-12 },
            |&x| x + 1.0,
            |&a, &b| (a - b).abs(),
        );
        assert!(!r.converged);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.state, 5.0);
    }

    #[test]
    fn vector_fixed_point_with_linf() {
        let r = fixed_point(
            vec![0.0f64, 10.0],
            FixedPointConfig::default(),
            |v| v.iter().map(|&x| 0.5 * x + 1.0).collect::<Vec<_>>(),
            |a, b| linf(a, b),
        );
        assert!(r.converged);
        for x in r.state {
            assert!((x - 2.0).abs() < 1e-4);
        }
    }
}
