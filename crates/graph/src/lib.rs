//! # rrre-graph
//!
//! Graph substrate for the RRRE reproduction's network-based baselines: a
//! bipartite user–item review graph, loopy belief propagation over binary
//! pairwise MRFs (SpEagle+/FraudEagle), and a generic damped fixed-point
//! driver (REV2).

#![warn(missing_docs)]

pub mod analysis;
pub mod bipartite;
pub mod bp;
pub mod iterate;

pub use analysis::{connected_components, core_numbers, density, largest_component_size};
pub use bipartite::{Edge, ReviewGraph};
pub use bp::{BpEdge, BpNetwork, BpResult};
pub use iterate::{fixed_point, linf, FixedPointConfig, FixedPointResult};
