//! Validates loopy belief propagation against exact brute-force inference:
//! on tree-structured graphs BP is exact, so its marginals must match the
//! marginals computed by enumerating all joint states.

use rrre_graph::BpNetwork;

/// Exact marginals of a binary pairwise MRF by full enumeration.
/// `priors[i]` are node potentials, `edges` are `(a, b, psi)`.
fn brute_force_marginals(
    priors: &[[f64; 2]],
    edges: &[(usize, usize, [[f64; 2]; 2])],
) -> Vec<[f64; 2]> {
    let n = priors.len();
    assert!(n <= 16, "enumeration only feasible for small n");
    let mut marginals = vec![[0.0f64; 2]; n];
    let mut z = 0.0;
    for assignment in 0..(1usize << n) {
        let state = |i: usize| (assignment >> i) & 1;
        let mut weight = 1.0;
        for (i, p) in priors.iter().enumerate() {
            weight *= p[state(i)];
        }
        for &(a, b, psi) in edges {
            weight *= psi[state(a)][state(b)];
        }
        z += weight;
        for (i, m) in marginals.iter_mut().enumerate() {
            m[state(i)] += weight;
        }
    }
    for m in &mut marginals {
        m[0] /= z;
        m[1] /= z;
    }
    marginals
}

fn build_network(priors: &[[f64; 2]], edges: &[(usize, usize, [[f64; 2]; 2])]) -> BpNetwork {
    let mut net = BpNetwork::new(priors.len());
    for (i, &p) in priors.iter().enumerate() {
        net.set_prior(i, p);
    }
    for &(a, b, psi) in edges {
        net.add_edge(a, b, psi);
    }
    net
}

fn assert_close(bp: &[[f64; 2]], exact: &[[f64; 2]], tol: f64) {
    for (i, (b, e)) in bp.iter().zip(exact).enumerate() {
        assert!(
            (b[0] - e[0]).abs() < tol && (b[1] - e[1]).abs() < tol,
            "node {i}: BP {b:?} vs exact {e:?}"
        );
    }
}

#[test]
fn exact_on_chains() {
    let priors = [[0.9, 0.1], [0.5, 0.5], [0.3, 0.7], [0.5, 0.5]];
    let attract = [[0.8, 0.2], [0.2, 0.8]];
    let edges = [(0, 1, attract), (1, 2, attract), (2, 3, attract)];
    let net = build_network(&priors, &edges);
    let result = net.run(100, 0.0, 1e-12);
    assert!(result.converged);
    let exact = brute_force_marginals(&priors, &edges);
    assert_close(&result.beliefs, &exact, 1e-6);
}

#[test]
fn exact_on_stars() {
    // A hub with four leaves and mixed potentials.
    let priors = [[0.6, 0.4], [0.5, 0.5], [0.2, 0.8], [0.5, 0.5], [0.7, 0.3]];
    let attract = [[0.9, 0.1], [0.1, 0.9]];
    let repel = [[0.2, 0.8], [0.8, 0.2]];
    let edges = [(0, 1, attract), (0, 2, repel), (0, 3, attract), (0, 4, repel)];
    let net = build_network(&priors, &edges);
    let result = net.run(100, 0.0, 1e-12);
    assert!(result.converged);
    let exact = brute_force_marginals(&priors, &edges);
    assert_close(&result.beliefs, &exact, 1e-6);
}

#[test]
fn exact_on_the_speagle_motif() {
    // user — review — item, the exact path structure SpEagle builds, with
    // the rating-sign potentials used by the baseline.
    let e = 0.15;
    let psi_user_review = [[1.0 - e, e], [e, 1.0 - e]];
    let psi_pos = [[1.0 - e, e], [e, 1.0 - e]];
    let priors = [[0.5, 0.5], [0.8, 0.2], [0.5, 0.5]]; // suspicious review prior
    let edges = [(0, 1, psi_user_review), (1, 2, psi_pos)];
    let net = build_network(&priors, &edges);
    let result = net.run(100, 0.0, 1e-12);
    assert!(result.converged);
    let exact = brute_force_marginals(&priors, &edges);
    assert_close(&result.beliefs, &exact, 1e-6);
}

#[test]
fn loopy_square_is_close_but_bounded() {
    // On a 4-cycle BP is approximate; verify it stays a valid distribution
    // and lands near the exact marginals for weak couplings.
    let priors = [[0.7, 0.3], [0.5, 0.5], [0.5, 0.5], [0.4, 0.6]];
    let weak = [[0.6, 0.4], [0.4, 0.6]];
    let edges = [(0, 1, weak), (1, 2, weak), (2, 3, weak), (3, 0, weak)];
    let net = build_network(&priors, &edges);
    let result = net.run(300, 0.3, 1e-10);
    let exact = brute_force_marginals(&priors, &edges);
    // Weak couplings: loopy BP error stays small.
    assert_close(&result.beliefs, &exact, 0.02);
}
