//! # rrre-shard
//!
//! The sharded serving tier's routing brain: a versioned consistent-hash
//! shard map, replica-set topologies, and the scatter-gather planner the
//! resilient client uses to answer ranking queries across shards.
//!
//! Three layers, bottom to top:
//!
//! * [`map`] — [`ShardMap`]: a vnode hash ring derived *purely* from the
//!   four scalars of [`rrre_wire::ShardSpec`]. The map is never shipped as
//!   an assignment table; every process that holds the same spec computes
//!   the same owner for every entity, bit-for-bit. Adding a shard moves
//!   only ~`1/(n+1)` of the keys, and every moved key moves *to* the new
//!   shard — the consistent-hashing contract the remap tests pin.
//! * [`topology`] — [`ShardTopology`]: the deployment-side companion of a
//!   spec: which replica endpoints serve each shard. Carried in a JSON
//!   file handed to clients (`--shard-map`), validated against the spec.
//! * [`plan`] — [`RoutePlan`] and the deterministic gather-side merges:
//!   where each protocol op must go (point lookup by owning shard,
//!   scatter for ranking, broadcast for invalidation/reload), and how to
//!   fold per-shard answers back into one response with the exact
//!   tie-break order of `rrre_core::rank_candidates`, so a scatter-gather
//!   deployment is bit-identical to a single node holding the whole model.

#![warn(missing_docs)]

pub mod map;
pub mod plan;
pub mod topology;

pub use map::{Entity, ShardMap};
pub use plan::{merge_health, merge_recommendations, merge_stats, RoutePlan};
pub use rrre_wire::ShardSpec;
pub use topology::ShardTopology;
