//! Deployment topology: which replica endpoints serve each shard.
//!
//! The [`ShardSpec`] says *how keys map to shards*; the [`ShardTopology`]
//! adds *where each shard lives* — one replica-address list per shard.
//! Clients load it from a JSON file (`--shard-map topology.json`) and
//! validate it against the spec before routing a single request, so a
//! topology whose replica lists disagree with the spec's shard count is
//! refused up front rather than silently black-holing a shard.

use rrre_wire::ShardSpec;
use serde::{Deserialize, Serialize};

/// A validated deployment topology: the shard spec plus the replica
/// endpoints (host:port) serving each shard, indexed by shard id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTopology {
    /// The shard map spec every member of this deployment agrees on.
    pub spec: ShardSpec,
    /// `replicas[s]` lists the endpoints serving shard `s`. Must have
    /// exactly `spec.shards` entries, each non-empty.
    pub replicas: Vec<Vec<String>>,
}

impl ShardTopology {
    /// A single-shard topology over one replica set — the degenerate
    /// "whole model everywhere" deployment the pre-sharding tier ran.
    pub fn single(addrs: Vec<String>) -> Self {
        Self { spec: ShardSpec::single(), replicas: vec![addrs] }
    }

    /// Structural validation: a sound spec, one replica list per shard,
    /// no shard left without endpoints, no blank endpoint strings.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        if self.replicas.len() != self.spec.shards as usize {
            return Err(format!(
                "topology lists {} replica sets but the spec declares {} shards",
                self.replicas.len(),
                self.spec.shards
            ));
        }
        for (shard, set) in self.replicas.iter().enumerate() {
            if set.is_empty() {
                return Err(format!("shard {shard} has no replica endpoints"));
            }
            if set.iter().any(|a| a.trim().is_empty()) {
                return Err(format!("shard {shard} lists a blank endpoint"));
            }
        }
        Ok(())
    }

    /// Parses and validates a topology from its JSON representation.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let topo: Self = serde_json::from_str(json).map_err(|e| format!("invalid shard topology JSON: {e}"))?;
        topo.validate()?;
        Ok(topo)
    }

    /// Serialises the topology to JSON (one line, wire-stable field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ShardTopology serialisation cannot fail")
    }

    /// Number of shards in this deployment.
    pub fn shards(&self) -> u32 {
        self.spec.shards
    }

    /// Replica endpoints for `shard`.
    pub fn replicas_of(&self, shard: u32) -> &[String] {
        &self.replicas[shard as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo3() -> ShardTopology {
        ShardTopology {
            spec: ShardSpec::with_shards(3),
            replicas: vec![
                vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
                vec!["127.0.0.1:7003".into()],
                vec!["127.0.0.1:7005".into(), "127.0.0.1:7006".into()],
            ],
        }
    }

    #[test]
    fn valid_topology_round_trips_through_json() {
        let t = topo3();
        t.validate().unwrap();
        let back = ShardTopology::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.shards(), 3);
        assert_eq!(back.replicas_of(1), &["127.0.0.1:7003".to_string()][..]);
    }

    #[test]
    fn shard_count_mismatch_is_refused() {
        let mut t = topo3();
        t.replicas.pop();
        let err = t.validate().unwrap_err();
        assert!(err.contains("2 replica sets"), "{err}");
        assert!(ShardTopology::from_json(&t.to_json()).is_err());
    }

    #[test]
    fn empty_or_blank_replica_sets_are_refused() {
        let mut t = topo3();
        t.replicas[1].clear();
        assert!(t.validate().unwrap_err().contains("no replica endpoints"));
        let mut t = topo3();
        t.replicas[2][0] = "  ".into();
        assert!(t.validate().unwrap_err().contains("blank endpoint"));
    }

    #[test]
    fn single_topology_is_valid() {
        let t = ShardTopology::single(vec!["127.0.0.1:9000".into()]);
        t.validate().unwrap();
        assert_eq!(t.shards(), 1);
    }
}
