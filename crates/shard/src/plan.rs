//! Scatter-gather planning: where each protocol op must be sent, and how
//! per-shard answers fold back into a single response.
//!
//! The merge functions are the gather half of the parity oracle: a
//! scatter-gathered `Recommend` must be **bit-identical** to a single node
//! holding the whole model. That holds because the global two-stage top-k
//! is contained in the union of per-shard two-stage top-ks (stage one
//! keeps the k highest ratings per shard, and the global k highest ratings
//! are each the highest *somewhere*), so re-running the exact
//! `rank_candidates` comparison over the union recovers the single-node
//! answer, ties and all.

use rrre_wire::{HealthDto, Op, RecommendationDto, Request, StatsSnapshot};

use crate::map::ShardMap;

/// Where a request must be routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutePlan {
    /// Point lookup: exactly one shard owns the answer.
    Shard(u32),
    /// Fan out to every shard and merge the partial answers.
    Scatter,
    /// Fan out to every shard; each side effect must land everywhere, and
    /// the gathered response is a fold of the acks.
    Broadcast,
    /// Any single replica can answer (or the server will reject it with a
    /// structured error that one replica is enough to produce).
    Any,
}

/// Plans a request against a shard map.
///
/// Ownership follows the **item** domain: `Predict` and `Explain` go to
/// the shard owning `item`; `Recommend` scatters because ranking scans the
/// (partitioned) item catalog. `Invalidate` goes to the owning shard when
/// an item is named, and broadcasts for a user-only eviction since every
/// shard may cache that user's tower. Requests missing the fields routing
/// would need plan as [`RoutePlan::Any`] — the server's own validation
/// produces the structured `BadRequest`, and it does so identically on
/// every shard.
pub fn plan(map: &ShardMap, req: &Request) -> RoutePlan {
    match req.op {
        Op::Predict | Op::Explain => match req.item {
            Some(item) => RoutePlan::Shard(map.shard_of_item(item)),
            None => RoutePlan::Any,
        },
        Op::Recommend => RoutePlan::Scatter,
        Op::Stats | Op::Health => RoutePlan::Scatter,
        Op::Invalidate => match (req.user, req.item) {
            (_, Some(item)) => RoutePlan::Shard(map.shard_of_item(item)),
            (Some(_), None) => RoutePlan::Broadcast,
            (None, None) => RoutePlan::Any,
        },
        Op::Reload => RoutePlan::Broadcast,
        Op::Crash => RoutePlan::Any,
        // Ingest follows item ownership like the other item-scoped ops: the
        // review must land on the shard whose slice serves (and re-encodes)
        // the item's tower. Compaction is a per-replica side effect like
        // Reload, folding each shard's own WAL.
        Op::IngestReview => match req.item {
            Some(item) => RoutePlan::Shard(map.shard_of_item(item)),
            None => RoutePlan::Any,
        },
        Op::Compact => RoutePlan::Broadcast,
        // Replication traffic addresses one specific replica (a follower
        // being shipped to, the leader being fetched from, the replica
        // being promoted) — it is never scatter-gathered across shards.
        Op::Replicate | Op::FetchWal | Op::Promote => RoutePlan::Any,
    }
}

/// Merges per-shard recommendation rows into the global top-`k`.
///
/// This mirrors `rrre_core::rank_candidates` exactly — stage one keeps the
/// `k` best by rating (ties on the lower item id), stage two orders those
/// for presentation by reliability (same tie-break) — so the merged list
/// is bit-identical to ranking the union on one node.
pub fn merge_recommendations(mut rows: Vec<RecommendationDto>, k: usize) -> Vec<RecommendationDto> {
    rows.sort_by(|a, b| b.rating.total_cmp(&a.rating).then(a.item.cmp(&b.item)));
    rows.truncate(k);
    rows.sort_by(|a, b| b.reliability.total_cmp(&a.reliability).then(a.item.cmp(&b.item)));
    rows
}

/// Folds per-shard stats snapshots into one fleet-level snapshot.
///
/// Monotonic counters sum; `mean_batch` is re-derived from the summed
/// totals; `cache_hit_rate` is recomputed from the summed hit/miss
/// counters; boolean health bits fold pessimistically (`ready` only if
/// every shard is ready, `breaker_open`/`draining` if any shard is);
/// `generation` is the minimum so a rolling reload reads as "fleet still
/// partially on the old generation". `shard_id` is cleared — the merged
/// snapshot speaks for the whole fleet.
pub fn merge_stats(parts: &[StatsSnapshot]) -> StatsSnapshot {
    let mut out = StatsSnapshot::default();
    if parts.is_empty() {
        return out;
    }
    let mut weighted_batch = 0.0f64;
    out.generation = u64::MAX;
    out.ready = true;
    for p in parts {
        out.requests += p.requests;
        out.errors += p.errors;
        out.batches += p.batches;
        weighted_batch += p.mean_batch * p.batches as f64;
        out.max_batch = out.max_batch.max(p.max_batch);
        out.user_cache_hits += p.user_cache_hits;
        out.user_cache_misses += p.user_cache_misses;
        out.item_cache_hits += p.item_cache_hits;
        out.item_cache_misses += p.item_cache_misses;
        out.tower_evals += p.tower_evals;
        out.deadline_misses += p.deadline_misses;
        out.shed += p.shed;
        out.reloads += p.reloads;
        out.reload_failures += p.reload_failures;
        out.worker_panics += p.worker_panics;
        out.generation = out.generation.min(p.generation);
        out.breaker_open |= p.breaker_open;
        out.draining |= p.draining;
        out.ready &= p.ready;
        out.p50_latency_us = out.p50_latency_us.max(p.p50_latency_us);
        out.p99_latency_us = out.p99_latency_us.max(p.p99_latency_us);
        out.cross_shard_rejects += p.cross_shard_rejects;
        out.scatter_fanout += p.scatter_fanout;
        out.ingested += p.ingested;
        out.ingest_duplicates += p.ingest_duplicates;
        out.wal_bytes += p.wal_bytes;
        out.refreshes += p.refreshes;
        out.compactions += p.compactions;
        out.wal_recoveries += p.wal_recoveries;
        // Terms are per-shard clocks: the max is "the newest term anywhere
        // in the fleet". Watermarks and lags sum like the other gauges.
        out.epoch = out.epoch.max(p.epoch);
        out.replicated_seq += p.replicated_seq;
        out.replication_lag += p.replication_lag;
        out.stale_epoch_rejections += p.stale_epoch_rejections;
        out.degraded_responses += p.degraded_responses;
        out.open_conns += p.open_conns;
        out.pipelined_inflight += p.pipelined_inflight;
        out.writev_batches += p.writev_batches;
        out.frames_partial += p.frames_partial;
    }
    if out.batches > 0 {
        out.mean_batch = weighted_batch / out.batches as f64;
    }
    let hits = out.user_cache_hits + out.item_cache_hits;
    let total = hits + out.user_cache_misses + out.item_cache_misses;
    if total > 0 {
        out.cache_hit_rate = hits as f64 / total as f64;
    }
    out.shard_id = None;
    out
}

/// Folds per-shard health probes: the fleet is live/ready only when every
/// probed shard is, degraded bits propagate if any shard shows them, and
/// the generation is the minimum observed (rolling-reload semantics, as in
/// [`merge_stats`]).
pub fn merge_health(parts: &[HealthDto]) -> HealthDto {
    let mut out = HealthDto {
        live: !parts.is_empty(),
        ready: !parts.is_empty(),
        draining: false,
        breaker_open: false,
        generation: if parts.is_empty() { 0 } else { u64::MAX },
    };
    for p in parts {
        out.live &= p.live;
        out.ready &= p.ready;
        out.draining |= p.draining;
        out.breaker_open |= p.breaker_open;
        out.generation = out.generation.min(p.generation);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_wire::ShardSpec;

    fn map3() -> ShardMap {
        ShardMap::new(ShardSpec::with_shards(3)).unwrap()
    }

    fn req(op: Op, user: Option<u32>, item: Option<u32>) -> Request {
        let mut r = Request::invalidate(user, item);
        r.op = op;
        r
    }

    fn row(item: u32, rating: f32, reliability: f32) -> RecommendationDto {
        RecommendationDto { item, item_name: format!("item-{item}"), rating, reliability }
    }

    #[test]
    fn point_ops_route_to_item_owner() {
        let m = map3();
        for item in [0u32, 11, 4242] {
            let owner = m.shard_of_item(item);
            assert_eq!(plan(&m, &req(Op::Predict, Some(1), Some(item))), RoutePlan::Shard(owner));
            assert_eq!(plan(&m, &req(Op::Explain, None, Some(item))), RoutePlan::Shard(owner));
            assert_eq!(plan(&m, &req(Op::Invalidate, None, Some(item))), RoutePlan::Shard(owner));
        }
    }

    #[test]
    fn ranking_scatters_and_user_eviction_broadcasts() {
        let m = map3();
        assert_eq!(plan(&m, &req(Op::Recommend, Some(1), None)), RoutePlan::Scatter);
        assert_eq!(plan(&m, &req(Op::Stats, None, None)), RoutePlan::Scatter);
        assert_eq!(plan(&m, &req(Op::Invalidate, Some(7), None)), RoutePlan::Broadcast);
        assert_eq!(plan(&m, &req(Op::Reload, None, None)), RoutePlan::Broadcast);
    }

    #[test]
    fn ingest_routes_to_item_owner_and_compact_broadcasts() {
        let m = map3();
        let r = Request::ingest_review(1, 2, 77, 4.5, "solid", 1000);
        assert_eq!(plan(&m, &r), RoutePlan::Shard(m.shard_of_item(77)));
        assert_eq!(plan(&m, &req(Op::IngestReview, Some(2), None)), RoutePlan::Any);
        assert_eq!(plan(&m, &Request::compact()), RoutePlan::Broadcast);
    }

    #[test]
    fn malformed_requests_plan_as_any() {
        let m = map3();
        assert_eq!(plan(&m, &req(Op::Predict, Some(1), None)), RoutePlan::Any);
        assert_eq!(plan(&m, &req(Op::Invalidate, None, None)), RoutePlan::Any);
    }

    #[test]
    fn merge_reranks_with_the_two_stage_tie_break() {
        // Stage one keeps the 3 best ratings (items 5, 2, 9); stage two
        // presents them by reliability. Item 7 has the best reliability but
        // loses at stage one — exactly what rank_candidates would do.
        let rows = vec![
            row(7, 1.0, 0.99),
            row(5, 4.0, 0.10),
            row(2, 3.5, 0.80),
            row(9, 3.0, 0.50),
        ];
        let merged = merge_recommendations(rows, 3);
        let items: Vec<u32> = merged.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![2, 9, 5]);
    }

    #[test]
    fn merge_breaks_rating_ties_on_lower_item_id() {
        let rows = vec![row(30, 2.0, 0.5), row(10, 2.0, 0.5), row(20, 2.0, 0.5)];
        let merged = merge_recommendations(rows, 2);
        let items: Vec<u32> = merged.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![10, 20]);
    }

    #[test]
    fn merged_stats_sum_counters_and_fold_health_bits() {
        let mut a = StatsSnapshot { requests: 10, errors: 1, batches: 2, mean_batch: 2.0, ..StatsSnapshot::default() };
        a.user_cache_hits = 6;
        a.user_cache_misses = 2;
        a.ready = true;
        a.generation = 3;
        a.shard_id = Some(0);
        let mut b = StatsSnapshot { requests: 5, batches: 3, mean_batch: 1.0, ..StatsSnapshot::default() };
        b.item_cache_hits = 2;
        b.ready = true;
        b.draining = true;
        b.generation = 2;
        b.shard_id = Some(1);
        b.cross_shard_rejects = 4;

        let m = merge_stats(&[a, b]);
        assert_eq!(m.requests, 15);
        assert_eq!(m.errors, 1);
        assert_eq!(m.batches, 5);
        assert!((m.mean_batch - 1.4).abs() < 1e-9);
        assert!((m.cache_hit_rate - 0.8).abs() < 1e-9);
        assert_eq!(m.generation, 2);
        assert!(m.ready && m.draining && !m.breaker_open);
        assert_eq!(m.cross_shard_rejects, 4);
        assert_eq!(m.shard_id, None);
    }

    #[test]
    fn merged_health_is_pessimistic() {
        let healthy = HealthDto { live: true, ready: true, draining: false, breaker_open: false, generation: 4 };
        let ailing = HealthDto { live: true, ready: false, draining: false, breaker_open: true, generation: 3 };
        let m = merge_health(&[healthy, ailing]);
        assert!(m.live && !m.ready && m.breaker_open);
        assert_eq!(m.generation, 3);
        assert!(!merge_health(&[]).live);
    }
}
