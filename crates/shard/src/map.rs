//! The consistent-hash shard map: a vnode ring derived purely from a
//! [`ShardSpec`].
//!
//! Every shard owns [`ShardSpec::vnodes`] points on a `u64` ring; an
//! entity hashes to a ring position and is owned by the shard of the first
//! vnode at or after it (wrapping). Two properties fall out of this
//! construction and are load-bearing for the serving tier:
//!
//! * **Determinism** — placement depends only on the spec's scalars and
//!   fixed domain-separated hashing (no `RandomState`, no process salt).
//!   A replica, a client and a test harness that agree on the spec agree
//!   on every owner, across processes and architectures.
//! * **Minimal disruption** — growing the topology from `n` to `n+1`
//!   shards only *adds* vnodes. A key either keeps its owner or moves to
//!   the new shard (never between old shards), and the expected moved
//!   fraction is `1/(n+1)`.
//!
//! Items and users hash under different domains, so the two entity spaces
//! are spread independently. The serving tier routes by the **item**
//! domain — `rank_candidates` scatters over the item catalog, so the
//! catalog is the partitioned axis; a pair's cached towers live on the
//! shard owning the item.

use rrre_wire::ShardSpec;

/// A routable entity: the two id spaces the tower caches are keyed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// A user id.
    User(u32),
    /// An item id.
    Item(u32),
}

/// Domain-separation constants: ring points and the two entity spaces
/// must never collide in hash space.
const DOMAIN_RING: u64 = 0x52_49_4E_47; // "RING"
const DOMAIN_USER: u64 = 0x55_53_45_52; // "USER"
const DOMAIN_ITEM: u64 = 0x49_54_45_4D; // "ITEM"

/// SplitMix64 finalizer: cheap, strong bit mixing with no tables.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic 64-bit hash of `(seed, domain, a, b)`.
fn hash(seed: u64, domain: u64, a: u64, b: u64) -> u64 {
    mix(seed.wrapping_add(mix(domain)).wrapping_add(mix(a).rotate_left(17)).wrapping_add(mix(b).rotate_left(31)))
}

/// A materialised consistent-hash ring. Cheap to build (`shards × vnodes`
/// hashed points, sorted once) and cheap to query (one hash + one binary
/// search).
#[derive(Debug, Clone)]
pub struct ShardMap {
    spec: ShardSpec,
    /// `(ring position, shard id)`, sorted ascending; ties break on the
    /// lower shard id so inserting a *new* (higher-numbered) shard at a
    /// colliding point can never steal a key an old shard already owned
    /// at that exact position.
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Builds the ring for a spec. Fails on a structurally invalid spec
    /// (zero shards or zero vnodes).
    pub fn new(spec: ShardSpec) -> Result<Self, String> {
        spec.validate()?;
        let mut ring = Vec::with_capacity(spec.shards as usize * spec.vnodes as usize);
        for shard in 0..spec.shards {
            for vnode in 0..spec.vnodes {
                ring.push((hash(spec.seed, DOMAIN_RING, u64::from(shard), u64::from(vnode)), shard));
            }
        }
        ring.sort_unstable();
        Ok(Self { spec, ring })
    }

    /// The spec this map was derived from.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The topology version (see [`ShardSpec::version`]).
    pub fn version(&self) -> u64 {
        self.spec.version
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.spec.shards
    }

    /// The shard owning `entity`. Total: every entity maps to exactly one
    /// shard, for any id, under any valid spec.
    pub fn shard_of(&self, entity: Entity) -> u32 {
        let point = match entity {
            Entity::User(u) => hash(self.spec.seed, DOMAIN_USER, u64::from(u), 0),
            Entity::Item(i) => hash(self.spec.seed, DOMAIN_ITEM, u64::from(i), 0),
        };
        let idx = self.ring.partition_point(|&(p, _)| p < point);
        // Wrap past the last vnode back to the first.
        self.ring[if idx == self.ring.len() { 0 } else { idx }].1
    }

    /// The shard owning item `item` — the serving tier's routing axis.
    pub fn shard_of_item(&self, item: u32) -> u32 {
        self.shard_of(Entity::Item(item))
    }

    /// The shard owning user `user`.
    pub fn shard_of_user(&self, user: u32) -> u32 {
        self.shard_of(Entity::User(user))
    }

    /// Whether `shard` owns item `item`.
    pub fn owns_item(&self, shard: u32, item: u32) -> bool {
        self.shard_of_item(item) == shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map(shards: u32) -> ShardMap {
        ShardMap::new(ShardSpec::with_shards(shards)).unwrap()
    }

    #[test]
    fn invalid_specs_are_refused() {
        assert!(ShardMap::new(ShardSpec { shards: 0, ..ShardSpec::single() }).is_err());
        assert!(ShardMap::new(ShardSpec { vnodes: 0, ..ShardSpec::single() }).is_err());
    }

    #[test]
    fn single_shard_owns_everything() {
        let m = map(1);
        for id in [0u32, 1, 7, 1000, u32::MAX] {
            assert_eq!(m.shard_of_item(id), 0);
            assert_eq!(m.shard_of_user(id), 0);
        }
    }

    #[test]
    fn same_spec_same_assignment_across_builds() {
        let (a, b) = (map(5), map(5));
        for id in 0..2000u32 {
            assert_eq!(a.shard_of_item(id), b.shard_of_item(id));
            assert_eq!(a.shard_of_user(id), b.shard_of_user(id));
        }
    }

    #[test]
    fn assignment_is_reasonably_balanced() {
        let m = map(3);
        let mut counts = [0usize; 3];
        for id in 0..6000u32 {
            counts[m.shard_of_item(id) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // Perfect balance is 2000; vnode hashing should stay well
            // within a factor-of-two band of it.
            assert!((1000..=3200).contains(&c), "shard {s} owns {c} of 6000 items: {counts:?}");
        }
    }

    #[test]
    fn user_and_item_domains_are_independent() {
        // If the domains collided, user k and item k would always land on
        // the same shard; with 4 shards that coincidence should break
        // quickly.
        let m = map(4);
        assert!(
            (0..64u32).any(|k| m.shard_of_user(k) != m.shard_of_item(k)),
            "user and item spaces must hash under different domains"
        );
    }

    #[test]
    fn adding_a_shard_moves_only_keys_bound_for_the_new_shard() {
        const KEYS: u32 = 4000;
        let before = map(3);
        let after = map(4);
        let mut moved = 0usize;
        for id in 0..KEYS {
            let (old, new) = (before.shard_of_item(id), after.shard_of_item(id));
            if old != new {
                moved += 1;
                assert_eq!(new, 3, "item {id} moved between old shards ({old} -> {new})");
            }
        }
        // Expected moved fraction is 1/4; with 64 vnodes per shard the
        // realised fraction stays in a generous band around it.
        let frac = moved as f64 / KEYS as f64;
        assert!((0.10..=0.45).contains(&frac), "moved fraction {frac} out of band");
    }

    proptest! {
        #[test]
        fn routing_is_total_and_stable(shards in 1u32..9, seed in proptest::prelude::any::<u64>(), id in proptest::prelude::any::<u32>()) {
            let spec = ShardSpec { shards, seed, ..ShardSpec::single() };
            let a = ShardMap::new(spec).unwrap();
            let b = ShardMap::new(spec).unwrap();
            let owner = a.shard_of_item(id);
            prop_assert!(owner < shards);
            prop_assert_eq!(owner, b.shard_of_item(id));
            let u = a.shard_of_user(id);
            prop_assert!(u < shards);
            prop_assert_eq!(u, b.shard_of_user(id));
        }
    }
}
