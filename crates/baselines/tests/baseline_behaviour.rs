//! Cross-method behavioural tests of the baselines: algorithm-specific
//! invariants on crafted data, where the expected behaviour is unambiguous.

use rand::{rngs::StdRng, SeedableRng};
use rrre_baselines::rating::{Pmf, PmfConfig};
use rrre_baselines::reliability::{Rev2, Rev2Config, SpEagle, SpEagleConfig};
use rrre_data::{Dataset, ItemId, Label, Review, UserId};
use rrre_testkit::{corpus_for, FixtureSpec};

/// The corpus hyper-parameters these behavioural tests were tuned on: the
/// standard spec with a slightly longer document window.
fn spec() -> FixtureSpec {
    FixtureSpec { max_len: 16, scale: 0.05, ..FixtureSpec::small() }
}

/// Builds a two-block dataset: users 0..5 love items 0..3, users 5..10 love
/// items 3..6 and vice versa — a planted structure PMF must recover.
fn planted_blocks() -> Dataset {
    let mut reviews = Vec::new();
    let mut ts = 0i64;
    for u in 0..10u32 {
        for i in 0..6u32 {
            let likes = (u < 5) == (i < 3);
            // Leave one pair per user out for testing elsewhere.
            if (u + i) % 7 == 0 {
                continue;
            }
            reviews.push(Review {
                user: UserId(u),
                item: ItemId(i),
                rating: if likes { 5.0 } else { 1.0 },
                label: Label::Benign,
                timestamp: ts,
                text: format!("review {u} {i}"),
            });
            ts += 1;
        }
    }
    Dataset::new("blocks", 10, 6, reviews)
}

#[test]
fn pmf_recovers_planted_block_structure() {
    let ds = planted_blocks();
    let train: Vec<usize> = (0..ds.len()).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = PmfConfig { epochs: 200, reg: 0.01, ..Default::default() };
    let model = Pmf::fit(&ds, &train, cfg, &mut rng);
    // Held-out pairs follow the block rule.
    for u in 0..10u32 {
        for i in 0..6u32 {
            if (u + i) % 7 != 0 {
                continue;
            }
            let pred = model.predict(UserId(u), ItemId(i));
            let likes = (u < 5) == (i < 3);
            if likes {
                assert!(pred > 3.4, "user {u} item {i}: predicted {pred}, expected high");
            } else {
                assert!(pred < 2.6, "user {u} item {i}: predicted {pred}, expected low");
            }
        }
    }
}

#[test]
fn rev2_is_order_invariant() {
    // Shuffling review order must not change the fixed point.
    let ds = spec().dataset();
    let a = Rev2::run(&ds, Rev2Config::default());
    let mut shuffled = ds.clone();
    shuffled.reviews.reverse();
    let b = Rev2::run(&shuffled, Rev2Config::default());
    let n = ds.len();
    for i in 0..n {
        let score_a = a.score(&[i])[0];
        let score_b = b.score(&[n - 1 - i])[0];
        assert!((score_a - score_b).abs() < 1e-4, "review {i}: {score_a} vs {score_b}");
    }
}

#[test]
fn rev2_smoothing_pulls_singletons_to_prior() {
    // A user with one agreeable review should sit near the fairness prior,
    // not at an extreme.
    let mut reviews = Vec::new();
    for u in 0..6u32 {
        reviews.push(Review {
            user: UserId(u),
            item: ItemId(0),
            rating: 4.0,
            label: Label::Benign,
            timestamp: u as i64,
            text: String::new(),
        });
    }
    let ds = Dataset::new("singletons", 6, 1, reviews);
    let model = Rev2::run(&ds, Rev2Config { gamma_fairness: 5.0, ..Default::default() });
    for &f in model.fairness() {
        assert!((0.4..=0.9).contains(&f), "fairness {f}");
    }
}

#[test]
fn speagle_scores_respond_to_supervision_direction() {
    // Clamping a review fake must not *raise* its own score.
    let ds = spec().dataset();
    let corpus = corpus_for(&ds, &spec());
    let unsup = SpEagle::run(&ds, &corpus, &[], SpEagleConfig::default());
    // Pick an actually fake review and supervise it.
    let fake_idx = ds.reviews.iter().position(|r| r.label == Label::Fake).expect("a fake exists");
    let sup = SpEagle::run(&ds, &corpus, &[fake_idx], SpEagleConfig::default());
    let before = unsup.all_scores()[fake_idx];
    let after = sup.all_scores()[fake_idx];
    assert!(after <= before + 1e-6, "clamped-fake score rose: {before} -> {after}");
    assert!(after < 0.1, "clamped review should score near zero, got {after}");
}

#[test]
fn speagle_propagates_to_co_reviewers() {
    // Two reviews by the same user: clamping one fake lowers the other's
    // score relative to the unsupervised run.
    let reviews = vec![
        Review { user: UserId(0), item: ItemId(0), rating: 5.0, label: Label::Fake, timestamp: 0, text: "x".into() },
        Review { user: UserId(0), item: ItemId(1), rating: 5.0, label: Label::Fake, timestamp: 1, text: "x".into() },
        Review { user: UserId(1), item: ItemId(0), rating: 4.0, label: Label::Benign, timestamp: 2, text: "y".into() },
        Review { user: UserId(1), item: ItemId(1), rating: 4.0, label: Label::Benign, timestamp: 3, text: "y".into() },
    ];
    let ds = Dataset::new("pair", 2, 2, reviews);
    let corpus = corpus_for(&ds, &spec());
    let unsup = SpEagle::run(&ds, &corpus, &[], SpEagleConfig::default());
    let sup = SpEagle::run(&ds, &corpus, &[0], SpEagleConfig::default());
    assert!(
        sup.all_scores()[1] < unsup.all_scores()[1],
        "sibling review should become more suspicious: {} vs {}",
        sup.all_scores()[1],
        unsup.all_scores()[1]
    );
}
