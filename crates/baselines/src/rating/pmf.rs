//! PMF baseline — Mnih & Salakhutdinov, *Probabilistic Matrix Factorization*
//! (NIPS 2008): biased matrix factorisation trained by SGD, the classic
//! ID-only rating predictor. Hand-rolled (no autograd) since its gradients
//! are two dot products.

use rand::Rng;
use rrre_data::Dataset;

/// PMF training configuration.
#[derive(Debug, Clone, Copy)]
pub struct PmfConfig {
    /// Latent dimension.
    pub factors: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularisation.
    pub reg: f32,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for PmfConfig {
    fn default() -> Self {
        Self { factors: 16, lr: 0.01, reg: 0.05, epochs: 40 }
    }
}

/// Trained PMF model: `r̂ = μ + b_u + b_i + p_u·q_i`.
#[derive(Debug, Clone)]
pub struct Pmf {
    factors: usize,
    global_mean: f32,
    user_bias: Vec<f32>,
    item_bias: Vec<f32>,
    user_factors: Vec<f32>,
    item_factors: Vec<f32>,
}

impl Pmf {
    /// Trains on the listed review indices.
    pub fn fit(ds: &Dataset, train: &[usize], cfg: PmfConfig, rng: &mut impl Rng) -> Self {
        assert!(!train.is_empty(), "Pmf::fit: empty training set");
        let k = cfg.factors;
        let scale = 0.1 / (k as f32).sqrt();
        let mut model = Self {
            factors: k,
            global_mean: train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / train.len() as f32,
            user_bias: vec![0.0; ds.n_users],
            item_bias: vec![0.0; ds.n_items],
            user_factors: (0..ds.n_users * k).map(|_| rng.gen_range(-scale..scale)).collect(),
            item_factors: (0..ds.n_items * k).map(|_| rng.gen_range(-scale..scale)).collect(),
        };

        let mut order: Vec<usize> = train.to_vec();
        for _ in 0..cfg.epochs {
            // Fisher–Yates with the caller's RNG keeps runs reproducible.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &ri in &order {
                let r = &ds.reviews[ri];
                let (u, it) = (r.user.index(), r.item.index());
                let err = model.raw_predict(u, it) - r.rating;
                model.user_bias[u] -= cfg.lr * (err + cfg.reg * model.user_bias[u]);
                model.item_bias[it] -= cfg.lr * (err + cfg.reg * model.item_bias[it]);
                for f in 0..k {
                    let pu = model.user_factors[u * k + f];
                    let qi = model.item_factors[it * k + f];
                    model.user_factors[u * k + f] -= cfg.lr * (err * qi + cfg.reg * pu);
                    model.item_factors[it * k + f] -= cfg.lr * (err * pu + cfg.reg * qi);
                }
            }
        }
        model
    }

    fn raw_predict(&self, user: usize, item: usize) -> f32 {
        let k = self.factors;
        let dot: f32 = self.user_factors[user * k..(user + 1) * k]
            .iter()
            .zip(&self.item_factors[item * k..(item + 1) * k])
            .map(|(&p, &q)| p * q)
            .sum();
        self.global_mean + self.user_bias[user] + self.item_bias[item] + dot
    }

    /// Predicted rating, clamped to the star range.
    pub fn predict(&self, user: rrre_data::UserId, item: rrre_data::ItemId) -> f32 {
        self.raw_predict(user.index(), item.index()).clamp(1.0, 5.0)
    }

    /// Predictions for the listed review indices.
    pub fn predict_reviews(&self, ds: &Dataset, indices: &[usize]) -> Vec<f32> {
        indices
            .iter()
            .map(|&i| self.predict(ds.reviews[i].user, ds.reviews[i].item))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::train_test_split;
    use rrre_metrics::rmse;

    #[test]
    fn recovers_planted_structure_better_than_mean() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.1));
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let model = Pmf::fit(&ds, &split.train, PmfConfig::default(), &mut rng);

        let preds = model.predict_reviews(&ds, &split.test);
        let targets: Vec<f32> = split.test.iter().map(|&i| ds.reviews[i].rating).collect();
        let model_rmse = rmse(&preds, &targets);

        let mean = split.train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / split.train.len() as f32;
        let mean_rmse = rmse(&vec![mean; targets.len()], &targets);
        assert!(model_rmse < mean_rmse, "PMF {model_rmse} vs mean predictor {mean_rmse}");
    }

    #[test]
    fn fits_training_set_closely_on_tiny_data() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.03));
        let mut rng = StdRng::seed_from_u64(1);
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = PmfConfig { epochs: 150, reg: 0.001, ..Default::default() };
        let model = Pmf::fit(&ds, &train, cfg, &mut rng);
        let preds = model.predict_reviews(&ds, &train);
        let targets: Vec<f32> = train.iter().map(|&i| ds.reviews[i].rating).collect();
        assert!(rmse(&preds, &targets) < 0.8);
    }

    #[test]
    fn predictions_stay_in_star_range() {
        let ds = generate(&SynthConfig::cds().scaled(0.05));
        let mut rng = StdRng::seed_from_u64(2);
        let train: Vec<usize> = (0..ds.len()).collect();
        let model = Pmf::fit(&ds, &train, PmfConfig::default(), &mut rng);
        for p in model.predict_reviews(&ds, &train) {
            assert!((1.0..=5.0).contains(&p));
        }
    }
}
