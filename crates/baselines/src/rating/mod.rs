//! Rating-prediction baselines of the paper's Table III.

mod deepconn;
mod naive;
mod der;
mod narre;
mod pmf;

pub use deepconn::{DeepConn, DeepConnConfig};
pub use naive::{MeanKind, MeanPredictor};
pub use der::{Der, DerConfig};
pub use narre::{Narre, NarreConfig};
pub use pmf::{Pmf, PmfConfig};
