//! DeepCoNN baseline — Zheng, Noroozi & Yu, *Joint Deep Modeling of Users
//! and Items Using Reviews for Recommendation* (WSDM 2017).
//!
//! Two parallel towers: the user tower runs a 1-D CNN with max-over-time
//! pooling over the concatenation of the user's review texts, the item tower
//! does the same over the item's review texts; a factorization machine on
//! the concatenated latent vectors predicts the rating. Word embeddings are
//! the frozen pretrained vectors (the original learns them; freezing is a
//! documented CPU-budget simplification that applies equally to every model
//! here).

use rrre_data::repr::{concat_document, embed_document, item_input_reviews, user_input_reviews};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrre_data::{Dataset, DatasetIndex, EncodedCorpus};
use rrre_tensor::nn::{Conv1dMaxPool, FactorizationMachine, Linear};
use rrre_tensor::{optim::Adam, Params, Tape, Tensor};

/// DeepCoNN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeepConnConfig {
    /// Max tokens per tower document.
    pub doc_tokens: usize,
    /// Reviews concatenated per document.
    pub doc_reviews: usize,
    /// Convolution window width.
    pub conv_width: usize,
    /// Convolution filters.
    pub filters: usize,
    /// Latent dimension after the dense layer.
    pub latent: usize,
    /// FM interaction factors.
    pub fm_factors: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Examples per optimiser step.
    pub batch_size: usize,
    /// L2 regularisation strength.
    pub l2: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepConnConfig {
    fn default() -> Self {
        Self {
            doc_tokens: 60,
            doc_reviews: 8,
            conv_width: 3,
            filters: 32,
            latent: 16,
            fm_factors: 8,
            lr: 0.003,
            epochs: 6,
            batch_size: 32,
            l2: 3e-4,
            seed: 0xDCC,
        }
    }
}

/// Trained DeepCoNN model.
pub struct DeepConn {
    cfg: DeepConnConfig,
    params: Params,
    user_conv: Conv1dMaxPool,
    item_conv: Conv1dMaxPool,
    user_fc: Linear,
    item_fc: Linear,
    fm: FactorizationMachine,
    user_docs: Vec<Vec<usize>>,
    item_docs: Vec<Vec<usize>>,
    /// Train-set mean rating; the FM predicts the residual around it.
    mean_rating: f32,
}

impl DeepConn {
    /// Trains on the listed review indices.
    pub fn fit(ds: &Dataset, corpus: &EncodedCorpus, train: &[usize], cfg: DeepConnConfig) -> Self {
        assert!(!train.is_empty(), "DeepConn::fit: empty training set");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = Params::new();
        let dim = corpus.embed_dim();
        let user_conv = Conv1dMaxPool::new(&mut params, &mut rng, "deepconn.user.conv", dim, cfg.conv_width, cfg.filters);
        let item_conv = Conv1dMaxPool::new(&mut params, &mut rng, "deepconn.item.conv", dim, cfg.conv_width, cfg.filters);
        let user_fc = Linear::new(&mut params, &mut rng, "deepconn.user.fc", cfg.filters, cfg.latent);
        let item_fc = Linear::new(&mut params, &mut rng, "deepconn.item.fc", cfg.filters, cfg.latent);
        let fm = FactorizationMachine::new(&mut params, &mut rng, "deepconn.fm", 2 * cfg.latent, cfg.fm_factors);

        let index = ds.index();
        let (user_docs, item_docs) = build_documents(ds, corpus, &index, &cfg);
        let mean_rating = train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / train.len() as f32;

        let mut model =
            Self { cfg, params, user_conv, item_conv, user_fc, item_fc, fm, user_docs, item_docs, mean_rating };
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = train.to_vec();

        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(cfg.batch_size) {
                model.params.zero_grads();
                for &ri in chunk {
                    let r = &ds.reviews[ri];
                    let mut tape = Tape::new();
                    let pred = model.forward(&mut tape, corpus, r.user.index(), r.item.index());
                    let loss = tape.mse(pred, &Tensor::scalar(r.rating));
                    let scaled = tape.scale(loss, 1.0 / chunk.len() as f32);
                    tape.backward(scaled, &mut model.params);
                }
                model.params.apply_l2_grad(model.cfg.l2);
                opt.step(&mut model.params);
            }
        }
        model
    }

    fn forward(&self, tape: &mut Tape, corpus: &EncodedCorpus, user: usize, item: usize) -> rrre_tensor::Var {
        let u_seq = tape.constant(embed_document(corpus, &self.user_docs[user]));
        let i_seq = tape.constant(embed_document(corpus, &self.item_docs[item]));
        let u_pool = self.user_conv.forward(tape, &self.params, u_seq);
        let i_pool = self.item_conv.forward(tape, &self.params, i_seq);
        let u_lat = self.user_fc.forward(tape, &self.params, u_pool);
        let i_lat = self.item_fc.forward(tape, &self.params, i_pool);
        let joint = tape.concat_cols(&[u_lat, i_lat]);
        let residual = self.fm.forward(tape, &self.params, joint);
        tape.add_scalar(residual, self.mean_rating)
    }

    /// Predicted rating for a user–item pair, clamped to the star range.
    pub fn predict(&self, corpus: &EncodedCorpus, user: rrre_data::UserId, item: rrre_data::ItemId) -> f32 {
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, corpus, user.index(), item.index());
        tape.value(pred).item().clamp(1.0, 5.0)
    }

    /// Predictions for the listed review indices.
    pub fn predict_reviews(&self, ds: &Dataset, corpus: &EncodedCorpus, indices: &[usize]) -> Vec<f32> {
        indices
            .iter()
            .map(|&i| self.predict(corpus, ds.reviews[i].user, ds.reviews[i].item))
            .collect()
    }
}

/// Builds one padded token document per user and per item. Documents shorter
/// than the convolution window are padded up to it.
fn build_documents(
    ds: &Dataset,
    corpus: &EncodedCorpus,
    index: &DatasetIndex,
    cfg: &DeepConnConfig,
) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let pad_to_window = |mut doc: Vec<usize>| {
        while doc.len() < cfg.conv_width {
            doc.push(rrre_text::PAD);
        }
        doc
    };
    let user_docs = (0..ds.n_users)
        .map(|u| {
            let revs = user_input_reviews(index, rrre_data::UserId(u as u32), cfg.doc_reviews);
            pad_to_window(concat_document(corpus, &revs, cfg.doc_tokens))
        })
        .collect();
    let item_docs = (0..ds.n_items)
        .map(|i| {
            let revs = item_input_reviews(index, rrre_data::ItemId(i as u32), cfg.doc_reviews);
            pad_to_window(concat_document(corpus, &revs, cfg.doc_tokens))
        })
        .collect();
    (user_docs, item_docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig};
    use rrre_metrics::rmse;
    use rrre_text::word2vec::Word2VecConfig;

    fn tiny() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.04));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 16,
                word2vec: Word2VecConfig { dim: 8, epochs: 2, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    #[test]
    fn learns_better_than_mean_predictor() {
        let (ds, corpus) = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let cfg = DeepConnConfig { epochs: 4, doc_tokens: 30, filters: 12, latent: 8, ..Default::default() };
        let model = DeepConn::fit(&ds, &corpus, &split.train, cfg);

        let preds = model.predict_reviews(&ds, &corpus, &split.test);
        let targets: Vec<f32> = split.test.iter().map(|&i| ds.reviews[i].rating).collect();
        let model_rmse = rmse(&preds, &targets);
        let mean = split.train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / split.train.len() as f32;
        let mean_rmse = rmse(&vec![mean; targets.len()], &targets);
        assert!(model_rmse < mean_rmse + 0.05, "DeepCoNN {model_rmse} vs mean {mean_rmse}");
    }

    #[test]
    fn predictions_in_star_range() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = DeepConnConfig { epochs: 1, doc_tokens: 20, filters: 8, latent: 4, ..Default::default() };
        let model = DeepConn::fit(&ds, &corpus, &train, cfg);
        for p in model.predict_reviews(&ds, &corpus, &train[..10.min(train.len())]) {
            assert!((1.0..=5.0).contains(&p));
        }
    }
}
