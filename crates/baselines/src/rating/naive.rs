//! Naive rating predictors — the floors every learned method must clear.
//! Not part of the paper's Table III, but indispensable for sanity-checking
//! the harness (a learned method below these floors is broken, whatever its
//! architecture says).

use rrre_data::Dataset;

/// Predicts with global / per-user / per-item means, with additive
/// shrinkage toward the global mean for thin entities.
#[derive(Debug, Clone)]
pub struct MeanPredictor {
    global: f32,
    user_offset: Vec<f32>,
    item_offset: Vec<f32>,
}

/// Which signal the naive prediction combines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeanKind {
    /// The train-set mean rating for everyone.
    Global,
    /// Global mean + shrunk per-user offset.
    User,
    /// Global mean + shrunk per-item offset.
    Item,
    /// Global mean + both offsets.
    UserItem,
}

impl MeanPredictor {
    /// Fits the means on the listed train reviews with Laplace smoothing
    /// `pseudo` (pseudo-observations of the global mean per entity).
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn fit(ds: &Dataset, train: &[usize], pseudo: f32) -> Self {
        assert!(!train.is_empty(), "MeanPredictor::fit: empty training set");
        let global = train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / train.len() as f32;
        let mut user_sum = vec![0.0f32; ds.n_users];
        let mut user_cnt = vec![0.0f32; ds.n_users];
        let mut item_sum = vec![0.0f32; ds.n_items];
        let mut item_cnt = vec![0.0f32; ds.n_items];
        for &i in train {
            let r = &ds.reviews[i];
            user_sum[r.user.index()] += r.rating - global;
            user_cnt[r.user.index()] += 1.0;
            item_sum[r.item.index()] += r.rating - global;
            item_cnt[r.item.index()] += 1.0;
        }
        let shrink = |sum: Vec<f32>, cnt: Vec<f32>| -> Vec<f32> {
            sum.into_iter().zip(cnt).map(|(s, c)| s / (c + pseudo)).collect()
        };
        Self {
            global,
            user_offset: shrink(user_sum, user_cnt),
            item_offset: shrink(item_sum, item_cnt),
        }
    }

    /// The global train mean.
    pub fn global_mean(&self) -> f32 {
        self.global
    }

    /// Predicts a rating for a pair, clamped to the star range.
    pub fn predict(&self, kind: MeanKind, user: rrre_data::UserId, item: rrre_data::ItemId) -> f32 {
        let mut p = self.global;
        if matches!(kind, MeanKind::User | MeanKind::UserItem) {
            p += self.user_offset[user.index()];
        }
        if matches!(kind, MeanKind::Item | MeanKind::UserItem) {
            p += self.item_offset[item.index()];
        }
        p.clamp(1.0, 5.0)
    }

    /// Predictions for the listed review indices.
    pub fn predict_reviews(&self, ds: &Dataset, kind: MeanKind, indices: &[usize]) -> Vec<f32> {
        indices
            .iter()
            .map(|&i| self.predict(kind, ds.reviews[i].user, ds.reviews[i].item))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::train_test_split;
    use rrre_metrics::rmse;

    #[test]
    fn item_mean_beats_global_on_quality_driven_data() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.1));
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let model = MeanPredictor::fit(&ds, &split.train, 2.0);
        let targets: Vec<f32> = split.test.iter().map(|&i| ds.reviews[i].rating).collect();
        let global = rmse(&model.predict_reviews(&ds, MeanKind::Global, &split.test), &targets);
        let item = rmse(&model.predict_reviews(&ds, MeanKind::Item, &split.test), &targets);
        assert!(item < global, "item-mean {item} should beat global {global}");
    }

    #[test]
    fn shrinkage_bounds_thin_entity_offsets() {
        let ds = generate(&SynthConfig::cds().scaled(0.05));
        let train: Vec<usize> = (0..ds.len()).collect();
        let strong = MeanPredictor::fit(&ds, &train, 100.0);
        // Heavy shrinkage pushes everything to the global mean.
        for &off in strong.user_offset.iter().chain(&strong.item_offset) {
            assert!(off.abs() < 0.2, "offset {off}");
        }
    }

    #[test]
    fn predictions_in_star_range() {
        let ds = generate(&SynthConfig::musics().scaled(0.05));
        let train: Vec<usize> = (0..ds.len()).collect();
        let model = MeanPredictor::fit(&ds, &train, 0.0);
        for p in model.predict_reviews(&ds, MeanKind::UserItem, &train) {
            assert!((1.0..=5.0).contains(&p));
        }
    }
}
