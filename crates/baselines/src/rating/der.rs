//! DER baseline — Chen, Zhang & Qin, *Dynamic Explainable Recommendation
//! Based on Neural Attentive Models* (AAAI 2019).
//!
//! Models the user's *dynamic* preference with a time-aware GRU over the
//! chronological sequence of their reviews (each input is the frozen review
//! vector plus a log time-gap feature — the time-awareness of the original's
//! gated unit), a static item profile from mean review content, ID
//! embeddings, and an FM prediction layer. Trained with plain MSE.
//!
//! The paper observes DER underperforms on these datasets because users
//! average under three reviews — too short a history for a sequence model —
//! and the same effect reproduces here.

use rrre_data::repr::{item_input_reviews, user_input_reviews, ReviewVectors};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrre_data::{Dataset, DatasetIndex, EncodedCorpus};
use rrre_tensor::nn::{Embedding, FactorizationMachine, Gru, Linear};
use rrre_tensor::{optim::Adam, Params, Tape, Tensor, Var};

/// DER hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DerConfig {
    /// Max reviews in the user history sequence.
    pub s_u: usize,
    /// Reviews in the item profile.
    pub s_i: usize,
    /// GRU hidden size (also the ID-embedding size).
    pub hidden: usize,
    /// FM interaction factors.
    pub fm_factors: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Examples per optimiser step.
    pub batch_size: usize,
    /// L2 regularisation.
    pub l2: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DerConfig {
    fn default() -> Self {
        Self {
            s_u: 8,
            s_i: 12,
            hidden: 16,
            fm_factors: 8,
            lr: 0.005,
            epochs: 12,
            batch_size: 64,
            l2: 1e-3,
            seed: 0xDE4,
        }
    }
}

/// Trained DER model.
pub struct Der {
    cfg: DerConfig,
    params: Params,
    user_emb: Embedding,
    item_emb: Embedding,
    gru: Gru,
    item_fc: Linear,
    fm: FactorizationMachine,
    review_vectors: ReviewVectors,
    index: DatasetIndex,
    /// Train-set mean rating; the FM predicts the residual around it.
    mean_rating: f32,
}

impl Der {
    /// Trains on the listed review indices.
    pub fn fit(ds: &Dataset, corpus: &EncodedCorpus, train: &[usize], cfg: DerConfig) -> Self {
        assert!(!train.is_empty(), "Der::fit: empty training set");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = Params::new();
        let dim = corpus.embed_dim();
        let user_emb = Embedding::new(&mut params, &mut rng, "der.user_emb", ds.n_users, cfg.hidden);
        let item_emb = Embedding::new(&mut params, &mut rng, "der.item_emb", ds.n_items, cfg.hidden);
        // +1 input column: the log time-gap feature.
        let gru = Gru::new(&mut params, &mut rng, "der.gru", dim + 1, cfg.hidden);
        let item_fc = Linear::new(&mut params, &mut rng, "der.item_fc", dim, cfg.hidden);
        let fm = FactorizationMachine::new(&mut params, &mut rng, "der.fm", 2 * cfg.hidden, cfg.fm_factors);

        let review_vectors = ReviewVectors::build(ds, corpus);
        let index = ds.index();
        let mean_rating = train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / train.len() as f32;
        let mut model =
            Self { cfg, params, user_emb, item_emb, gru, item_fc, fm, review_vectors, index, mean_rating };

        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = train.to_vec();
        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(cfg.batch_size) {
                model.params.zero_grads();
                for &ri in chunk {
                    let r = &ds.reviews[ri];
                    let mut tape = Tape::new();
                    let pred = model.forward(&mut tape, ds, r.user.index(), r.item.index());
                    let loss = tape.mse(pred, &Tensor::scalar(r.rating));
                    let scaled = tape.scale(loss, 1.0 / chunk.len() as f32);
                    tape.backward(scaled, &mut model.params);
                }
                model.params.apply_l2_grad(model.cfg.l2);
                opt.step(&mut model.params);
            }
        }
        model
    }

    /// Builds the `[T, dim+1]` time-augmented history sequence of a user.
    fn user_sequence(&self, ds: &Dataset, reviews: &[usize]) -> Tensor {
        let dim = self.review_vectors.dim();
        let mut seq = Tensor::zeros(reviews.len().max(1), dim + 1);
        let mut prev_ts: Option<i64> = None;
        for (row, &ri) in reviews.iter().enumerate() {
            seq.row_mut(row)[..dim].copy_from_slice(self.review_vectors.vector(ri));
            let ts = ds.reviews[ri].timestamp;
            let gap = prev_ts.map_or(0.0, |p| ((ts - p).max(0) as f32 + 1.0).ln());
            seq.row_mut(row)[dim] = gap;
            prev_ts = Some(ts);
        }
        seq
    }

    fn forward(&self, tape: &mut Tape, ds: &Dataset, user: usize, item: usize) -> Var {
        let cfg = &self.cfg;
        let u_revs = user_input_reviews(&self.index, rrre_data::UserId(user as u32), cfg.s_u);
        let i_revs = item_input_reviews(&self.index, rrre_data::ItemId(item as u32), cfg.s_i);

        // Dynamic user state from the GRU over the time-ordered history.
        let u_dyn = if u_revs.is_empty() {
            tape.constant(Tensor::zeros(1, cfg.hidden))
        } else {
            let seq = tape.constant(self.user_sequence(ds, &u_revs));
            self.gru.forward_final(tape, &self.params, seq)
        };
        // Static item profile: mean review content, densely projected.
        let i_profile = if i_revs.is_empty() {
            tape.constant(Tensor::zeros(1, cfg.hidden))
        } else {
            let (matrix, mask) = self.review_vectors.stack_padded(&i_revs, cfg.s_i);
            let real = mask.iter().filter(|&&b| b).count().max(1) as f32;
            let m = tape.constant(matrix);
            let summed = tape.sum_rows(m);
            let mean = tape.scale(summed, 1.0 / real);
            self.item_fc.forward(tape, &self.params, mean)
        };

        let u_id = self.user_emb.forward(tape, &self.params, &[user]);
        let i_id = self.item_emb.forward(tape, &self.params, &[item]);
        let x_u = tape.add(u_id, u_dyn);
        let y_i = tape.add(i_id, i_profile);
        let joint = tape.concat_cols(&[x_u, y_i]);
        let residual = self.fm.forward(tape, &self.params, joint);
        tape.add_scalar(residual, self.mean_rating)
    }

    /// Predicted rating for a user–item pair, clamped to the star range.
    pub fn predict(&self, ds: &Dataset, user: rrre_data::UserId, item: rrre_data::ItemId) -> f32 {
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, ds, user.index(), item.index());
        tape.value(pred).item().clamp(1.0, 5.0)
    }

    /// Predictions for the listed review indices.
    pub fn predict_reviews(&self, ds: &Dataset, indices: &[usize]) -> Vec<f32> {
        indices
            .iter()
            .map(|&i| self.predict(ds, ds.reviews[i].user, ds.reviews[i].item))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig};
    use rrre_metrics::rmse;
    use rrre_text::word2vec::Word2VecConfig;

    fn tiny() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.04));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 16,
                word2vec: Word2VecConfig { dim: 8, epochs: 2, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    #[test]
    fn learns_better_than_mean_predictor() {
        let (ds, corpus) = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let cfg = DerConfig { epochs: 6, s_u: 4, s_i: 8, hidden: 8, ..Default::default() };
        let model = Der::fit(&ds, &corpus, &split.train, cfg);

        let preds = model.predict_reviews(&ds, &split.test);
        let targets: Vec<f32> = split.test.iter().map(|&i| ds.reviews[i].rating).collect();
        let model_rmse = rmse(&preds, &targets);
        let mean = split.train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / split.train.len() as f32;
        let mean_rmse = rmse(&vec![mean; targets.len()], &targets);
        assert!(model_rmse < mean_rmse + 0.05, "DER {model_rmse} vs mean {mean_rmse}");
    }

    #[test]
    fn time_gaps_enter_the_sequence() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = DerConfig { epochs: 1, s_u: 3, s_i: 5, hidden: 4, ..Default::default() };
        let model = Der::fit(&ds, &corpus, &train, cfg);
        // Find a user with ≥ 2 reviews and check the gap column is non-zero
        // from the second step on.
        let index = ds.index();
        let user = (0..ds.n_users)
            .find(|&u| index.user_degree(rrre_data::UserId(u as u32)) >= 2)
            .expect("some user with two reviews");
        let revs = index.user_reviews(rrre_data::UserId(user as u32)).to_vec();
        let seq = model.user_sequence(&ds, &revs);
        let dim = model.review_vectors.dim();
        assert_eq!(seq.get(0, dim), 0.0);
        assert!(seq.get(1, dim) >= 0.0);
    }
}
