//! NARRE baseline — Chen et al., *Neural Attentional Rating Regression with
//! Review-level Explanations* (WWW 2018).
//!
//! Review-level attention over a user's (item's) reviews, where each review
//! is scored against the ID embedding of the item (user) it addresses; the
//! attended text representation is fused with ID embeddings and fed to a
//! prediction layer. Trained with plain MSE on **all** training reviews —
//! NARRE has no notion of reliability, which is exactly the gap RRRE's
//! biased loss closes (Table III).
//!
//! Review texts are represented by frozen pretrained review vectors (the
//! original uses a trainable CNN per review; freezing the text encoder is
//! the uniform CPU-budget simplification of this reproduction, applied to
//! RRRE's frozen mode as well).

use rrre_data::repr::{item_input_reviews, user_input_reviews, ReviewVectors};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrre_data::{Dataset, DatasetIndex, EncodedCorpus};
use rrre_tensor::nn::{AttentionPool, Embedding, FactorizationMachine, Linear};
use rrre_tensor::{optim::Adam, Params, Tape, Tensor, Var};

/// NARRE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct NarreConfig {
    /// Reviews per user tower (`s_u`).
    pub s_u: usize,
    /// Reviews per item tower (`s_i`).
    pub s_i: usize,
    /// ID-embedding dimension.
    pub id_dim: usize,
    /// Attention hidden size.
    pub attn_dim: usize,
    /// FM interaction factors.
    pub fm_factors: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Examples per optimiser step.
    pub batch_size: usize,
    /// L2 regularisation.
    pub l2: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NarreConfig {
    fn default() -> Self {
        Self {
            s_u: 8,
            s_i: 12,
            id_dim: 16,
            attn_dim: 16,
            fm_factors: 8,
            lr: 0.005,
            epochs: 12,
            batch_size: 64,
            l2: 1e-3,
            seed: 0x4A44E,
        }
    }
}

/// Trained NARRE model.
pub struct Narre {
    cfg: NarreConfig,
    params: Params,
    user_emb: Embedding,
    item_emb: Embedding,
    user_attn: AttentionPool,
    item_attn: AttentionPool,
    user_fc: Linear,
    item_fc: Linear,
    fm: FactorizationMachine,
    review_vectors: ReviewVectors,
    index: DatasetIndex,
    /// Train-set mean rating; the FM predicts the residual around it.
    mean_rating: f32,
}

impl Narre {
    /// Trains on the listed review indices.
    pub fn fit(ds: &Dataset, corpus: &EncodedCorpus, train: &[usize], cfg: NarreConfig) -> Self {
        assert!(!train.is_empty(), "Narre::fit: empty training set");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = Params::new();
        let dim = corpus.embed_dim();
        let user_emb = Embedding::new(&mut params, &mut rng, "narre.user_emb", ds.n_users, cfg.id_dim);
        let item_emb = Embedding::new(&mut params, &mut rng, "narre.item_emb", ds.n_items, cfg.id_dim);
        let user_attn = AttentionPool::new(&mut params, &mut rng, "narre.user_attn", dim, cfg.id_dim, cfg.attn_dim);
        let item_attn = AttentionPool::new(&mut params, &mut rng, "narre.item_attn", dim, cfg.id_dim, cfg.attn_dim);
        let user_fc = Linear::new(&mut params, &mut rng, "narre.user_fc", dim, cfg.id_dim);
        let item_fc = Linear::new(&mut params, &mut rng, "narre.item_fc", dim, cfg.id_dim);
        let fm = FactorizationMachine::new(&mut params, &mut rng, "narre.fm", 2 * cfg.id_dim, cfg.fm_factors);

        let review_vectors = ReviewVectors::build(ds, corpus);
        let index = ds.index();
        let mean_rating = train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / train.len() as f32;

        let mut model = Self {
            cfg,
            params,
            user_emb,
            item_emb,
            user_attn,
            item_attn,
            user_fc,
            item_fc,
            fm,
            review_vectors,
            index,
            mean_rating,
        };
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = train.to_vec();
        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(cfg.batch_size) {
                model.params.zero_grads();
                for &ri in chunk {
                    let r = &ds.reviews[ri];
                    let mut tape = Tape::new();
                    let pred = model.forward(&mut tape, ds, r.user.index(), r.item.index());
                    let loss = tape.mse(pred, &Tensor::scalar(r.rating));
                    let scaled = tape.scale(loss, 1.0 / chunk.len() as f32);
                    tape.backward(scaled, &mut model.params);
                }
                model.params.apply_l2_grad(model.cfg.l2);
                opt.step(&mut model.params);
            }
        }
        model
    }

    /// One tower: attention over the entity's review vectors with per-review
    /// counterpart-ID context, then a dense projection fused with the ID
    /// embedding.
    #[allow(clippy::too_many_arguments)] // mirrors the architecture diagram 1:1
    fn tower(
        &self,
        tape: &mut Tape,
        reviews: &[usize],
        m: usize,
        ctx_ids: &[usize],
        ctx_emb: &Embedding,
        attn: &AttentionPool,
        fc: &Linear,
        own_id_vec: Var,
    ) -> Var {
        let (matrix, mask) = self.review_vectors.stack_padded(reviews, m);
        let any_real = mask.iter().any(|&b| b);
        let pooled = if any_real {
            let items = tape.constant(matrix);
            // Per-review context: the counterpart entity of each review slot
            // (padding slots use id 0; they are masked out of the softmax).
            let take = reviews.len().min(m);
            let mut ids = vec![0usize; m];
            for (slot, &ci) in ids.iter_mut().zip(&ctx_ids[ctx_ids.len() - take..]) {
                *slot = ci;
            }
            let ctx = ctx_emb.forward(tape, &self.params, &ids);
            attn.forward(tape, &self.params, items, ctx, Some(&mask))
        } else {
            tape.constant(Tensor::zeros(1, self.review_vectors.dim()))
        };
        let text_part = fc.forward(tape, &self.params, pooled);
        tape.add(own_id_vec, text_part)
    }

    fn forward(&self, tape: &mut Tape, ds: &Dataset, user: usize, item: usize) -> Var {
        let cfg = &self.cfg;
        let u_revs = user_input_reviews(&self.index, rrre_data::UserId(user as u32), cfg.s_u);
        let i_revs = item_input_reviews(&self.index, rrre_data::ItemId(item as u32), cfg.s_i);
        let u_ctx_ids: Vec<usize> = u_revs.iter().map(|&ri| ds.reviews[ri].item.index()).collect();
        let i_ctx_ids: Vec<usize> = i_revs.iter().map(|&ri| ds.reviews[ri].user.index()).collect();

        let u_id = self.user_emb.forward(tape, &self.params, &[user]);
        let i_id = self.item_emb.forward(tape, &self.params, &[item]);

        let x_u = self.tower(tape, &u_revs, cfg.s_u, &u_ctx_ids, &self.item_emb, &self.user_attn, &self.user_fc, u_id);
        let y_i = self.tower(tape, &i_revs, cfg.s_i, &i_ctx_ids, &self.user_emb, &self.item_attn, &self.item_fc, i_id);

        let joint = tape.concat_cols(&[x_u, y_i]);
        let residual = self.fm.forward(tape, &self.params, joint);
        tape.add_scalar(residual, self.mean_rating)
    }

    /// Predicted rating for a user–item pair, clamped to the star range.
    pub fn predict(&self, ds: &Dataset, user: rrre_data::UserId, item: rrre_data::ItemId) -> f32 {
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, ds, user.index(), item.index());
        tape.value(pred).item().clamp(1.0, 5.0)
    }

    /// Predictions for the listed review indices.
    pub fn predict_reviews(&self, ds: &Dataset, indices: &[usize]) -> Vec<f32> {
        indices
            .iter()
            .map(|&i| self.predict(ds, ds.reviews[i].user, ds.reviews[i].item))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig};
    use rrre_metrics::rmse;
    use rrre_text::word2vec::Word2VecConfig;

    fn tiny() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.04));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 16,
                word2vec: Word2VecConfig { dim: 8, epochs: 2, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    #[test]
    fn learns_better_than_mean_predictor() {
        let (ds, corpus) = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let cfg = NarreConfig { epochs: 6, s_u: 4, s_i: 8, id_dim: 8, attn_dim: 8, ..Default::default() };
        let model = Narre::fit(&ds, &corpus, &split.train, cfg);

        let preds = model.predict_reviews(&ds, &split.test);
        let targets: Vec<f32> = split.test.iter().map(|&i| ds.reviews[i].rating).collect();
        let model_rmse = rmse(&preds, &targets);
        let mean = split.train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / split.train.len() as f32;
        let mean_rmse = rmse(&vec![mean; targets.len()], &targets);
        assert!(model_rmse < mean_rmse + 0.05, "NARRE {model_rmse} vs mean {mean_rmse}");
    }

    #[test]
    fn predictions_in_star_range() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = NarreConfig { epochs: 1, s_u: 3, s_i: 5, id_dim: 4, attn_dim: 4, ..Default::default() };
        let model = Narre::fit(&ds, &corpus, &train, cfg);
        for p in model.predict_reviews(&ds, &train[..10.min(train.len())]) {
            assert!((1.0..=5.0).contains(&p));
        }
    }
}
