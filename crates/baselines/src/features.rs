//! Behavioural and content features of reviews, shared by the feature-based
//! reliability baselines (ICWSM13) and by SpEagle's node priors.
//!
//! Feature computation never reads labels — only ratings, timestamps, text
//! and graph structure, all of which are observable for test reviews too
//! (the reliability task scores reviews that already exist).

use rrre_data::{Dataset, DatasetIndex, EncodedCorpus};
use rrre_text::similarity::jaccard;

/// Number of features produced by [`review_features`].
pub const N_FEATURES: usize = 12;

/// Precomputed per-dataset aggregates needed by the feature extractor.
#[derive(Debug, Clone)]
pub struct FeatureContext {
    index: DatasetIndex,
    item_mean: Vec<f32>,
    global_mean: f32,
}

impl FeatureContext {
    /// Builds aggregates over the full dataset.
    pub fn build(ds: &Dataset) -> Self {
        let index = ds.index();
        let mut item_sum = vec![0.0f32; ds.n_items];
        let mut item_cnt = vec![0usize; ds.n_items];
        let mut total = 0.0f32;
        for r in &ds.reviews {
            item_sum[r.item.index()] += r.rating;
            item_cnt[r.item.index()] += 1;
            total += r.rating;
        }
        let global_mean = if ds.is_empty() { 3.0 } else { total / ds.len() as f32 };
        let item_mean = item_sum
            .iter()
            .zip(&item_cnt)
            .map(|(&s, &c)| if c > 0 { s / c as f32 } else { global_mean })
            .collect();
        Self { index, item_mean, global_mean }
    }

    /// The shared dataset index.
    pub fn index(&self) -> &DatasetIndex {
        &self.index
    }
}

/// Extracts the feature vector of review `idx`.
///
/// Features (in order):
/// 0. rating (centred at the global mean)
/// 1. signed deviation from the item's mean rating
/// 2. absolute deviation from the item's mean rating
/// 3. extremity indicator (rating is 1 or 5)
/// 4. log review length in tokens
/// 5. log user degree
/// 6. log item degree
/// 7. user burstiness: max reviews by this user within any 7-day window
/// 8. user rating variance
/// 9. user mean absolute deviation from item means (the ICWSM13 "deviation"
///    behaviour)
/// 10. max Jaccard similarity of this review's tokens to the user's other
///     reviews (templated-spam self-similarity)
/// 11. singleton indicator (user wrote exactly one review)
pub fn review_features(ds: &Dataset, corpus: &EncodedCorpus, ctx: &FeatureContext, idx: usize) -> [f32; N_FEATURES] {
    let r = &ds.reviews[idx];
    let user_revs = ctx.index.user_reviews(r.user);
    let item_mean = ctx.item_mean[r.item.index()];
    let deviation = r.rating - item_mean;

    // Burstiness: reviews are time-sorted per user.
    let mut burst: usize = 1;
    let times: Vec<i64> = user_revs.iter().map(|&i| ds.reviews[i].timestamp).collect();
    for (a, &t0) in times.iter().enumerate() {
        let count = times[a..].iter().take_while(|&&t| t - t0 <= 7).count();
        burst = burst.max(count);
    }

    let user_ratings: Vec<f32> = user_revs.iter().map(|&i| ds.reviews[i].rating).collect();
    let user_mean = user_ratings.iter().sum::<f32>() / user_ratings.len() as f32;
    let user_var = user_ratings.iter().map(|&x| (x - user_mean) * (x - user_mean)).sum::<f32>()
        / user_ratings.len() as f32;
    let user_dev = user_revs
        .iter()
        .map(|&i| (ds.reviews[i].rating - ctx.item_mean[ds.reviews[i].item.index()]).abs())
        .sum::<f32>()
        / user_revs.len() as f32;

    let doc = &corpus.docs[idx];
    let own_tokens = &doc.ids[..doc.len];
    let mut max_sim = 0.0f32;
    for &other in user_revs {
        if other == idx {
            continue;
        }
        let od = &corpus.docs[other];
        max_sim = max_sim.max(jaccard(own_tokens, &od.ids[..od.len]));
    }

    let user_deg = user_revs.len() as f32;
    let item_deg = ctx.index.item_reviews(r.item).len() as f32;

    [
        r.rating - ctx.global_mean,
        deviation,
        deviation.abs(),
        if r.rating <= 1.0 || r.rating >= 5.0 { 1.0 } else { 0.0 },
        (doc.len as f32 + 1.0).ln(),
        user_deg.ln_1p(),
        item_deg.ln_1p(),
        burst as f32,
        user_var,
        user_dev,
        max_sim,
        if user_revs.len() == 1 { 1.0 } else { 0.0 },
    ]
}

/// Extracts the feature matrix for the listed reviews.
pub fn feature_matrix(ds: &Dataset, corpus: &EncodedCorpus, ctx: &FeatureContext, indices: &[usize]) -> Vec<[f32; N_FEATURES]> {
    indices.iter().map(|&i| review_features(ds, corpus, ctx, i)).collect()
}

/// Per-column standardisation parameters fit on a feature matrix.
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: [f32; N_FEATURES],
    std: [f32; N_FEATURES],
}

impl Standardizer {
    /// Fits means and standard deviations (zero-variance columns get σ = 1).
    pub fn fit(rows: &[[f32; N_FEATURES]]) -> Self {
        let n = rows.len().max(1) as f32;
        let mut mean = [0.0f32; N_FEATURES];
        for row in rows {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = [0.0f32; N_FEATURES];
        for row in rows {
            for ((s, &x), &m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-6 {
                *s = 1.0;
            }
        }
        Self { mean, std }
    }

    /// Standardises a feature vector in place.
    pub fn apply(&self, row: &mut [f32; N_FEATURES]) {
        for ((x, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *x = (*x - m) / s;
        }
    }

    /// Standardises a whole matrix in place.
    pub fn apply_all(&self, rows: &mut [[f32; N_FEATURES]]) {
        for row in rows {
            self.apply(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{CorpusConfig, Label};
    use rrre_text::word2vec::Word2VecConfig;

    fn setup() -> (Dataset, EncodedCorpus, FeatureContext) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let ctx = FeatureContext::build(&ds);
        (ds, corpus, ctx)
    }

    #[test]
    fn features_are_finite() {
        let (ds, corpus, ctx) = setup();
        for i in 0..ds.len() {
            let f = review_features(&ds, &corpus, &ctx, i);
            assert!(f.iter().all(|x| x.is_finite()), "review {i}: {f:?}");
        }
    }

    #[test]
    fn fake_reviews_have_higher_mean_deviation() {
        let (ds, corpus, ctx) = setup();
        let mut fake_dev = (0.0f64, 0usize);
        let mut benign_dev = (0.0f64, 0usize);
        for i in 0..ds.len() {
            let f = review_features(&ds, &corpus, &ctx, i);
            match ds.reviews[i].label {
                Label::Fake => {
                    fake_dev.0 += f[2] as f64;
                    fake_dev.1 += 1;
                }
                Label::Benign => {
                    benign_dev.0 += f[2] as f64;
                    benign_dev.1 += 1;
                }
            }
        }
        let fd = fake_dev.0 / fake_dev.1 as f64;
        let bd = benign_dev.0 / benign_dev.1 as f64;
        assert!(fd > bd, "fake deviation {fd} should exceed benign {bd}");
    }

    #[test]
    fn self_similarity_feature_is_a_valid_jaccard() {
        // The generator deliberately avoids verbatim spam templates, so this
        // feature is only *mildly* informative (as in real data); here we
        // check its range and that multi-review users get a defined value.
        let (ds, corpus, ctx) = setup();
        for i in 0..ds.len() {
            let sim = review_features(&ds, &corpus, &ctx, i)[10];
            assert!((0.0..=1.0).contains(&sim), "review {i}: similarity {sim}");
        }
    }

    #[test]
    fn standardizer_centres_and_scales() {
        let (ds, corpus, ctx) = setup();
        let all: Vec<usize> = (0..ds.len()).collect();
        let mut m = feature_matrix(&ds, &corpus, &ctx, &all);
        let std = Standardizer::fit(&m);
        std.apply_all(&mut m);
        for c in 0..N_FEATURES {
            let mean: f32 = m.iter().map(|r| r[c]).sum::<f32>() / m.len() as f32;
            assert!(mean.abs() < 1e-3, "column {c} mean {mean}");
        }
    }
}
