//! Reliability-score baselines of the paper's Table IV.

mod icwsm13;
mod rev2;
mod semantic;
mod speagle;

pub use icwsm13::Icwsm13;
pub use rev2::{Rev2, Rev2Config};
pub use semantic::{SemanticConfig, SemanticSimilarity};
pub use speagle::{SpEagle, SpEagleConfig};
