//! ICWSM13 baseline — Mukherjee et al., *What Yelp Fake Review Filter Might
//! Be Doing* (ICWSM 2013): a supervised classifier over behavioural features
//! of users and reviews. Faithful to the paper's finding that behavioural
//! features (deviation, burstiness, extremity, review counts) carry most of
//! the signal; the classifier here is logistic regression.

use crate::features::{feature_matrix, FeatureContext, Standardizer};
use crate::logistic::{Logistic, LogisticConfig};
use rrre_data::{Dataset, EncodedCorpus};

/// Trained ICWSM13 reliability model.
#[derive(Debug)]
pub struct Icwsm13 {
    model: Logistic,
    standardizer: Standardizer,
    ctx: FeatureContext,
}

impl Icwsm13 {
    /// Trains on the labelled training reviews (indices into `ds.reviews`).
    pub fn fit(ds: &Dataset, corpus: &EncodedCorpus, train: &[usize]) -> Self {
        let ctx = FeatureContext::build(ds);
        let mut x = feature_matrix(ds, corpus, &ctx, train);
        let standardizer = Standardizer::fit(&x);
        standardizer.apply_all(&mut x);
        let y: Vec<bool> = train.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();
        let model = Logistic::fit(&x, &y, LogisticConfig::default());
        Self { model, standardizer, ctx }
    }

    /// Reliability scores (probability of being benign) for the listed
    /// reviews.
    pub fn score(&self, ds: &Dataset, corpus: &EncodedCorpus, indices: &[usize]) -> Vec<f32> {
        let mut x = feature_matrix(ds, corpus, &self.ctx, indices);
        self.standardizer.apply_all(&mut x);
        self.model.predict_many(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig};
    use rrre_metrics::auc;
    use rrre_text::word2vec::Word2VecConfig;

    #[test]
    fn beats_chance_on_synthetic_yelp() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.1));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let model = Icwsm13::fit(&ds, &corpus, &split.train);
        let scores = model.score(&ds, &corpus, &split.test);
        let labels: Vec<bool> = split.test.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();
        let a = auc(&scores, &labels);
        assert!(a > 0.6, "AUC {a}");
    }
}
