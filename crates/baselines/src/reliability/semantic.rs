//! Semantic-similarity spam detector — after Sandulescu & Ester, *Detecting
//! Singleton Review Spammers Using Semantic Similarity* (WWW 2015), cited in
//! the paper's related work (§II-B2).
//!
//! Unsupervised: a review is suspicious when its content is unusually close
//! to reviews on *other items by other users* — the near-duplicate,
//! cross-item text reuse of paid campaigns (genuine reviews resemble their
//! own item's other reviews, because they discuss the same dishes/tracks,
//! but rarely resemble reviews of unrelated items). Similarity blends the
//! dense word-embedding space (cosine of mean vectors) with TF–IDF space;
//! the reliability score is one minus the top-m mean similarity against a
//! fixed random reference sample.
//!
//! This method is not part of the paper's Table IV; it extends the baseline
//! suite with the one §II family (content-similarity) the table omits.

use rrre_data::{Dataset, EncodedCorpus};
use rrre_text::similarity::cosine;
use rrre_text::TfIdf;

/// Configuration of the semantic-similarity detector.
#[derive(Debug, Clone, Copy)]
pub struct SemanticConfig {
    /// Blend between embedding-space similarity (weight `alpha`) and
    /// TF–IDF similarity (weight `1 - alpha`).
    pub alpha: f32,
    /// How many most-similar cross-item reviews are averaged for the
    /// suspicion score (a single accidental twin should not condemn a
    /// review).
    pub top_m: usize,
    /// Size of the random cross-item reference sample each review is
    /// compared against (bounds the otherwise quadratic cost).
    pub reference_sample: usize,
    /// Seed for drawing the reference sample.
    pub seed: u64,
}

impl Default for SemanticConfig {
    fn default() -> Self {
        Self { alpha: 0.5, top_m: 3, reference_sample: 250, seed: 0x5E11 }
    }
}

/// Scored semantic-similarity model.
#[derive(Debug)]
pub struct SemanticSimilarity {
    review_scores: Vec<f32>,
}

impl SemanticSimilarity {
    /// Scores every review of the dataset (unsupervised; no training split
    /// needed).
    pub fn run(ds: &Dataset, corpus: &EncodedCorpus, cfg: SemanticConfig) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        assert!(cfg.top_m >= 1, "SemanticSimilarity: top_m must be positive");
        assert!(cfg.reference_sample >= cfg.top_m, "SemanticSimilarity: reference sample too small");
        assert!((0.0..=1.0).contains(&cfg.alpha), "SemanticSimilarity: alpha outside [0,1]");

        // Dense and sparse representations per review.
        let mean_vectors: Vec<Vec<f32>> = (0..ds.len()).map(|i| corpus.mean_vector(i)).collect();
        let id_docs: Vec<Vec<usize>> = corpus.docs.iter().map(|d| d.ids[..d.len].to_vec()).collect();
        let tfidf = TfIdf::fit(&id_docs, &corpus.vocab);
        let tfidf_vectors: Vec<Vec<(usize, f32)>> = id_docs.iter().map(|d| tfidf.transform(d)).collect();

        // Fixed random reference pool.
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let mut reference: Vec<usize> = (0..ds.len()).collect();
        reference.shuffle(&mut rng);
        reference.truncate(cfg.reference_sample.min(ds.len()));

        let review_scores = (0..ds.len())
            .map(|ri| {
                let review = &ds.reviews[ri];
                let mut sims: Vec<f32> = reference
                    .iter()
                    .filter(|&&other| {
                        other != ri
                            && ds.reviews[other].user != review.user
                            && ds.reviews[other].item != review.item
                    })
                    .map(|&other| {
                        let dense = cosine(&mean_vectors[ri], &mean_vectors[other]).max(0.0);
                        let sparse = TfIdf::cosine(&tfidf_vectors[ri], &tfidf_vectors[other]);
                        cfg.alpha * dense + (1.0 - cfg.alpha) * sparse
                    })
                    .collect();
                if sims.is_empty() {
                    // Nothing to compare against: neutral score.
                    return 0.5;
                }
                sims.sort_by(|a, b| b.total_cmp(a));
                let m = cfg.top_m.min(sims.len());
                let suspicion = sims[..m].iter().sum::<f32>() / m as f32;
                (1.0 - suspicion).clamp(0.0, 1.0)
            })
            .collect();
        Self { review_scores }
    }

    /// Reliability scores for the listed review indices.
    pub fn score(&self, indices: &[usize]) -> Vec<f32> {
        indices.iter().map(|&i| self.review_scores[i]).collect()
    }

    /// Reliability score of every review.
    pub fn all_scores(&self) -> &[f32] {
        &self.review_scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig};
    use rrre_metrics::auc;
    use rrre_text::word2vec::Word2VecConfig;

    fn setup() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.1));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 24,
                word2vec: Word2VecConfig { dim: 16, epochs: 2, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    #[test]
    fn scores_are_probability_like() {
        let (ds, corpus) = setup();
        let model = SemanticSimilarity::run(&ds, &corpus, SemanticConfig::default());
        assert_eq!(model.all_scores().len(), ds.len());
        assert!(model.all_scores().iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn flags_planted_near_duplicates() {
        // The method's target signature: verbatim-ish text reuse across
        // unrelated items (the Sandulescu–Ester singleton-spammer setting).
        // Build a dataset of diverse benign reviews plus a duplicate blast.
        use rrre_data::{ItemId, Label, Review, UserId};
        let mut reviews = Vec::new();
        let words = ["pizza", "pasta", "steak", "sushi", "ramen", "salad", "soup", "curry", "stew", "taco"];
        for u in 0..30u32 {
            let w1 = words[u as usize % words.len()];
            let w2 = words[(u as usize + 3) % words.len()];
            reviews.push(Review {
                user: UserId(u),
                item: ItemId(u % 10),
                rating: 4.0,
                label: Label::Benign,
                timestamp: u as i64,
                text: format!("the {w1} was lovely and the {w2} arrived warm after a pleasant evening number {u}"),
            });
        }
        for (n, u) in (30u32..36).enumerate() {
            reviews.push(Review {
                user: UserId(u),
                item: ItemId(n as u32 % 10),
                rating: 5.0,
                label: Label::Fake,
                timestamp: 100 + u as i64,
                text: "best ever must buy now five stars guaranteed trust me".into(),
            });
        }
        let ds = Dataset::new("dupes", 36, 10, reviews);
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 16,
                min_count: 1,
                word2vec: Word2VecConfig { dim: 8, epochs: 2, ..Default::default() },
                ..Default::default()
            },
        );
        let model = SemanticSimilarity::run(
            &ds,
            &corpus,
            SemanticConfig { reference_sample: ds.len(), ..Default::default() },
        );
        let all: Vec<usize> = (0..ds.len()).collect();
        let scores = model.score(&all);
        let labels: Vec<bool> = ds.reviews.iter().map(|r| r.label.is_benign()).collect();
        let a = auc(&scores, &labels);
        assert!(a > 0.9, "AUC {a} — near-duplicates must be flagged");
    }

    #[test]
    fn generator_fraud_is_mimicry_hard_for_pure_similarity() {
        // On this workspace's mimicry-style synthetic fraud the detector is
        // intentionally weak (documented honest negative result): it must
        // stay in a sane range but is not required to beat the stronger
        // baselines. Mimicked fraud text can even be *more* similar to the
        // reference sample than diverse benign text, pushing the AUC below
        // 0.5 — the band only excludes degenerate all-one-class rankings.
        let (ds, corpus) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let model = SemanticSimilarity::run(&ds, &corpus, SemanticConfig::default());
        let scores = model.score(&split.test);
        let labels: Vec<bool> = split.test.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();
        let a = auc(&scores, &labels);
        assert!((0.1..=0.9).contains(&a), "AUC {a}");
    }

    #[test]
    fn isolated_reviews_get_neutral_score() {
        use rrre_data::{ItemId, Label, Review, UserId};
        let ds = Dataset::new(
            "solo",
            1,
            1,
            vec![Review {
                user: UserId(0),
                item: ItemId(0),
                rating: 5.0,
                label: Label::Benign,
                timestamp: 0,
                text: "only review here".into(),
            }],
        );
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 8,
                min_count: 1,
                word2vec: Word2VecConfig { dim: 4, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let model = SemanticSimilarity::run(&ds, &corpus, SemanticConfig::default());
        assert_eq!(model.all_scores()[0], 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (ds, corpus) = setup();
        let a = SemanticSimilarity::run(&ds, &corpus, SemanticConfig::default());
        let b = SemanticSimilarity::run(&ds, &corpus, SemanticConfig::default());
        assert_eq!(a.all_scores(), b.all_scores());
    }
}
