//! SpEagle+ baseline — Rayana & Akoglu, *Collective Opinion Spam Detection*
//! (KDD 2015), the supervised extension of SpEagle/FraudEagle.
//!
//! Builds a pairwise MRF with three node kinds — users {fraud, honest},
//! reviews {fake, real}, items {bad, good} — connected user↔review and
//! review↔item, runs loopy belief propagation, and reads the review nodes'
//! "real" beliefs as reliability scores.
//!
//! * review↔item compatibilities are rating-sign dependent, encoding the
//!   FraudEagle assumption the paper quotes: real positive reviews indicate
//!   good items, fake positive reviews indicate (promoted) bad items, and
//!   symmetrically for negative reviews.
//! * Review priors come from unsupervised metadata suspicion scores
//!   (deviation, extremity, burstiness, self-similarity), like SpEagle's
//!   metadata priors.
//! * The "+" supervision clamps the labelled training reviews.

use crate::features::{review_features, FeatureContext};
use rrre_data::{Dataset, EncodedCorpus};
use rrre_graph::BpNetwork;

/// Configuration of the SpEagle+ run.
#[derive(Debug, Clone, Copy)]
pub struct SpEagleConfig {
    /// Potential softness (smaller = stronger coupling).
    pub epsilon: f64,
    /// BP damping.
    pub damping: f64,
    /// Maximum BP iterations.
    pub max_iters: usize,
    /// Convergence tolerance.
    pub tol: f64,
}

impl Default for SpEagleConfig {
    fn default() -> Self {
        Self { epsilon: 0.15, damping: 0.3, max_iters: 30, tol: 1e-4 }
    }
}

/// Scored SpEagle+ model output.
#[derive(Debug)]
pub struct SpEagle {
    /// Reliability (benign probability) per review index of the dataset.
    review_scores: Vec<f32>,
}

impl SpEagle {
    /// Runs SpEagle+ over the whole dataset graph, clamping the labelled
    /// `train` reviews (pass an empty slice for the unsupervised SpEagle).
    pub fn run(ds: &Dataset, corpus: &EncodedCorpus, train: &[usize], cfg: SpEagleConfig) -> Self {
        let n_users = ds.n_users;
        let n_items = ds.n_items;
        let n_reviews = ds.len();
        let user_node = |u: usize| u;
        let item_node = |i: usize| n_users + i;
        let review_node = |r: usize| n_users + n_items + r;
        let mut net = BpNetwork::new(n_users + n_items + n_reviews);

        let e = cfg.epsilon;
        // user {0: fraud, 1: honest} ↔ review {0: fake, 1: real}
        let psi_user_review = [[1.0 - e, e], [e, 1.0 - e]];
        // review {fake, real} ↔ item {0: bad, 1: good}
        let psi_pos = [[1.0 - e, e], [e, 1.0 - e]]; // positive review: fake→bad, real→good
        let psi_neg = [[e, 1.0 - e], [1.0 - e, e]]; // negative review: fake→good, real→bad
        let psi_neutral = [[0.5, 0.5], [0.5, 0.5]];

        // Unsupervised metadata priors on review nodes.
        let ctx = FeatureContext::build(ds);
        let suspicion = unsupervised_suspicion(ds, corpus, &ctx);
        for (r, &s) in suspicion.iter().enumerate() {
            net.set_prior(review_node(r), [s, 1.0 - s]);
        }
        // Supervision: clamp training labels.
        for &r in train {
            net.clamp(review_node(r), ds.reviews[r].label.class_index());
        }

        for (r, review) in ds.reviews.iter().enumerate() {
            net.add_edge(user_node(review.user.index()), review_node(r), psi_user_review);
            let psi = if review.rating >= 4.0 {
                psi_pos
            } else if review.rating <= 2.0 {
                psi_neg
            } else {
                psi_neutral
            };
            net.add_edge(review_node(r), item_node(review.item.index()), psi);
        }

        let result = net.run(cfg.max_iters, cfg.damping, cfg.tol);
        let review_scores = (0..n_reviews)
            .map(|r| result.beliefs[review_node(r)][1] as f32)
            .collect();
        Self { review_scores }
    }

    /// Reliability scores for the listed review indices.
    pub fn score(&self, indices: &[usize]) -> Vec<f32> {
        indices.iter().map(|&i| self.review_scores[i]).collect()
    }

    /// Reliability score of every review.
    pub fn all_scores(&self) -> &[f32] {
        &self.review_scores
    }
}

/// Maps metadata features to an unsupervised `P(fake)` prior in
/// `[0.1, 0.9]`: a fixed-weight combination of deviation, extremity,
/// burstiness and self-similarity z-scores.
fn unsupervised_suspicion(ds: &Dataset, corpus: &EncodedCorpus, ctx: &FeatureContext) -> Vec<f64> {
    let raw: Vec<f32> = (0..ds.len())
        .map(|i| {
            let f = review_features(ds, corpus, ctx, i);
            // abs deviation + extremity + burstiness + self-similarity
            0.8 * f[2] + 0.6 * f[3] + 0.15 * f[7] + 1.5 * f[10]
        })
        .collect();
    let n = raw.len().max(1) as f32;
    let mean = raw.iter().sum::<f32>() / n;
    let var = raw.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt().max(1e-6);
    raw.iter()
        .map(|&x| {
            let z = (x - mean) / std;
            let p = 1.0 / (1.0 + (-z as f64).exp());
            p.clamp(0.1, 0.9)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig};
    use rrre_metrics::auc;
    use rrre_text::word2vec::Word2VecConfig;

    fn setup() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.1));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    #[test]
    fn supervised_beats_chance() {
        let (ds, corpus) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let model = SpEagle::run(&ds, &corpus, &split.train, SpEagleConfig::default());
        let scores = model.score(&split.test);
        let labels: Vec<bool> = split.test.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();
        let a = auc(&scores, &labels);
        assert!(a > 0.6, "AUC {a}");
    }

    #[test]
    fn supervision_helps() {
        let (ds, corpus) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let labels: Vec<bool> = split.test.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();
        let sup = SpEagle::run(&ds, &corpus, &split.train, SpEagleConfig::default());
        let unsup = SpEagle::run(&ds, &corpus, &[], SpEagleConfig::default());
        let a_sup = auc(&sup.score(&split.test), &labels);
        let a_unsup = auc(&unsup.score(&split.test), &labels);
        assert!(a_sup >= a_unsup - 0.02, "supervised {a_sup} vs unsupervised {a_unsup}");
    }

    #[test]
    fn scores_are_probabilities() {
        let (ds, corpus) = setup();
        let model = SpEagle::run(&ds, &corpus, &[], SpEagleConfig::default());
        assert!(model.all_scores().iter().all(|&s| (0.0..=1.0).contains(&s)));
    }
}
