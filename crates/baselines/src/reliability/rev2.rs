//! REV2 baseline — Kumar et al., *REV2: Fraudulent User Prediction in Rating
//! Platforms* (WSDM 2018).
//!
//! Iteratively computes three mutually recursive metrics on the bipartite
//! rating graph until a fixed point:
//!
//! * **fairness** `F(u) ∈ [0, 1]` of users,
//! * **goodness** `G(p) ∈ [-1, 1]` of items,
//! * **reliability** `R(u,p) ∈ [0, 1]` of ratings,
//!
//! with Laplace smoothing priors addressing cold-start (the paper's Bayesian
//! treatment). The review's reliability `R` is the score. Purely structural:
//! no text, no supervision — which is why its accuracy tracks graph density
//! (strong on the Amazon-shaped sets, weak on sparse Yelp-shaped user sides),
//! matching the paper's Table IV discussion.

use rrre_data::Dataset;
use rrre_graph::{fixed_point, FixedPointConfig, ReviewGraph};

/// Configuration of the REV2 iterations.
#[derive(Debug, Clone, Copy)]
pub struct Rev2Config {
    /// Laplace smoothing pseudo-count for fairness (γ₁).
    pub gamma_fairness: f64,
    /// Laplace smoothing pseudo-count for goodness (γ₂).
    pub gamma_goodness: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// L∞ convergence tolerance on reliabilities.
    pub tol: f64,
}

impl Default for Rev2Config {
    fn default() -> Self {
        Self { gamma_fairness: 1.0, gamma_goodness: 1.0, max_iters: 100, tol: 1e-6 }
    }
}

/// Converged REV2 state.
#[derive(Debug)]
pub struct Rev2 {
    fairness: Vec<f64>,
    goodness: Vec<f64>,
    /// Reliability per review index of the originating dataset.
    review_scores: Vec<f32>,
    converged: bool,
}

/// Normalises a star rating to `[-1, 1]`.
fn norm_rating(r: f32) -> f64 {
    ((r - 3.0) / 2.0) as f64
}

impl Rev2 {
    /// Runs REV2 over the whole dataset's rating graph.
    pub fn run(ds: &Dataset, cfg: Rev2Config) -> Self {
        let all: Vec<usize> = (0..ds.len()).collect();
        let graph = ReviewGraph::from_dataset(ds, &all);
        let n_edges = graph.n_edges();

        #[derive(Clone)]
        struct State {
            fairness: Vec<f64>,
            goodness: Vec<f64>,
            reliability: Vec<f64>,
        }

        let initial = State {
            fairness: vec![1.0; graph.n_users()],
            goodness: vec![0.0; graph.n_items()],
            reliability: vec![1.0; n_edges],
        };

        let result = fixed_point(
            initial,
            FixedPointConfig { max_iters: cfg.max_iters, tol: cfg.tol },
            |s| {
                let mut next = s.clone();
                // Goodness: reliability-weighted mean of normalised ratings,
                // smoothed toward 0.
                for i in 0..graph.n_items() {
                    let edges = graph.item_edges(rrre_data::ItemId(i as u32));
                    let mut num = 0.0;
                    let mut den = cfg.gamma_goodness;
                    for &e in edges {
                        num += s.reliability[e] * norm_rating(graph.edges()[e].rating);
                        den += s.reliability[e];
                    }
                    next.goodness[i] = (num / den).clamp(-1.0, 1.0);
                }
                // Reliability: agreement of the rating with item goodness,
                // blended with author fairness.
                for (e, edge) in graph.edges().iter().enumerate() {
                    let agreement = 1.0 - (norm_rating(edge.rating) - next.goodness[edge.item.index()]).abs() / 2.0;
                    next.reliability[e] = ((s.fairness[edge.user.index()] + agreement) / 2.0).clamp(0.0, 1.0);
                }
                // Fairness: mean reliability of the user's ratings, smoothed
                // toward 0.5.
                for u in 0..graph.n_users() {
                    let edges = graph.user_edges(rrre_data::UserId(u as u32));
                    let mut num = cfg.gamma_fairness * 0.5;
                    let den = cfg.gamma_fairness + edges.len() as f64;
                    for &e in edges {
                        num += next.reliability[e];
                    }
                    next.fairness[u] = (num / den).clamp(0.0, 1.0);
                }
                next
            },
            |a, b| rrre_graph::linf(&a.reliability, &b.reliability),
        );

        // Map edge reliabilities back to review indices.
        let mut review_scores = vec![0.5f32; ds.len()];
        for (e, edge) in graph.edges().iter().enumerate() {
            review_scores[edge.review_idx] = result.state.reliability[e] as f32;
        }
        Self {
            fairness: result.state.fairness,
            goodness: result.state.goodness,
            review_scores,
            converged: result.converged,
        }
    }

    /// Reliability scores for the listed review indices.
    pub fn score(&self, indices: &[usize]) -> Vec<f32> {
        indices.iter().map(|&i| self.review_scores[i]).collect()
    }

    /// Fairness of every user.
    pub fn fairness(&self) -> &[f64] {
        &self.fairness
    }

    /// Goodness of every item.
    pub fn goodness(&self) -> &[f64] {
        &self.goodness
    }

    /// Whether the iterations converged within tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::train_test_split;
    use rrre_metrics::auc;

    #[test]
    fn converges_and_bounds_hold() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.1));
        let model = Rev2::run(&ds, Rev2Config::default());
        assert!(model.converged());
        assert!(model.fairness().iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert!(model.goodness().iter().all(|&g| (-1.0..=1.0).contains(&g)));
        assert!(model.review_scores.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn deviant_raters_get_lower_fairness() {
        // One item rated 5 by many users and 1 by a single contrarian: the
        // contrarian's fairness must end lower.
        use rrre_data::{ItemId, Label, Review, UserId};
        let mut reviews = Vec::new();
        for u in 0..9u32 {
            reviews.push(Review {
                user: UserId(u),
                item: ItemId(0),
                rating: 5.0,
                label: Label::Benign,
                timestamp: u as i64,
                text: String::new(),
            });
        }
        reviews.push(Review {
            user: UserId(9),
            item: ItemId(0),
            rating: 1.0,
            label: Label::Fake,
            timestamp: 100,
            text: String::new(),
        });
        let ds = Dataset::new("toy", 10, 1, reviews);
        let model = Rev2::run(&ds, Rev2Config::default());
        assert!(model.fairness()[9] < model.fairness()[0]);
        assert!(model.review_scores[9] < model.review_scores[0]);
    }

    #[test]
    fn beats_chance_on_campaign_fraud() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.15));
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let model = Rev2::run(&ds, Rev2Config::default());
        let scores = model.score(&split.test);
        let labels: Vec<bool> = split.test.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();
        let a = auc(&scores, &labels);
        assert!(a > 0.55, "AUC {a}");
    }
}
