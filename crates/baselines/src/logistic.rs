//! Hand-rolled L2-regularised logistic regression (full-batch gradient
//! descent) — the classifier behind the ICWSM13 baseline and SpEagle's
//! supervised priors.

/// Trained logistic-regression model.
#[derive(Debug, Clone)]
pub struct Logistic {
    weights: Vec<f32>,
    bias: f32,
}

/// Training configuration for [`Logistic::fit`].
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Learning rate.
    pub lr: f32,
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f32,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { lr: 0.5, epochs: 300, l2: 1e-3 }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Logistic {
    /// Fits on rows `x` with binary targets `y` (`true` = positive class).
    ///
    /// # Panics
    /// Panics on empty input or inconsistent row lengths.
    pub fn fit(x: &[impl AsRef<[f32]>], y: &[bool], cfg: LogisticConfig) -> Self {
        assert!(!x.is_empty(), "Logistic::fit: empty training set");
        assert_eq!(x.len(), y.len(), "Logistic::fit: {} rows vs {} labels", x.len(), y.len());
        let d = x[0].as_ref().len();
        let n = x.len() as f32;
        let mut weights = vec![0.0f32; d];
        let mut bias = 0.0f32;
        let mut grad = vec![0.0f32; d];

        for _ in 0..cfg.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0f32;
            for (row, &label) in x.iter().zip(y) {
                let row = row.as_ref();
                assert_eq!(row.len(), d, "Logistic::fit: inconsistent feature length");
                let z: f32 = bias + weights.iter().zip(row).map(|(&w, &f)| w * f).sum::<f32>();
                let err = sigmoid(z) - if label { 1.0 } else { 0.0 };
                for (g, &f) in grad.iter_mut().zip(row) {
                    *g += err * f;
                }
                grad_b += err;
            }
            for (w, &g) in weights.iter_mut().zip(&grad) {
                *w -= cfg.lr * (g / n + cfg.l2 * *w);
            }
            bias -= cfg.lr * grad_b / n;
        }
        Self { weights, bias }
    }

    /// Probability of the positive class for one row.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        assert_eq!(row.len(), self.weights.len(), "Logistic::predict_proba: feature length mismatch");
        sigmoid(self.bias + self.weights.iter().zip(row).map(|(&w, &f)| w * f).sum::<f32>())
    }

    /// Probabilities for many rows.
    pub fn predict_many(&self, rows: &[impl AsRef<[f32]>]) -> Vec<f32> {
        rows.iter().map(|r| self.predict_proba(r.as_ref())).collect()
    }

    /// Learned weights (for inspection).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn separates_linearly_separable_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..200 {
            let pos = rng.gen_bool(0.5);
            let centre = if pos { 2.0 } else { -2.0 };
            x.push(vec![centre + rng.gen_range(-0.5..0.5), rng.gen_range(-1.0..1.0)]);
            y.push(pos);
        }
        let model = Logistic::fit(&x, &y, LogisticConfig::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| (model.predict_proba(row) > 0.5) == label)
            .count();
        assert!(correct >= 195, "accuracy {correct}/200");
    }

    #[test]
    fn probability_is_calibrated_on_balanced_noise() {
        // Pure-noise features: probability should hover near the base rate.
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<Vec<f32>> = (0..300).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
        let y: Vec<bool> = (0..300).map(|i| i % 4 != 0).collect(); // 75% positive
        let model = Logistic::fit(&x, &y, LogisticConfig::default());
        let mean_p: f32 = x.iter().map(|r| model.predict_proba(r)).sum::<f32>() / 300.0;
        assert!((mean_p - 0.75).abs() < 0.08, "mean probability {mean_p}");
    }

    #[test]
    fn l2_shrinks_weights() {
        let x = vec![vec![1.0f32], vec![-1.0]];
        let y = vec![true, false];
        let small = Logistic::fit(&x, &y, LogisticConfig { l2: 0.0, ..Default::default() });
        let big = Logistic::fit(&x, &y, LogisticConfig { l2: 1.0, ..Default::default() });
        assert!(big.weights()[0].abs() < small.weights()[0].abs());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let x: Vec<Vec<f32>> = Vec::new();
        let y: Vec<bool> = Vec::new();
        let _ = Logistic::fit(&x, &y, LogisticConfig::default());
    }
}
