//! # rrre-baselines
//!
//! Every comparison method of the RRRE paper, re-implemented from its
//! original publication on this workspace's substrates:
//!
//! * rating prediction (Table III): [`rating::Pmf`], [`rating::DeepConn`],
//!   [`rating::Narre`], [`rating::Der`] (the RRRE⁻ ablation lives in
//!   `rrre-core` as a variant of the full model);
//! * reliability scoring (Table IV): [`reliability::Icwsm13`],
//!   [`reliability::SpEagle`], [`reliability::Rev2`];
//! * shared behavioural features and a from-scratch logistic regression.

#![warn(missing_docs)]

pub mod features;
pub mod logistic;
pub mod rating;
pub mod reliability;
