//! UserNet / ItemNet towers (paper §III-D, Eq. 5–8).
//!
//! A tower takes the entity's `m` review embeddings, weights them with the
//! fraud-attention mechanism conditioned on the target pair's user and item
//! ID embeddings, and projects the weighted sum through a fully connected
//! layer into the entity representation (`x_u` or `y_i`).

use crate::config::Pooling;
use rand::Rng;
use rrre_tensor::nn::{AttentionPool, Linear};
use rrre_tensor::{Params, Tape, Tensor, Var};

/// One tower (UserNet and ItemNet are two instances with separate weights).
#[derive(Debug, Clone)]
pub struct Tower {
    attn: AttentionPool,
    fc: Linear,
    k: usize,
    out_dim: usize,
}

impl Tower {
    /// Registers tower weights under `name.*`.
    ///
    /// * `k` — review-embedding size;
    /// * `ctx_dim` — context size (user ⊕ item ID embeddings = `2 × id_dim`);
    /// * `attn_dim` — attention hidden size;
    /// * `out_dim` — entity-representation size.
    pub fn new(
        params: &mut Params,
        rng: &mut impl Rng,
        name: &str,
        k: usize,
        ctx_dim: usize,
        attn_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self {
            attn: AttentionPool::new(params, rng, &format!("{name}.attn"), k, ctx_dim, attn_dim),
            fc: Linear::new(params, rng, &format!("{name}.fc"), k, out_dim),
            k,
            out_dim,
        }
    }

    /// Entity-representation size.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Differentiable tower forward: `reviews` is `[m, k]` with validity
    /// `mask`, `context` is `[1, ctx_dim]` (target-pair ID embeddings).
    /// Entities with no reviews at all (fully false mask) produce the zero
    /// representation projected through the dense layer, so downstream
    /// shapes stay uniform. `pooling` selects fraud-attention or the
    /// mean-pooling ablation.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        reviews: Var,
        mask: &[bool],
        context: Var,
        pooling: Pooling,
    ) -> Var {
        let pooled = if mask.iter().any(|&b| b) {
            match pooling {
                Pooling::FraudAttention => self.attn.forward(tape, params, reviews, context, Some(mask)),
                Pooling::Mean => {
                    let real = mask.iter().filter(|&&b| b).count() as f32;
                    let keep = Tensor::col_vector(
                        &mask.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect::<Vec<_>>(),
                    );
                    let keep = tape.constant(keep);
                    let kept = tape.mul_col_broadcast(reviews, keep);
                    let summed = tape.sum_rows(kept);
                    tape.scale(summed, 1.0 / real)
                }
            }
        } else {
            tape.constant(Tensor::zeros(1, self.k))
        };
        self.fc.forward(tape, params, pooled)
    }

    /// Tape-free tower forward.
    pub fn infer(&self, params: &Params, reviews: &Tensor, mask: &[bool], context: &Tensor, pooling: Pooling) -> Tensor {
        let pooled = if mask.iter().any(|&b| b) {
            match pooling {
                Pooling::FraudAttention => self.attn.infer(params, reviews, context, Some(mask)),
                Pooling::Mean => {
                    let real = mask.iter().filter(|&&b| b).count() as f32;
                    let mut summed = Tensor::zeros(1, reviews.cols());
                    for (r, &keep) in mask.iter().enumerate() {
                        if keep {
                            for (o, &x) in summed.row_mut(0).iter_mut().zip(reviews.row(r)) {
                                *o += x;
                            }
                        }
                    }
                    summed.scale(1.0 / real)
                }
            }
        } else {
            Tensor::zeros(1, self.k)
        };
        self.fc.infer(params, &pooled)
    }

    /// Tape-free attention weights, exposed for the review-level explanation
    /// pipeline (which review mattered).
    pub fn infer_attention(&self, params: &Params, reviews: &Tensor, mask: &[bool], context: &Tensor) -> Vec<f32> {
        if mask.iter().any(|&b| b) {
            self.attn.infer_weights(params, reviews, context, Some(mask))
        } else {
            vec![0.0; reviews.rows()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_tensor::gradcheck::assert_gradients_ok;
    use rrre_tensor::init;

    fn setup(seed: u64) -> (Params, Tower, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let tower = Tower::new(&mut params, &mut rng, "t", 6, 4, 5, 3);
        let reviews = init::normal(&mut rng, 4, 6, 0.0, 1.0);
        let ctx = init::normal(&mut rng, 1, 4, 0.0, 1.0);
        (params, tower, reviews, ctx)
    }

    #[test]
    fn forward_and_infer_agree() {
        let (params, tower, reviews, ctx) = setup(1);
        let mask = [true, true, false, true];
        let mut tape = Tape::new();
        let rv = tape.constant(reviews.clone());
        let cv = tape.constant(ctx.clone());
        let out = tower.forward(&mut tape, &params, rv, &mask, cv, Pooling::FraudAttention);
        assert_eq!(tape.shape(out), (1, 3));
        assert!(tape.value(out).approx_eq(&tower.infer(&params, &reviews, &mask, &ctx, Pooling::FraudAttention), 1e-4));
    }

    #[test]
    fn empty_mask_yields_bias_only() {
        let (params, tower, reviews, ctx) = setup(2);
        let mask = [false; 4];
        let out = tower.infer(&params, &reviews, &mask, &ctx, Pooling::FraudAttention);
        // Zero pooled vector → output is the fc bias (zero-initialised).
        assert!(out.approx_eq(&Tensor::zeros(1, 3), 1e-6));
    }

    #[test]
    fn attention_weights_expose_masking() {
        let (params, tower, reviews, ctx) = setup(3);
        let mask = [true, false, true, false];
        let w = tower.infer_attention(&params, &reviews, &mask, &ctx);
        assert!(w[1] < 1e-9 && w[3] < 1e-9);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mean_pooling_averages_unmasked_rows() {
        let (params, tower, reviews, ctx) = setup(5);
        let mask = [true, true, false, false];
        let out = tower.infer(&params, &reviews, &mask, &ctx, Pooling::Mean);
        // Hand-computed mean of first two rows through the dense layer.
        let mut mean = Tensor::zeros(1, 6);
        for c in 0..6 {
            mean.set(0, c, (reviews.get(0, c) + reviews.get(1, c)) / 2.0);
        }
        let expected = tower.fc.infer(&params, &mean);
        assert!(out.approx_eq(&expected, 1e-5));
    }

    #[test]
    fn tower_gradcheck() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = Params::new();
        let tower = Tower::new(&mut params, &mut rng, "t", 4, 3, 4, 2);
        let reviews = init::normal(&mut rng, 3, 4, 0.0, 1.0);
        let ctx = init::normal(&mut rng, 1, 3, 0.0, 1.0);
        let mask = [true, true, true];
        assert_gradients_ok(&mut params, move |p, tape| {
            let rv = tape.constant(reviews.clone());
            let cv = tape.constant(ctx.clone());
            let out = tower.forward(tape, p, rv, &mask, cv, Pooling::FraudAttention);
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
    }
}
