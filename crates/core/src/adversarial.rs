//! Poisoned-fit plumbing and the adversarial robustness sweep.
//!
//! The threat model: an [`AttackCampaign`] injects sybil reviews that the
//! platform's filter has *missed*, so the defender trains on the campaign's
//! [label-poisoned view](PoisonedDataset::training_view) — every injected
//! fake reads benign. Evaluation always happens against ground truth on the
//! clean (pre-attack) held-out test set, yielding the AP-degradation /
//! RMSE-poisoning deltas of the Table-IV-style grid.
//!
//! Everything here is a pure function of [`AttackEvalConfig`]: the sweep is
//! bit-identical per seed at every thread count, which is what lets CI diff
//! the emitted grid byte-for-byte against the committed artifact.

use crate::config::RrreConfig;
use crate::eval::{evaluate, JointEvaluation};
use crate::model::{ColdStartPrior, Prediction, Rrre};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrre_data::synth::{generate, AttackCampaign, AttackFamily, PoisonedDataset, SynthConfig};
use rrre_data::{train_test_split, CorpusConfig, Dataset, EncodedCorpus, Label};
use rrre_metrics::{auc, average_precision, GridRow, PoisoningDelta, RobustnessGrid};

/// Full specification of a robustness sweep.
#[derive(Debug, Clone)]
pub struct AttackEvalConfig {
    /// Base (clean) dataset generator configuration.
    pub base: SynthConfig,
    /// Corpus/embedding configuration, shared by every cell.
    pub corpus: CorpusConfig,
    /// Model configuration, shared by every cell.
    pub model: RrreConfig,
    /// Attack families to sweep.
    pub families: Vec<AttackFamily>,
    /// Attack strengths (fraction of the base corpus), swept per family.
    pub strengths: Vec<f64>,
    /// Held-out test fraction of the clean base dataset.
    pub test_frac: f64,
    /// Seed of the train/test split.
    pub split_seed: u64,
    /// Seed of every attack campaign.
    pub campaign_seed: u64,
}

impl AttackEvalConfig {
    /// A CPU-tractable default sweep: the small YelpChi-shaped base, tiny
    /// model, all four families over three strengths.
    pub fn small() -> Self {
        Self {
            base: SynthConfig::yelp_chi().scaled(0.05),
            corpus: CorpusConfig {
                max_len: 12,
                word2vec: rrre_text::Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
            model: RrreConfig { epochs: 8, ..RrreConfig::tiny() },
            families: AttackFamily::ALL.to_vec(),
            strengths: vec![0.1, 0.25, 0.5],
            test_frac: 0.3,
            split_seed: 0xA77,
            campaign_seed: 0xA77AC4,
        }
    }
}

/// One evaluated cell of the sweep.
///
/// The grid's AP pair is **campaign-detection AP**: ranking reviews by
/// suspicion (`-reliability`), how early do the injected fakes appear among
/// the benign test traffic? `detection_ap_clean` scores the clean-trained
/// model on that set (the defender before the poison landed in training),
/// `detection_ap_poisoned` the model re-trained on the poisoned corpus —
/// the drop between them is the poisoning damage to the reliability head.
#[derive(Debug, Clone)]
pub struct AttackCell {
    /// The campaign this cell ran.
    pub campaign: AttackCampaign,
    /// Number of injected fakes.
    pub n_injected: usize,
    /// The poison-trained model's metrics on the clean test set.
    pub poisoned_eval: JointEvaluation,
    /// Campaign-detection AP of the clean-trained model.
    pub detection_ap_clean: f64,
    /// Campaign-detection AP of the poison-trained model.
    pub detection_ap_poisoned: f64,
    /// ROC-AUC of the poisoned model separating injected fakes from benign
    /// test reviews (how visible the campaign remains after poisoning).
    pub attack_auc: f64,
}

/// Fake-detection AP on `indices`: ranks reviews by descending suspicion
/// (`-reliability`) and scores how early the ground-truth fakes appear.
pub fn fake_detection_ap(
    model: &Rrre,
    ds: &Dataset,
    corpus: &EncodedCorpus,
    indices: &[usize],
) -> f64 {
    let preds = model.predict_reviews(ds, corpus, indices);
    let suspicion: Vec<f32> = preds.iter().map(|p| -p.reliability).collect();
    let is_fake: Vec<bool> =
        indices.iter().map(|&i| ds.reviews[i].label == Label::Fake).collect();
    average_precision(&suspicion, &is_fake)
}

/// Campaign-detection scores of one model: AP of ranking the injected fakes
/// first by suspicion among the benign test reviews, and the matching
/// reliability AUC (benign test vs injected).
///
/// `known_users` is the user-id range the model was trained over. Sybil
/// accounts outside it are invisible to the model's review index; scoring
/// them goes through the cold-start `prior` instead — exactly how the
/// serving tier treats a brand-new account's first posts.
fn campaign_detection(
    model: &Rrre,
    ds: &Dataset,
    corpus: &EncodedCorpus,
    benign_test: &[usize],
    injected: &[usize],
    known_users: usize,
    prior: &ColdStartPrior,
) -> (f64, f64) {
    if benign_test.is_empty() || injected.is_empty() {
        return (0.0, 0.5);
    }
    let mut indices: Vec<usize> = benign_test.to_vec();
    indices.extend_from_slice(injected);
    let preds: Vec<Prediction> = indices
        .iter()
        .map(|&i| {
            let r = &ds.reviews[i];
            if r.user.index() >= known_users {
                Prediction { rating: r.rating, reliability: prior.reliability }
            } else {
                model.predict(corpus, r.user, r.item)
            }
        })
        .collect();
    let rels: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
    let suspicion: Vec<f32> = rels.iter().map(|&r| -r).collect();
    let is_injected: Vec<bool> =
        (0..indices.len()).map(|k| k >= benign_test.len()).collect();
    let is_benign: Vec<bool> = is_injected.iter().map(|&f| !f).collect();
    (average_precision(&suspicion, &is_injected), auc(&rels, &is_benign))
}

/// Trains a model on the campaign's label-poisoned training view.
///
/// `clean_train` are review indices of the *base* dataset (they are stable
/// under injection); the injected reviews are appended to the training set —
/// the attacker's posts always land in the training window, never in the
/// held-out test set.
pub fn fit_on_poisoned(
    poisoned: &PoisonedDataset,
    corpus: &EncodedCorpus,
    clean_train: &[usize],
    cfg: RrreConfig,
) -> Rrre {
    let view = poisoned.training_view();
    let mut train: Vec<usize> = clean_train.to_vec();
    train.extend_from_slice(&poisoned.injected);
    Rrre::fit(&view, corpus, &train, cfg)
}

/// Evaluates a poison-trained model: clean-test metrics plus the AUC that
/// separates the injected fakes from the benign test reviews.
pub fn evaluate_under_attack(
    model: &Rrre,
    poisoned: &PoisonedDataset,
    corpus: &EncodedCorpus,
    clean_test: &[usize],
) -> (JointEvaluation, f64) {
    let ds = &poisoned.dataset;
    let on_clean = evaluate(model, ds, corpus, clean_test);
    // Injected fakes vs benign test reviews, ranked by reliability: a robust
    // model keeps the sybil posts at the bottom even after poisoning.
    let mut indices: Vec<usize> = clean_test
        .iter()
        .copied()
        .filter(|&i| ds.reviews[i].label == Label::Benign)
        .collect();
    let n_benign = indices.len();
    indices.extend_from_slice(&poisoned.injected);
    let attack_auc = if n_benign == 0 || poisoned.injected.is_empty() {
        0.5
    } else {
        let preds = model.predict_reviews(ds, corpus, &indices);
        let rels: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
        let labels: Vec<bool> = (0..indices.len()).map(|k| k < n_benign).collect();
        auc(&rels, &labels)
    };
    (on_clean, attack_auc)
}

/// The clean baseline plus every attack cell, ready for grid assembly.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Clean-trained model's metrics on the clean test set.
    pub clean_eval: JointEvaluation,
    /// Clean-trained model's fake-detection AP on the clean test set.
    pub clean_ap_fake: f64,
    /// All attack cells, in family-major, strength-minor order.
    pub cells: Vec<AttackCell>,
    /// The base dataset the sweep ran over (for downstream reporting).
    pub base: Dataset,
}

impl RobustnessReport {
    /// Assembles the Table-IV-style grid from the report.
    pub fn grid(&self) -> RobustnessGrid {
        let mut grid = RobustnessGrid::new();
        for cell in &self.cells {
            grid.push(GridRow {
                family: cell.campaign.family.name().to_string(),
                strength: cell.campaign.strength,
                n_injected: cell.n_injected,
                delta: PoisoningDelta {
                    ap_clean: cell.detection_ap_clean,
                    ap_poisoned: cell.detection_ap_poisoned,
                    rmse_clean: self.clean_eval.rmse,
                    rmse_poisoned: cell.poisoned_eval.rmse,
                },
                attack_auc: cell.attack_auc,
            });
        }
        grid
    }
}

/// Runs the full sweep: one clean fit, then one poisoned fit per
/// family × strength cell, each evaluated on the clean test set.
/// Deterministic in `cfg`; `progress` is called once per finished cell
/// (clean baseline first, with `family = "clean"`).
pub fn run_robustness_sweep(
    cfg: &AttackEvalConfig,
    mut progress: impl FnMut(&str, f64),
) -> RobustnessReport {
    let base = generate(&cfg.base);
    let mut rng = StdRng::seed_from_u64(cfg.split_seed);
    let split = train_test_split(&base, cfg.test_frac, &mut rng);

    let clean_corpus = EncodedCorpus::build(&base, &cfg.corpus);
    let clean_model = Rrre::fit(&base, &clean_corpus, &split.train, cfg.model.clone());
    let clean_eval = evaluate(&clean_model, &base, &clean_corpus, &split.test);
    let clean_ap_fake = fake_detection_ap(&clean_model, &base, &clean_corpus, &split.test);
    let prior = ColdStartPrior::calibrate(&base, 3);
    progress("clean", 0.0);

    let benign_test: Vec<usize> = split
        .test
        .iter()
        .copied()
        .filter(|&i| base.reviews[i].label == Label::Benign)
        .collect();

    let mut cells = Vec::with_capacity(cfg.families.len() * cfg.strengths.len());
    for &family in &cfg.families {
        for &strength in &cfg.strengths {
            let campaign = AttackCampaign {
                domain: cfg.base.domain,
                ..AttackCampaign::new(family, strength, cfg.campaign_seed)
            };
            let poisoned = campaign.poison(&base);
            // The encoder pipeline is *pinned* to the clean vocabulary and
            // embeddings, exactly like the serving tier's streaming ingest
            // (the vocab is frozen at train time; streamed-in text is
            // encoded against it). The attacker's reviews are appended as
            // documents under that frozen encoder.
            let mut corpus = clean_corpus.clone();
            for &i in &poisoned.injected {
                corpus.append_doc(&poisoned.dataset.reviews[i].text);
            }
            let model = fit_on_poisoned(&poisoned, &corpus, &split.train, cfg.model.clone());
            let poisoned_eval = evaluate(&model, &poisoned.dataset, &corpus, &split.test);
            // The clean (pre-attack) defender has never seen the sybil
            // accounts: their posts score through the cold-start prior,
            // mirroring how the serving tier gates a new account's first
            // reviews. The poisoned re-fit knows every sybil.
            let (detection_ap_clean, _) = campaign_detection(
                &clean_model,
                &poisoned.dataset,
                &corpus,
                &benign_test,
                &poisoned.injected,
                base.n_users,
                &prior,
            );
            let (detection_ap_poisoned, attack_auc) = campaign_detection(
                &model,
                &poisoned.dataset,
                &corpus,
                &benign_test,
                &poisoned.injected,
                poisoned.dataset.n_users,
                &prior,
            );
            cells.push(AttackCell {
                n_injected: poisoned.n_injected(),
                campaign,
                poisoned_eval,
                detection_ap_clean,
                detection_ap_poisoned,
                attack_auc,
            });
            progress(family.name(), strength);
        }
    }
    RobustnessReport { clean_eval, clean_ap_fake, cells, base }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> AttackEvalConfig {
        AttackEvalConfig {
            base: SynthConfig::yelp_chi().scaled(0.05),
            model: RrreConfig { epochs: 2, ..RrreConfig::tiny() },
            families: vec![AttackFamily::Burst],
            strengths: vec![0.2],
            ..AttackEvalConfig::small()
        }
    }

    #[test]
    fn sweep_is_deterministic_and_grid_shaped() {
        let cfg = tiny_cfg();
        let a = run_robustness_sweep(&cfg, |_, _| {});
        let b = run_robustness_sweep(&cfg, |_, _| {});
        assert_eq!(a.grid().to_csv(), b.grid().to_csv());
        assert_eq!(a.cells.len(), 1);
        let csv = a.grid().to_csv();
        assert!(csv.starts_with(RobustnessGrid::CSV_HEADER));
        assert_eq!(csv.lines().count(), 2);
        let cell = &a.cells[0];
        assert!(cell.n_injected > 0);
        assert!((0.0..=1.0).contains(&cell.attack_auc));
        assert!(cell.poisoned_eval.rmse.is_finite());
    }

    #[test]
    fn poisoned_fit_trains_on_masked_labels_but_reports_ground_truth() {
        let cfg = tiny_cfg();
        let base = generate(&cfg.base);
        let campaign = AttackCampaign::new(AttackFamily::TemplateMutation, 0.3, 7);
        let poisoned = campaign.poison(&base);
        let corpus = EncodedCorpus::build(&poisoned.dataset, &cfg.corpus);
        let train: Vec<usize> = (0..base.len()).collect();
        let model = fit_on_poisoned(&poisoned, &corpus, &train, cfg.model.clone());
        let (eval, attack_auc) =
            evaluate_under_attack(&model, &poisoned, &corpus, &[0, 1, 2, 3]);
        assert_eq!(eval.n, 4);
        assert!((0.0..=1.0).contains(&attack_auc));
    }
}
