//! Review content embedding (paper §III-C, Eq. 2–4).
//!
//! Each review's pretrained word vectors pass through a bidirectional LSTM;
//! the concatenated final states of both directions form the review
//! embedding `rev_ui` of size `k`. In [`crate::EncoderMode::Frozen`] mode
//! every review is encoded once and cached; in `EndToEnd` mode the encoder
//! is differentiated through per example.

use rrre_data::EncodedCorpus;
use rrre_tensor::nn::BiLstm;
use rrre_tensor::{Params, Tape, Tensor, Var};

/// BiLSTM review encoder producing `k`-dimensional review embeddings.
#[derive(Debug, Clone)]
pub struct ReviewEncoder {
    bilstm: BiLstm,
    word_dim: usize,
    k: usize,
}

impl ReviewEncoder {
    /// Registers encoder weights. `k` must be even; each LSTM direction has
    /// `k/2` hidden units.
    pub fn new(params: &mut Params, rng: &mut impl rand::Rng, word_dim: usize, k: usize) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "ReviewEncoder: k = {k} must be even");
        let bilstm = BiLstm::new(params, rng, "rrre.encoder", word_dim, k / 2);
        Self { bilstm, word_dim, k }
    }

    /// Review-embedding size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Handles of the encoder's parameters (used to freeze them in
    /// [`crate::EncoderMode::Frozen`] mode).
    pub fn param_ids(&self) -> Vec<rrre_tensor::ParamId> {
        self.bilstm.param_ids()
    }

    /// Builds the `[T, word_dim]` word-vector matrix of review `idx`,
    /// truncated to real tokens (zero-padding is never fed to the LSTM; a
    /// blank review becomes a single zero row so the recurrence stays
    /// defined).
    fn word_matrix(&self, corpus: &EncodedCorpus, idx: usize) -> Tensor {
        let doc = &corpus.docs[idx];
        let len = doc.len.max(1);
        let flat = corpus.word_vectors.as_flat();
        let mut out = Tensor::zeros(len, self.word_dim);
        for (row, &id) in doc.ids[..doc.len].iter().enumerate() {
            out.row_mut(row).copy_from_slice(&flat[id * self.word_dim..(id + 1) * self.word_dim]);
        }
        out
    }

    /// Differentiable encoding of one review (`EndToEnd` mode): `[1, k]`.
    pub fn forward_review(&self, tape: &mut Tape, params: &Params, corpus: &EncodedCorpus, idx: usize) -> Var {
        let words = tape.constant(self.word_matrix(corpus, idx));
        self.bilstm.forward(tape, params, words)
    }

    /// Tape-free encoding of one review.
    pub fn encode_review(&self, params: &Params, corpus: &EncodedCorpus, idx: usize) -> Tensor {
        self.bilstm.infer(params, &self.word_matrix(corpus, idx))
    }

    /// Encodes every review in the corpus (the frozen-mode cache), returning
    /// a flat `n_reviews × k` buffer.
    pub fn encode_all(&self, params: &Params, corpus: &EncodedCorpus) -> Vec<f32> {
        let mut flat = Vec::with_capacity(corpus.docs.len() * self.k);
        for idx in 0..corpus.docs.len() {
            flat.extend_from_slice(self.encode_review(params, corpus, idx).as_slice());
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::CorpusConfig;
    use rrre_text::word2vec::Word2VecConfig;

    fn setup() -> (EncodedCorpus, Params, ReviewEncoder) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.02));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 10,
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let enc = ReviewEncoder::new(&mut params, &mut rng, 8, 12);
        (corpus, params, enc)
    }

    #[test]
    fn embeddings_have_size_k() {
        let (corpus, params, enc) = setup();
        let e = enc.encode_review(&params, &corpus, 0);
        assert_eq!(e.shape(), (1, 12));
    }

    #[test]
    fn tape_and_infer_agree() {
        let (corpus, params, enc) = setup();
        let mut tape = Tape::new();
        let v = enc.forward_review(&mut tape, &params, &corpus, 3);
        assert!(tape.value(v).approx_eq(&enc.encode_review(&params, &corpus, 3), 1e-5));
    }

    #[test]
    fn encode_all_is_aligned() {
        let (corpus, params, enc) = setup();
        let flat = enc.encode_all(&params, &corpus);
        assert_eq!(flat.len(), corpus.docs.len() * 12);
        let direct = enc.encode_review(&params, &corpus, 2);
        assert_eq!(&flat[2 * 12..3 * 12], direct.as_slice());
    }

    #[test]
    fn different_texts_encode_differently() {
        let (corpus, params, enc) = setup();
        let a = enc.encode_review(&params, &corpus, 0);
        // Find a review with different text.
        let mut found = false;
        for idx in 1..corpus.docs.len() {
            if corpus.docs[idx].ids != corpus.docs[0].ids {
                let b = enc.encode_review(&params, &corpus, idx);
                assert!(!a.approx_eq(&b, 1e-4));
                found = true;
                break;
            }
        }
        assert!(found, "corpus needs at least two distinct reviews");
    }
}
