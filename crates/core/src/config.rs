//! RRRE hyper-parameters (paper §III and §IV-E).

use serde::{Deserialize, Serialize};

/// How the BiLSTM review encoder participates in training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderMode {
    /// Encode every review once with the (pretrained-word-vector, fixed-
    /// weight) BiLSTM and train attention + heads on the cached vectors.
    /// This is the paper's "pretrained as vectors" speed trick taken one
    /// step further and the default on CPU.
    Frozen,
    /// Backpropagate through the BiLSTM for every example. Exact but orders
    /// of magnitude slower; used by tests and small examples to validate the
    /// full gradient path.
    EndToEnd,
}

/// How the towers pool the review embeddings (ablation switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// The paper's fraud-attention mechanism (Eq. 5–7).
    FraudAttention,
    /// Uniform mean pooling over the unmasked reviews — the ablation that
    /// quantifies what the attention buys.
    Mean,
}

/// How the `m` input reviews of an entity are selected (ablation switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sampling {
    /// The paper's time-based strategy: the latest `m` reviews.
    Latest,
    /// A stable pseudo-random subset of `m` reviews per entity.
    Random,
}

/// Which rating loss the model trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossVariant {
    /// The full RRRE biased loss of Eq. (14): squared errors gated by the
    /// reliability ground truth.
    Biased,
    /// The RRRE⁻ ablation of Eq. (13): plain MSE over all reviews, fakes
    /// included.
    Unbiased,
}

/// Full RRRE configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RrreConfig {
    /// Review-embedding size `k` (Fig. 2); must be even (the BiLSTM
    /// contributes `k/2` per direction).
    pub k: usize,
    /// Reviews in the UserNet input layer (`s_u`, Fig. 3).
    pub s_u: usize,
    /// Reviews in the ItemNet input layer (`s_i`, Fig. 4).
    pub s_i: usize,
    /// ID-embedding and tower-output dimension.
    pub id_dim: usize,
    /// Attention hidden size.
    pub attn_dim: usize,
    /// FM interaction factors.
    pub fm_factors: usize,
    /// Joint-loss weight λ of Eq. (15): `L = λ·loss₁ + (1−λ)·loss₂`.
    pub lambda: f32,
    /// L2 regularisation strength γ of Eq. (13)/(14).
    pub gamma: f32,
    /// Additional L2 on the user/item ID-embedding tables. Per-entity
    /// parameters see only a handful of examples each, so they need the
    /// PMF-style shrinkage that the shared weights do not.
    pub gamma_emb: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Examples per optimiser step.
    pub batch_size: usize,
    /// Encoder mode.
    pub encoder: EncoderMode,
    /// Loss variant (RRRE vs RRRE⁻).
    pub variant: LossVariant,
    /// Review pooling (fraud-attention vs mean; ablation).
    pub pooling: Pooling,
    /// Input-review selection (latest vs random; ablation).
    pub sampling: Sampling,
    /// Fraction of training reviews whose reliability label is available
    /// (paper §V future work: semi-supervised learning). Unlabelled
    /// examples skip the cross-entropy loss and gate their rating loss by
    /// the model's *own* predicted reliability (self-training).
    pub labeled_fraction: f32,
    /// RNG seed for initialisation and shuffling.
    pub seed: u64,
    /// Training worker threads (calling thread included); `1` is serial.
    /// Any value produces bit-identical models — see `rrre_core::parallel`
    /// for the determinism contract — so this is purely a throughput knob.
    pub threads: usize,
}

impl Default for RrreConfig {
    fn default() -> Self {
        Self {
            k: 64,
            s_u: 11,
            s_i: 12,
            id_dim: 16,
            attn_dim: 16,
            fm_factors: 8,
            lambda: 0.6,
            gamma: 1e-5,
            gamma_emb: 2e-2,
            lr: 0.005,
            epochs: 20,
            batch_size: 64,
            encoder: EncoderMode::Frozen,
            variant: LossVariant::Biased,
            pooling: Pooling::FraudAttention,
            sampling: Sampling::Latest,
            labeled_fraction: 1.0,
            seed: 0x44E5,
            threads: 1,
        }
    }
}

impl RrreConfig {
    /// Validates invariants; call before construction.
    ///
    /// # Panics
    /// Panics on invalid settings.
    pub fn validate(&self) {
        assert!(self.k >= 2 && self.k.is_multiple_of(2), "RrreConfig: k = {} must be even and ≥ 2", self.k);
        assert!(self.s_u >= 1, "RrreConfig: s_u must be ≥ 1");
        assert!(self.s_i >= 1, "RrreConfig: s_i must be ≥ 1");
        assert!((0.0..=1.0).contains(&self.lambda), "RrreConfig: lambda {} outside [0,1]", self.lambda);
        assert!(self.gamma >= 0.0, "RrreConfig: negative gamma");
        assert!(self.gamma_emb >= 0.0, "RrreConfig: negative gamma_emb");
        assert!(self.lr > 0.0, "RrreConfig: non-positive learning rate");
        assert!(self.batch_size >= 1, "RrreConfig: batch_size must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&self.labeled_fraction),
            "RrreConfig: labeled_fraction {} outside [0,1]",
            self.labeled_fraction
        );
        assert!(self.threads >= 1, "RrreConfig: threads must be ≥ 1");
    }

    /// This configuration with `threads` training workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The `RRRE_THREADS` environment override used by the CI thread-matrix
    /// smoke: `Some(n)` when the variable holds a positive integer, `None`
    /// otherwise.
    pub fn env_threads() -> Option<usize> {
        std::env::var("RRRE_THREADS").ok()?.trim().parse().ok().filter(|&n| n >= 1)
    }

    /// A small configuration for tests and smoke benchmarks.
    pub fn tiny() -> Self {
        Self {
            k: 16,
            s_u: 4,
            s_i: 6,
            id_dim: 8,
            attn_dim: 8,
            fm_factors: 4,
            epochs: 5,
            ..Default::default()
        }
    }

    /// The RRRE⁻ ablation of this configuration.
    pub fn minus(mut self) -> Self {
        self.variant = LossVariant::Unbiased;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_settings() {
        let cfg = RrreConfig::default();
        cfg.validate();
        assert_eq!(cfg.k, 64); // §IV-E1: best embedding size
        assert_eq!(cfg.s_i, 12); // §IV-E2: chosen setting
        assert_eq!(cfg.variant, LossVariant::Biased);
    }

    #[test]
    fn minus_flips_variant_only() {
        let cfg = RrreConfig::default().minus();
        assert_eq!(cfg.variant, LossVariant::Unbiased);
        assert_eq!(cfg.k, RrreConfig::default().k);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_rejected() {
        RrreConfig { k: 7, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_rejected() {
        RrreConfig { lambda: 1.5, ..Default::default() }.validate();
    }

    #[test]
    fn threads_default_is_serial_and_zero_is_rejected() {
        assert_eq!(RrreConfig::default().threads, 1);
        let cfg = RrreConfig::tiny().with_threads(4);
        cfg.validate();
        assert_eq!(cfg.threads, 4);
    }

    #[test]
    #[should_panic(expected = "threads")]
    fn zero_threads_rejected() {
        RrreConfig { threads: 0, ..Default::default() }.validate();
    }
}
