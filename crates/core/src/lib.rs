//! # rrre-core
//!
//! The paper's primary contribution: **Reliable Recommendation with
//! Review-level Explanations** (RRRE, ICDE 2021) — a joint neural model that
//! predicts a rating score and a reliability score for every user–item pair
//! and uses both to produce recommendations with reliable review-level
//! explanations.
//!
//! * [`ReviewEncoder`] — BiLSTM review content embedding (§III-C);
//! * [`Tower`] — UserNet/ItemNet with fraud-attention (§III-D);
//! * [`Rrre`] — the joint model, heads and training loop (§III-E);
//! * [`recommend`] / [`explain`] — the recommendation-with-reliable-
//!   explanation procedure (§III-B);
//! * [`RrreConfig::minus`] — the RRRE⁻ ablation (plain MSE, Eq. 13).

#![warn(missing_docs)]

pub mod adversarial;
pub mod checkpoint;
mod config;
pub mod coverage;
mod encoder;
pub mod eval;
mod model;
pub mod parallel;
mod recommend;
mod tower;

pub use adversarial::{
    evaluate_under_attack, fake_detection_ap, fit_on_poisoned, run_robustness_sweep, AttackCell,
    AttackEvalConfig, RobustnessReport,
};
pub use checkpoint::{CheckpointConfig, FitOutcome};
pub use config::{EncoderMode, LossVariant, Pooling, RrreConfig, Sampling};
pub use encoder::ReviewEncoder;
pub use coverage::{pipeline_report, PipelineReport};
pub use eval::{evaluate, JointEvaluation};
pub use model::{ColdStartPrior, EpochStats, Prediction, Rrre};
pub use recommend::{
    explain, rank_candidates, recommend, Explanation, Recommendation,
    EXPLANATION_RELIABILITY_THRESHOLD,
};
pub use tower::Tower;
