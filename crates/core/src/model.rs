//! The RRRE model (paper §III): parallel UserNet/ItemNet over BiLSTM review
//! embeddings with fraud-attention, a softmax reliability head (Eq. 9–11)
//! and an FM rating head (Eq. 12), trained jointly with
//! `L = λ·loss₁ + (1−λ)·loss₂` (Eq. 15) where loss₂ is the reliability-
//! biased MSE of Eq. (14) (or plain Eq. (13) for the RRRE⁻ ablation).

use crate::config::{EncoderMode, LossVariant, RrreConfig, Sampling};
use crate::encoder::ReviewEncoder;
use crate::parallel::{self, GradShard, Pool};
use crate::tower::Tower;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrre_data::repr::ReviewVectors;
use rrre_data::{Dataset, DatasetIndex, EncodedCorpus, ItemId, UserId};
use rrre_tensor::nn::{Embedding, FactorizationMachine, Linear};
use rrre_tensor::{optim::Adam, GradStore, ParamId, Params, Tape, Tensor, Var};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Joint prediction for one user–item pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted rating `r̂_ui`, clamped to the star range.
    pub rating: f32,
    /// Predicted reliability `l̂_ui ∈ [0, 1]` (probability the review is
    /// benign).
    pub reliability: f32,
}

/// Per-epoch training statistics delivered to the fit hook.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean joint loss over the epoch.
    pub loss: f32,
    /// Mean reliability cross-entropy (loss₁).
    pub loss1: f32,
    /// Mean (biased) rating MSE (loss₂).
    pub loss2: f32,
}

/// Calibrated low-confidence reliability prior for cold-start entities.
///
/// The fraud-attention towers aggregate an entity's review history; with
/// only a handful of reviews (the streaming-ingest cold-start corner) the
/// reliability head is confidently wrong rather than uncertain. Below the
/// `min_reviews` threshold the serving layer substitutes the dataset's
/// base rate of benign reviews — the best calibrated estimate available
/// with no per-entity evidence — while the rating still comes from the
/// model (ID embeddings carry signal even for thin histories).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdStartPrior {
    /// An entity pair with `min(user_degree, item_degree)` below this gets
    /// the prior instead of the reliability head's score.
    pub min_reviews: usize,
    /// The substituted reliability: the dataset's benign fraction.
    pub reliability: f32,
}

impl ColdStartPrior {
    /// Calibrates the prior against a dataset's observed label base rate.
    pub fn calibrate(ds: &Dataset, min_reviews: usize) -> Self {
        Self { min_reviews, reliability: (1.0 - ds.fake_fraction()) as f32 }
    }

    /// Whether the pair is below the evidence threshold.
    pub fn applies(&self, user_degree: usize, item_degree: usize) -> bool {
        user_degree.min(item_degree) < self.min_reviews
    }

    /// Replaces the reliability of `pred` with the prior when the pair is
    /// cold; the rating always passes through.
    pub fn gate(&self, pred: Prediction, user_degree: usize, item_degree: usize) -> Prediction {
        if self.applies(user_degree, item_degree) {
            Prediction { rating: pred.rating, reliability: self.reliability }
        } else {
            pred
        }
    }
}

/// Trained RRRE model.
#[derive(Clone)]
pub struct Rrre {
    cfg: RrreConfig,
    params: Params,
    encoder: ReviewEncoder,
    user_emb: Embedding,
    item_emb: Embedding,
    user_tower: Tower,
    item_tower: Tower,
    rel_head: Linear,
    w_h: Linear,
    w_e: Linear,
    fm: FactorizationMachine,
    /// Frozen-mode cache of review embeddings (`n_reviews × k`).
    cache: Option<ReviewVectors>,
    index: DatasetIndex,
    /// Train-set mean rating; the FM head predicts the residual around it,
    /// which keeps early training on the star scale.
    mean_rating: f32,
    /// The mean rating mirrored into `params` as a 1×1 tensor so that
    /// checkpoints are self-contained (a loader must not need the training
    /// split to reproduce predictions). Never touched by the optimiser.
    mean_rating_id: ParamId,
    /// Item index of every review (for the per-review attention context).
    input_items_of: Vec<usize>,
    /// User index of every review.
    input_users_of: Vec<usize>,
}

impl Rrre {
    /// Trains RRRE on the listed review indices.
    pub fn fit(ds: &Dataset, corpus: &EncodedCorpus, train: &[usize], cfg: RrreConfig) -> Self {
        Self::fit_with_hook(ds, corpus, train, cfg, |_, _| {})
    }

    /// Trains with a per-epoch hook `(stats, &model)` — the instrumentation
    /// behind the paper's Fig. 2–4 learning curves.
    pub fn fit_with_hook(
        ds: &Dataset,
        corpus: &EncodedCorpus,
        train: &[usize],
        cfg: RrreConfig,
        mut hook: impl FnMut(EpochStats, &Rrre),
    ) -> Self {
        let (mut model, mut rng, labeled) = Self::training_setup(ds, corpus, train, cfg);
        let mut opt = Adam::new(cfg.lr);
        let pool = Pool::new(cfg.threads);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..cfg.epochs {
            let stats =
                model.train_epoch(ds, corpus, train, &labeled, &mut order, &mut rng, &mut opt, epoch, &pool);
            hook(stats, &model);
        }
        model
    }

    /// Everything that happens before the first epoch: seed the RNG, build
    /// and initialise the architecture, pin the train-mean rating, build
    /// the frozen review cache, and draw the semi-supervised label mask.
    ///
    /// Split out (and the per-epoch body into [`Rrre::train_epoch`]) so the
    /// crash-safe checkpointing driver in `checkpoint.rs` replays *exactly*
    /// the [`Rrre::fit_with_hook`] sequence — resumed runs stay
    /// bit-identical to uninterrupted ones.
    pub(crate) fn training_setup(
        ds: &Dataset,
        corpus: &EncodedCorpus,
        train: &[usize],
        cfg: RrreConfig,
    ) -> (Self, StdRng, Vec<bool>) {
        assert!(!train.is_empty(), "Rrre::fit: empty training set");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = Self::new_untrained_with(ds, corpus, cfg, &mut rng);
        let mean = train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / train.len() as f32;
        model.set_mean_rating(mean);
        if matches!(cfg.encoder, EncoderMode::Frozen) {
            model.rebuild_cache(corpus);
        }

        // Semi-supervised masking (paper §V): a deterministic subset of the
        // training reviews keeps its reliability label.
        let labeled: Vec<bool> = if cfg.labeled_fraction >= 1.0 {
            vec![true; train.len()]
        } else {
            train.iter().map(|_| rng.gen::<f32>() < cfg.labeled_fraction).collect()
        };
        (model, rng, labeled)
    }

    /// One training epoch: in-place shuffle of `order` (epoch N+1's order
    /// depends on epoch N's — `order` is training state, not scratch), then
    /// the per-chunk sweep, data-parallel over the `pool`'s workers.
    ///
    /// Determinism contract (see [`crate::parallel`]): every chunk is split
    /// into fixed-grain shards, workers claim shards off a counter and fill
    /// each shard's own [`GradShard`] in position order, and the shards are
    /// combined by a fixed-order pairwise tree before a *single* thread
    /// applies regularisation, clipping and the Adam step. The resulting
    /// bits — gradients, loss statistics, final weights — are identical for
    /// every thread count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn train_epoch(
        &mut self,
        ds: &Dataset,
        corpus: &EncodedCorpus,
        train: &[usize],
        labeled: &[bool],
        order: &mut [usize],
        rng: &mut StdRng,
        opt: &mut Adam,
        epoch: usize,
        pool: &Pool,
    ) -> EpochStats {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let (mut sum_l, mut sum_l1, mut sum_l2) = (0.0f64, 0.0f64, 0.0f64);
        // Shard buffers are allocated once and reused across chunks.
        let mut shards: Vec<GradShard> = Vec::new();
        for chunk in order.chunks(self.cfg.batch_size) {
            self.params.zero_grads();
            let n_shards = parallel::shard_count(chunk.len());
            while shards.len() < n_shards {
                shards.push(GradShard::new(&self.params));
            }
            for shard in &mut shards[..n_shards] {
                shard.reset();
            }
            {
                let model = &*self;
                let next = AtomicUsize::new(0);
                // Hand each shard slot to exactly one worker: the claim
                // counter guarantees a single owner, the Mutex proves it to
                // the borrow checker without any unsafe.
                let slots: Vec<Mutex<&mut GradShard>> =
                    shards[..n_shards].iter_mut().map(Mutex::new).collect();
                pool.run(&|_worker| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= n_shards {
                        break;
                    }
                    let mut shard = slots[s].lock().unwrap();
                    for chunk_pos in parallel::shard_range(s, chunk.len()) {
                        let pos = chunk[chunk_pos];
                        let (l, l1, l2) = model.example_pass(
                            ds,
                            corpus,
                            train[pos],
                            labeled[pos],
                            chunk.len(),
                            &mut shard.grads,
                        );
                        shard.loss += l;
                        shard.loss1 += l1;
                        shard.loss2 += l2;
                    }
                });
            }
            // Single-threaded from here on: fixed-order reduction, then the
            // same regularise/clip/step sequence the serial loop always ran.
            parallel::tree_reduce(&mut shards[..n_shards]);
            let root = &shards[0];
            sum_l += root.loss;
            sum_l1 += root.loss1;
            sum_l2 += root.loss2;
            self.params.absorb(&root.grads);
            self.params.apply_l2_grad(self.cfg.gamma);
            // Extra shrinkage on the per-entity embedding tables.
            if self.cfg.gamma_emb > 0.0 {
                for id in [self.user_emb.table(), self.item_emb.table()] {
                    let value = self.params.get(id).clone();
                    self.params.grad_mut(id).axpy(2.0 * self.cfg.gamma_emb, &value);
                }
            }
            // Frozen means frozen: the cached review embeddings must
            // stay consistent with the encoder weights, so no update
            // (not even weight decay) may touch them.
            if matches!(self.cfg.encoder, EncoderMode::Frozen) {
                for id in self.encoder.param_ids() {
                    let (r_dim, c_dim) = self.params.grad(id).shape();
                    *self.params.grad_mut(id) = Tensor::zeros(r_dim, c_dim);
                }
            }
            // The mean rating is a data statistic that rides in `params`
            // only for checkpoint self-containment; `apply_l2_grad`
            // above gave it a weight-decay gradient that must not reach
            // the optimiser.
            *self.params.grad_mut(self.mean_rating_id) = Tensor::zeros(1, 1);
            self.params.clip_grad_norm(5.0);
            opt.step(&mut self.params);
        }
        let n = order.len().max(1) as f64;
        EpochStats {
            epoch,
            loss: (sum_l / n) as f32,
            loss1: (sum_l1 / n) as f32,
            loss2: (sum_l2 / n) as f32,
        }
    }

    /// One example's forward + backward — the shard-worker body. Takes `&self`
    /// (the model is shared read-only across workers) and accumulates the
    /// parameter gradients into `sink`; returns the `(joint, loss1, loss2)`
    /// loss contributions for the epoch statistics. The op sequence is the
    /// historical serial one, byte for byte, so a given example produces the
    /// same gradient bits no matter which worker (or how many) runs it.
    fn example_pass(
        &self,
        ds: &Dataset,
        corpus: &EncodedCorpus,
        review: usize,
        has_label: bool,
        chunk_len: usize,
        sink: &mut GradStore,
    ) -> (f64, f64, f64) {
        let r = &ds.reviews[review];
        let mut tape = Tape::new();
        let (pred, logits) = self.forward_pair(&mut tape, corpus, r.user.index(), r.item.index());

        // loss1 only where the label is available.
        let loss1 = tape.softmax_cross_entropy(
            logits,
            &[r.label.class_index()],
            Some(&[if has_label { 1.0 } else { 0.0 }]),
        );
        // loss2 weight: the label when available; otherwise the model's
        // current reliability estimate (self-training).
        let weight = match (self.cfg.variant, has_label) {
            (LossVariant::Unbiased, _) => 1.0,
            (LossVariant::Biased, true) => r.label.as_f32(),
            (LossVariant::Biased, false) => {
                let z = tape.value(logits);
                softmax2(z.get(0, 0), z.get(0, 1))
            }
        };
        let loss2 = tape.weighted_mse(pred, &[r.rating], &[weight]);
        let l1_scaled = tape.scale(loss1, self.cfg.lambda);
        let l2_scaled = tape.scale(loss2, 1.0 - self.cfg.lambda);
        let joint = tape.add(l1_scaled, l2_scaled);
        let scaled = tape.scale(joint, 1.0 / chunk_len as f32);
        tape.backward_into(scaled, sink);

        (
            tape.value(scaled).item() as f64 * chunk_len as f64,
            tape.value(loss1).item() as f64,
            tape.value(loss2).item() as f64,
        )
    }

    /// Architecture construction shared by [`Rrre::fit_with_hook`] and
    /// [`Rrre::from_checkpoint`]: registers every parameter (randomly
    /// initialised from `rng`) without training and without encoding the
    /// corpus. The dataset is required even for inference consumers — it
    /// provides the review index, the per-review counterpart-entity maps
    /// that feed the attention context, and the id-space sizes of the
    /// embedding tables.
    fn new_untrained_with(
        ds: &Dataset,
        corpus: &EncodedCorpus,
        cfg: RrreConfig,
        rng: &mut StdRng,
    ) -> Self {
        cfg.validate();
        let mut params = Params::new();
        let encoder = ReviewEncoder::new(&mut params, rng, corpus.embed_dim(), cfg.k);
        let user_emb = Embedding::new(&mut params, rng, "rrre.user_emb", ds.n_users, cfg.id_dim);
        let item_emb = Embedding::new(&mut params, rng, "rrre.item_emb", ds.n_items, cfg.id_dim);
        // Attention context per review slot: the target pair's user and item
        // ID embeddings (Eq. 5's e^u, e^i) plus the ID embedding of the
        // review's own counterpart entity ("the item that it written for"),
        // giving the attention both the fraud context and the means to
        // locate the target pair's own review among the inputs.
        let ctx_dim = 3 * cfg.id_dim;
        let user_tower = Tower::new(&mut params, rng, "rrre.usernet", cfg.k, ctx_dim, cfg.attn_dim, cfg.id_dim);
        let item_tower = Tower::new(&mut params, rng, "rrre.itemnet", cfg.k, ctx_dim, cfg.attn_dim, cfg.id_dim);
        let rel_head = Linear::new(&mut params, rng, "rrre.rel_head", 2 * cfg.id_dim, 2);
        let w_h = Linear::new(&mut params, rng, "rrre.w_h", cfg.id_dim, cfg.id_dim);
        let w_e = Linear::new(&mut params, rng, "rrre.w_e", cfg.id_dim, cfg.id_dim);
        let fm = FactorizationMachine::new(&mut params, rng, "rrre.fm", 2 * cfg.id_dim, cfg.fm_factors);
        // Registered last so older tooling reading checkpoints by position
        // sees the architectural parameters first.
        let mean_rating_id = params.register("rrre.mean_rating", Tensor::zeros(1, 1));

        Self {
            cfg,
            params,
            encoder,
            user_emb,
            item_emb,
            user_tower,
            item_tower,
            rel_head,
            w_h,
            w_e,
            fm,
            cache: None,
            index: ds.index(),
            mean_rating: 0.0,
            mean_rating_id,
            input_items_of: ds.reviews.iter().map(|r| r.item.index()).collect(),
            input_users_of: ds.reviews.iter().map(|r| r.user.index()).collect(),
        }
    }

    /// Builds the model architecture and restores trained weights from an
    /// `RRRP` checkpoint — no throwaway [`Rrre::fit`] run required. `cfg`
    /// and `ds`/`corpus` must match what the checkpoint was trained with
    /// (parameter names and shapes are validated; mismatches fail with
    /// `InvalidData`).
    ///
    /// In [`EncoderMode::Frozen`] the review-embedding cache is rebuilt from
    /// the restored encoder weights, so the model is immediately ready for
    /// tape-free prediction.
    pub fn from_checkpoint(
        ds: &Dataset,
        corpus: &EncodedCorpus,
        cfg: RrreConfig,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = Self::new_untrained_with(ds, corpus, cfg, &mut rng);
        model.load_weights(path, corpus)?;
        Ok(model)
    }

    fn set_mean_rating(&mut self, mean: f32) {
        self.mean_rating = mean;
        self.params.get_mut(self.mean_rating_id).set(0, 0, mean);
    }

    fn rebuild_cache(&mut self, corpus: &EncodedCorpus) {
        self.cache = Some(ReviewVectors::from_flat(
            self.cfg.k,
            self.encoder.encode_all(&self.params, corpus),
        ));
    }

    /// Ensures the tape-free frozen prediction path is available by
    /// materialising the review-embedding cache from the current encoder
    /// weights. A no-op when the cache already exists (frozen-mode models
    /// have it from construction).
    ///
    /// For [`EncoderMode::EndToEnd`] models this pins the encoder output at
    /// its current weights — exactly what an inference server wants, since
    /// per-request BiLSTM re-encoding is the cost the serving cache exists
    /// to avoid.
    pub fn freeze_for_inference(&mut self, corpus: &EncodedCorpus) {
        if self.cache.is_none() {
            self.rebuild_cache(corpus);
        }
    }

    /// Whether the tape-free frozen prediction path (and therefore
    /// [`Rrre::infer_user_tower`] / [`Rrre::infer_item_tower`]) is ready.
    pub fn has_frozen_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Incrementally absorbs reviews appended to the dataset since this
    /// model's state was built: encodes each new review with the *frozen*
    /// encoder weights, appends it to the review-embedding cache, and
    /// rebuilds the per-entity index and counterpart maps. `first_new` is
    /// the dataset length the model currently reflects; reviews
    /// `first_new..ds.len()` are absorbed.
    ///
    /// Because [`ReviewEncoder::encode_all`] is definitionally a loop over
    /// [`ReviewEncoder::encode_review`], the refreshed cache is
    /// **bit-identical** to a full `freeze_for_inference` rebuild over the
    /// grown corpus — the incremental path can never drift. (The parity
    /// drill in `rrre-serve` asserts exactly this.)
    ///
    /// Returns the number of reviews absorbed. No weight changes: this is
    /// retrain-free — only the inputs the towers attend over grow.
    pub fn refresh_towers(
        &mut self,
        ds: &Dataset,
        corpus: &EncodedCorpus,
        first_new: usize,
    ) -> Result<usize, String> {
        if corpus.docs.len() != ds.len() {
            return Err(format!(
                "corpus has {} docs but the dataset has {} reviews",
                corpus.docs.len(),
                ds.len()
            ));
        }
        let cache_len = match &self.cache {
            Some(c) => c.len(),
            None => return Err("refresh_towers requires the frozen review cache; call freeze_for_inference first".into()),
        };
        if cache_len != first_new || self.input_items_of.len() != first_new {
            return Err(format!(
                "model reflects {} reviews (cache {}, maps {}) but first_new is {first_new}",
                self.input_items_of.len(),
                cache_len,
                self.input_items_of.len()
            ));
        }
        if first_new > ds.len() {
            return Err(format!("first_new {first_new} past the dataset's {} reviews", ds.len()));
        }
        for idx in first_new..ds.len() {
            let row = self.encoder.encode_review(&self.params, corpus, idx);
            self.cache.as_mut().unwrap().append(row.as_slice());
            self.input_items_of.push(ds.reviews[idx].item.index());
            self.input_users_of.push(ds.reviews[idx].user.index());
        }
        self.index = ds.index();
        Ok(ds.len() - first_new)
    }

    /// The time-sorted per-entity review index the model currently attends
    /// over (kept current by [`Rrre::refresh_towers`]); serving layers use
    /// the degrees for cold-start gating.
    pub fn index(&self) -> &DatasetIndex {
        &self.index
    }

    /// Train-set mean rating (the residual base of the FM rating head).
    pub fn mean_rating(&self) -> f32 {
        self.mean_rating
    }

    /// The model's configuration.
    pub fn config(&self) -> &RrreConfig {
        &self.cfg
    }

    /// The trained parameter store (read access, e.g. for checkpoint size).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Mutable parameter access for the checkpoint driver (grad hygiene
    /// after a divergence rollback).
    pub(crate) fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Saves the trained weights as an `RRRP` checkpoint file.
    pub fn save_weights(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.params.save(path)
    }

    /// Restores weights from a checkpoint written by [`Rrre::save_weights`]
    /// for a model built with the *same configuration and dataset shape*
    /// (parameter names and shapes must match), then refreshes the frozen
    /// review-embedding cache.
    ///
    /// Most callers want [`Rrre::from_checkpoint`], which builds the
    /// architecture and restores in one step; `load_weights` remains for
    /// swapping weights into an existing model (e.g. warm restarts).
    pub fn load_weights(
        &mut self,
        path: impl AsRef<std::path::Path>,
        corpus: &EncodedCorpus,
    ) -> std::io::Result<()> {
        let loaded = Params::load(path)?;
        self.params
            .restore_values(&loaded)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.mean_rating = self.params.get(self.mean_rating_id).item();
        if self.cache.is_some() || matches!(self.cfg.encoder, EncoderMode::Frozen) {
            self.rebuild_cache(corpus);
        }
        Ok(())
    }

    /// The latest-`m` review matrices of one user–item pair: differentiable
    /// review representations `[m, k]` plus validity masks.
    fn review_matrix(
        &self,
        tape: &mut Tape,
        corpus: &EncodedCorpus,
        review_indices: &[usize],
        m: usize,
    ) -> (Var, Vec<bool>) {
        match (&self.cache, self.cfg.encoder) {
            (Some(cache), _) => {
                let (t, mask) = cache.stack_padded(review_indices, m);
                (tape.constant(t), mask)
            }
            (None, _) => {
                // End-to-end: encode each review on the tape; zero rows pad.
                let take = review_indices.len().min(m);
                let start = review_indices.len() - take;
                let mut rows = Vec::with_capacity(m);
                let mut mask = vec![false; m];
                for (slot, &ri) in review_indices[start..].iter().enumerate() {
                    rows.push(self.encoder.forward_review(tape, &self.params, corpus, ri));
                    mask[slot] = true;
                }
                while rows.len() < m {
                    rows.push(tape.constant(Tensor::zeros(1, self.cfg.k)));
                }
                (tape.concat_rows(&rows), mask)
            }
        }
    }

    /// The input reviews of an entity under the configured sampling
    /// strategy: the paper's latest-`m` (time-based) or a stable
    /// pseudo-random `m`-subset (ablation).
    fn select_inputs(&self, all: &[usize], m: usize, salt: u64) -> Vec<usize> {
        match self.cfg.sampling {
            Sampling::Latest => all[all.len().saturating_sub(m)..].to_vec(),
            Sampling::Random => {
                if all.len() <= m {
                    return all.to_vec();
                }
                let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ salt);
                let mut pool: Vec<usize> = all.to_vec();
                for i in 0..m {
                    let j = rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                }
                pool.truncate(m);
                pool
            }
        }
    }

    fn user_inputs(&self, user: usize) -> Vec<usize> {
        let all = self.index.user_reviews(UserId(user as u32));
        self.select_inputs(all, self.cfg.s_u, 0x5555_0000 ^ user as u64)
    }

    fn item_inputs(&self, item: usize) -> Vec<usize> {
        let all = self.index.item_reviews(ItemId(item as u32));
        self.select_inputs(all, self.cfg.s_i, 0xAAAA_0000 ^ item as u64)
    }

    /// Counterpart entity ids aligned with the padded review matrix slots:
    /// slot `j` of the matrix holds `revs[start + j]`, padding slots get id
    /// 0 (they are masked out of the attention softmax anyway).
    fn aligned_counterpart_ids(ds_revs: &[usize], m: usize, id_of: impl Fn(usize) -> usize) -> Vec<usize> {
        let take = ds_revs.len().min(m);
        let start = ds_revs.len() - take;
        let mut ids = vec![0usize; m];
        for (slot, &ri) in ids.iter_mut().zip(&ds_revs[start..]) {
            *slot = id_of(ri);
        }
        ids
    }

    /// The §III-D attention context for one tower: per review slot, the
    /// target pair's user and item ID embeddings plus the ID embedding of
    /// the review's counterpart entity — a `[m, 3·id_dim]` matrix.
    fn tower_context(
        &self,
        tape: &mut Tape,
        e_u: Var,
        e_i: Var,
        counterpart_ids: &[usize],
        counterpart: &Embedding,
    ) -> Var {
        let m = counterpart_ids.len();
        let dup = vec![0usize; m];
        let u_rows = tape.gather_rows(e_u, &dup);
        let i_rows = tape.gather_rows(e_i, &dup);
        let cp = counterpart.forward(tape, &self.params, counterpart_ids);
        tape.concat_cols(&[u_rows, i_rows, cp])
    }

    /// Differentiable joint forward for one pair: returns the rating node
    /// (`[1, 1]`) and the reliability logits (`[1, 2]`, class 1 = benign).
    fn forward_pair(&self, tape: &mut Tape, corpus: &EncodedCorpus, user: usize, item: usize) -> (Var, Var) {
        let u_revs = self.user_inputs(user);
        let i_revs = self.item_inputs(item);

        let e_u = self.user_emb.forward(tape, &self.params, &[user]);
        let e_i = self.item_emb.forward(tape, &self.params, &[item]);

        let (u_matrix, u_mask) = self.review_matrix(tape, corpus, &u_revs, self.cfg.s_u);
        let (i_matrix, i_mask) = self.review_matrix(tape, corpus, &i_revs, self.cfg.s_i);

        // Per-review contexts (paper §III-D: the j-th review's own author
        // and target IDs enter its attention score).
        let (ds_u_ids, ds_i_ids) = (&self.input_items_of, &self.input_users_of);
        let u_cp = Self::aligned_counterpart_ids(&u_revs, self.cfg.s_u, |ri| ds_u_ids[ri]);
        let i_cp = Self::aligned_counterpart_ids(&i_revs, self.cfg.s_i, |ri| ds_i_ids[ri]);
        let u_ctx = self.tower_context(tape, e_u, e_i, &u_cp, &self.item_emb);
        let i_ctx = self.tower_context(tape, e_u, e_i, &i_cp, &self.user_emb);

        let x_u = self.user_tower.forward(tape, &self.params, u_matrix, &u_mask, u_ctx, self.cfg.pooling);
        let y_i = self.item_tower.forward(tape, &self.params, i_matrix, &i_mask, i_ctx, self.cfg.pooling);

        // Reliability head (Eq. 9): softmax(W[x_u, y_i] + b); the softmax is
        // folded into the cross-entropy during training and applied in
        // `predict`.
        let joint_repr = tape.concat_cols(&[x_u, y_i]);
        let logits = self.rel_head.forward(tape, &self.params, joint_repr);

        // Rating head (Eq. 12): FM([(e_u + W_h x_u), (e_i + W_e y_i)]).
        let xh = self.w_h.forward(tape, &self.params, x_u);
        let ye = self.w_e.forward(tape, &self.params, y_i);
        let a = tape.add(e_u, xh);
        let b = tape.add(e_i, ye);
        let fused = tape.concat_cols(&[a, b]);
        let residual = self.fm.forward(tape, &self.params, fused);
        let rating = tape.add_scalar(residual, self.mean_rating);

        (rating, logits)
    }

    /// Joint prediction for a user–item pair (tape-free fast path in frozen
    /// mode; falls back to a throwaway tape in end-to-end mode).
    pub fn predict(&self, corpus: &EncodedCorpus, user: UserId, item: ItemId) -> Prediction {
        match &self.cache {
            Some(_) => self.predict_frozen(user, item),
            None => {
                let mut tape = Tape::new();
                let (pred, logits) = self.forward_pair(&mut tape, corpus, user.index(), item.index());
                let z = tape.value(logits);
                Prediction {
                    rating: tape.value(pred).item().clamp(1.0, 5.0),
                    reliability: softmax2(z.get(0, 0), z.get(0, 1)),
                }
            }
        }
    }

    /// Tape-free frozen prediction, decomposed through the public
    /// tower/head accessors so external consumers (the serving engine)
    /// reproduce `predict` bit-for-bit from cached tower representations.
    fn predict_frozen(&self, user: UserId, item: ItemId) -> Prediction {
        let x_u = self.infer_user_tower(user, item);
        let y_i = self.infer_item_tower(user, item);
        self.infer_heads(user, item, &x_u, &y_i)
    }

    /// The user-tower representation `x_u` (`[1, id_dim]`) for a target
    /// pair. Pair-dependent, not just user-dependent: the fraud-attention
    /// context contains the target item's ID embedding (paper §III-D), so a
    /// cache of these must be keyed by `(user, item)`.
    ///
    /// Requires the frozen review cache — call
    /// [`Rrre::freeze_for_inference`] first on end-to-end models.
    pub fn infer_user_tower(&self, user: UserId, item: ItemId) -> Tensor {
        let cache = self.cache.as_ref().expect(
            "Rrre::infer_user_tower: no frozen review cache; call freeze_for_inference first",
        );
        let u_revs = self.user_inputs(user.index());
        let e_u = self.user_emb.infer(&self.params, &[user.index()]);
        let e_i = self.item_emb.infer(&self.params, &[item.index()]);
        let (u_matrix, u_mask) = cache.stack_padded(&u_revs, self.cfg.s_u);
        let u_ctx = self.infer_tower_context(&e_u, &e_i, &u_revs, self.cfg.s_u, true);
        self.user_tower.infer(&self.params, &u_matrix, &u_mask, &u_ctx, self.cfg.pooling)
    }

    /// The item-tower representation `y_i` (`[1, id_dim]`) for a target
    /// pair; pair-dependent for the same reason as
    /// [`Rrre::infer_user_tower`].
    pub fn infer_item_tower(&self, user: UserId, item: ItemId) -> Tensor {
        let cache = self.cache.as_ref().expect(
            "Rrre::infer_item_tower: no frozen review cache; call freeze_for_inference first",
        );
        let i_revs = self.item_inputs(item.index());
        let e_u = self.user_emb.infer(&self.params, &[user.index()]);
        let e_i = self.item_emb.infer(&self.params, &[item.index()]);
        let (i_matrix, i_mask) = cache.stack_padded(&i_revs, self.cfg.s_i);
        let i_ctx = self.infer_tower_context(&e_u, &e_i, &i_revs, self.cfg.s_i, false);
        self.item_tower.infer(&self.params, &i_matrix, &i_mask, &i_ctx, self.cfg.pooling)
    }

    /// The reliability and rating heads over precomputed tower
    /// representations — the cheap half of frozen prediction. Combining
    /// cached [`Rrre::infer_user_tower`]/[`Rrre::infer_item_tower`] outputs
    /// with this reproduces [`Rrre::predict`] exactly.
    pub fn infer_heads(&self, user: UserId, item: ItemId, x_u: &Tensor, y_i: &Tensor) -> Prediction {
        let e_u = self.user_emb.infer(&self.params, &[user.index()]);
        let e_i = self.item_emb.infer(&self.params, &[item.index()]);
        let joint = Tensor::concat_cols(&[x_u, y_i]);
        let z = self.rel_head.infer(&self.params, &joint);
        let a = e_u.add(&self.w_h.infer(&self.params, x_u));
        let b = e_i.add(&self.w_e.infer(&self.params, y_i));
        let fused = Tensor::concat_cols(&[&a, &b]);
        let rating = self.fm.infer(&self.params, &fused).item() + self.mean_rating;

        Prediction {
            rating: rating.clamp(1.0, 5.0),
            reliability: softmax2(z.get(0, 0), z.get(0, 1)),
        }
    }

    /// Joint predictions for the listed review indices.
    pub fn predict_reviews(&self, ds: &Dataset, corpus: &EncodedCorpus, indices: &[usize]) -> Vec<Prediction> {
        indices
            .iter()
            .map(|&i| self.predict(corpus, ds.reviews[i].user, ds.reviews[i].item))
            .collect()
    }

    /// Fraud-attention weights of the user tower for a target pair — which
    /// of the user's latest reviews drive `x_u`. Returns
    /// `(review_indices, weights)` aligned pairwise.
    pub fn user_attention(&self, corpus: &EncodedCorpus, user: UserId, item: ItemId) -> (Vec<usize>, Vec<f32>) {
        let u_revs = self.user_inputs(user.index());
        let cache = self.ensure_cache(corpus);
        let e_u = self.user_emb.infer(&self.params, &[user.index()]);
        let e_i = self.item_emb.infer(&self.params, &[item.index()]);
        let (matrix, mask) = cache.stack_padded(&u_revs, self.cfg.s_u);
        let ctx = self.infer_tower_context(&e_u, &e_i, &u_revs, self.cfg.s_u, true);
        let weights = self.user_tower.infer_attention(&self.params, &matrix, &mask, &ctx);
        let take = u_revs.len().min(self.cfg.s_u);
        let start = u_revs.len() - take;
        (u_revs[start..].to_vec(), weights[..take].to_vec())
    }

    /// Tape-free per-review context matrix (`[m, 3·id_dim]`).
    fn infer_tower_context(&self, e_u: &Tensor, e_i: &Tensor, revs: &[usize], m: usize, user_side: bool) -> Tensor {
        let lookup: &[usize] = if user_side { &self.input_items_of } else { &self.input_users_of };
        let cp_ids = Self::aligned_counterpart_ids(revs, m, |ri| lookup[ri]);
        let cp = if user_side {
            self.item_emb.infer(&self.params, &cp_ids)
        } else {
            self.user_emb.infer(&self.params, &cp_ids)
        };
        let dup = vec![0usize; m];
        let u_rows = e_u.gather_rows(&dup);
        let i_rows = e_i.gather_rows(&dup);
        Tensor::concat_cols(&[&u_rows, &i_rows, &cp])
    }

    /// Fraud-attention weights of the item tower for a target pair — which
    /// of the item's latest reviews drive `y_i`. Returns
    /// `(review_indices, weights)` aligned pairwise.
    pub fn item_attention(&self, corpus: &EncodedCorpus, user: UserId, item: ItemId) -> (Vec<usize>, Vec<f32>) {
        let i_revs = self.item_inputs(item.index());
        let cache = self.ensure_cache(corpus);
        let e_u = self.user_emb.infer(&self.params, &[user.index()]);
        let e_i = self.item_emb.infer(&self.params, &[item.index()]);
        let (matrix, mask) = cache.stack_padded(&i_revs, self.cfg.s_i);
        let ctx = self.infer_tower_context(&e_u, &e_i, &i_revs, self.cfg.s_i, false);
        let weights = self.item_tower.infer_attention(&self.params, &matrix, &mask, &ctx);
        let take = i_revs.len().min(self.cfg.s_i);
        let start = i_revs.len() - take;
        (i_revs[start..].to_vec(), weights[..take].to_vec())
    }

    fn ensure_cache(&self, corpus: &EncodedCorpus) -> ReviewVectors {
        match &self.cache {
            Some(c) => c.clone(),
            None => ReviewVectors::from_flat(self.cfg.k, self.encoder.encode_all(&self.params, corpus)),
        }
    }
}

#[inline]
fn softmax2(z_fake: f32, z_benign: f32) -> f32 {
    let m = z_fake.max(z_benign);
    let e0 = (z_fake - m).exp();
    let e1 = (z_benign - m).exp();
    e1 / (e0 + e1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig, Label};
    use rrre_metrics::{auc, brmse};
    use rrre_text::word2vec::Word2VecConfig;

    fn tiny() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 14,
                word2vec: Word2VecConfig { dim: 8, epochs: 2, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let mut losses = Vec::new();
        let cfg = RrreConfig { epochs: 6, ..RrreConfig::tiny() };
        let _ = Rrre::fit_with_hook(&ds, &corpus, &train, cfg, |s, _| losses.push(s.loss));
        assert!(losses.last().unwrap() < losses.first().unwrap(), "losses {losses:?}");
    }

    #[test]
    fn joint_model_learns_both_tasks() {
        let (ds, corpus) = tiny();
        let mut rng = StdRng::seed_from_u64(7);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let cfg = RrreConfig { epochs: 10, ..RrreConfig::tiny() };
        let model = Rrre::fit(&ds, &corpus, &split.train, cfg);

        let preds = model.predict_reviews(&ds, &corpus, &split.test);
        let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
        let rels: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
        let targets: Vec<f32> = split.test.iter().map(|&i| ds.reviews[i].rating).collect();
        let weights: Vec<f32> = split.test.iter().map(|&i| ds.reviews[i].label.as_f32()).collect();
        let labels: Vec<bool> = split.test.iter().map(|&i| ds.reviews[i].label == Label::Benign).collect();

        // Rating: beat the train-mean predictor on benign reviews.
        let mean = split.train.iter().map(|&i| ds.reviews[i].rating).sum::<f32>() / split.train.len() as f32;
        let model_brmse = brmse(&ratings, &targets, &weights);
        let mean_brmse = brmse(&vec![mean; targets.len()], &targets, &weights);
        assert!(model_brmse < mean_brmse, "bRMSE {model_brmse} vs mean {mean_brmse}");

        // Reliability: clearly better than chance.
        let a = auc(&rels, &labels);
        assert!(a > 0.6, "AUC {a}");
    }

    #[test]
    fn predictions_are_bounded() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
        let model = Rrre::fit(&ds, &corpus, &train, cfg);
        for p in model.predict_reviews(&ds, &corpus, &train[..20.min(train.len())]) {
            assert!((1.0..=5.0).contains(&p.rating));
            assert!((0.0..=1.0).contains(&p.reliability));
        }
    }

    #[test]
    fn end_to_end_mode_trains_and_agrees_in_shape() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..40.min(ds.len())).collect();
        let cfg = RrreConfig {
            epochs: 1,
            encoder: EncoderMode::EndToEnd,
            batch_size: 8,
            ..RrreConfig::tiny()
        };
        let model = Rrre::fit(&ds, &corpus, &train, cfg);
        let p = model.predict(&corpus, ds.reviews[0].user, ds.reviews[0].item);
        assert!((1.0..=5.0).contains(&p.rating));
        assert!((0.0..=1.0).contains(&p.reliability));
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
        let model = Rrre::fit(&ds, &corpus, &train, cfg);
        let dir = std::env::temp_dir().join("rrre-core-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.rrrp");
        model.save_weights(&path).unwrap();

        // A differently-seeded fresh model diverges, then matches exactly
        // after restoring the checkpoint.
        let mut other = Rrre::fit(&ds, &corpus, &train, RrreConfig { seed: cfg.seed ^ 0xFF, ..cfg });
        let r = &ds.reviews[0];
        let before = other.predict(&corpus, r.user, r.item);
        other.load_weights(&path, &corpus).unwrap();
        std::fs::remove_file(&path).ok();
        let restored = other.predict(&corpus, r.user, r.item);
        let original = model.predict(&corpus, r.user, r.item);
        assert_ne!(before, original);
        assert_eq!(restored, original);
    }

    #[test]
    fn refresh_towers_is_bit_identical_to_full_reencode() {
        let (mut ds, mut corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
        let mut model = Rrre::fit(&ds, &corpus, &train, cfg);

        // Stream in two reviews for existing entities (id spaces are fixed).
        let first_new = ds.len();
        for (src, text_src) in [(0usize, 1usize), (1, 0)] {
            let mut r = ds.reviews[src].clone();
            r.text = ds.reviews[text_src].text.clone();
            r.timestamp += 10_000;
            corpus.append_doc(&r.text);
            ds.reviews.push(r);
        }
        let touched = ds.reviews[first_new].clone();
        let before = model.predict(&corpus, touched.user, touched.item);
        assert_eq!(model.refresh_towers(&ds, &corpus, first_new).unwrap(), 2);
        assert!(model.index().user_reviews(touched.user).contains(&first_new), "index absorbed the new review");

        // The full retrain-free path: same weights, architecture rebuilt
        // over the grown dataset, cache re-encoded from scratch.
        let dir = std::env::temp_dir().join(format!("rrre-refresh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.rrrp");
        model.save_weights(&path).unwrap();
        let full = Rrre::from_checkpoint(&ds, &corpus, cfg, &path).unwrap();
        std::fs::remove_file(&path).ok();

        let incr = model.predict(&corpus, touched.user, touched.item);
        assert_eq!(incr, full.predict(&corpus, touched.user, touched.item), "touched pair must match bit-for-bit");
        let other = &ds.reviews[2];
        assert_eq!(
            model.predict(&corpus, other.user, other.item),
            full.predict(&corpus, other.user, other.item),
            "untouched pairs too"
        );
        // The new review actually entered the towers' input sets.
        assert_ne!(before, incr, "a new latest review must move the touched pair's prediction");
        // Absorbing with a stale first_new is refused, not silently wrong.
        assert!(model.refresh_towers(&ds, &corpus, first_new).is_err());
    }

    #[test]
    fn cold_start_prior_gates_thin_pairs_only() {
        let (ds, _) = tiny();
        let prior = ColdStartPrior::calibrate(&ds, 3);
        assert!((prior.reliability - (1.0 - ds.fake_fraction()) as f32).abs() < 1e-6);
        let p = Prediction { rating: 4.2, reliability: 0.93 };
        let gated = prior.gate(p, 1, 50);
        assert_eq!(gated.rating, 4.2, "rating always passes through");
        assert_eq!(gated.reliability, prior.reliability);
        assert_eq!(prior.gate(p, 3, 3), p, "warm pairs keep the model score");
        assert!(prior.applies(0, 10) && !prior.applies(7, 3));
    }

    #[test]
    fn item_attention_exposes_item_reviews() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
        let model = Rrre::fit(&ds, &corpus, &train, cfg);
        let r = &ds.reviews[0];
        let (revs, weights) = model.item_attention(&corpus, r.user, r.item);
        assert_eq!(revs.len(), weights.len());
        assert!(!revs.is_empty());
        assert!((weights.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let index = ds.index();
        assert!(revs.iter().all(|ri| index.item_reviews(r.item).contains(ri)));
    }

    #[test]
    fn attention_exposes_user_reviews() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
        let model = Rrre::fit(&ds, &corpus, &train, cfg);
        let r = &ds.reviews[0];
        let (revs, weights) = model.user_attention(&corpus, r.user, r.item);
        assert_eq!(revs.len(), weights.len());
        assert!(!revs.is_empty());
        assert!((weights.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
