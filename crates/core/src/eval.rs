//! Convenience joint evaluation of a trained model on a review subset —
//! the metrics bundle every experiment and example needs.

use crate::model::Rrre;
use rrre_data::{Dataset, EncodedCorpus};
use rrre_metrics::{auc, average_precision, brmse, ndcg_at_k, rmse};

/// Joint evaluation results on one set of reviews.
#[derive(Debug, Clone, PartialEq)]
pub struct JointEvaluation {
    /// Biased RMSE (Eq. 17) of the rating head over benign reviews.
    pub brmse: f64,
    /// Plain RMSE over all reviews (diagnostic companion).
    pub rmse: f64,
    /// ROC-AUC of the reliability head (benign vs fake).
    pub auc: f64,
    /// Average precision ranking benign reviews first.
    pub ap_benign: f64,
    /// NDCG@k of the reliability ranking at `k = min(100, n)`.
    pub ndcg_100: f64,
    /// Number of evaluated reviews.
    pub n: usize,
}

/// Evaluates both heads of a trained model on the listed review indices.
///
/// # Panics
/// Panics if `indices` is empty.
pub fn evaluate(model: &Rrre, ds: &Dataset, corpus: &EncodedCorpus, indices: &[usize]) -> JointEvaluation {
    assert!(!indices.is_empty(), "evaluate: empty review set");
    let preds = model.predict_reviews(ds, corpus, indices);
    let ratings: Vec<f32> = preds.iter().map(|p| p.rating).collect();
    let reliabilities: Vec<f32> = preds.iter().map(|p| p.reliability).collect();
    let targets: Vec<f32> = indices.iter().map(|&i| ds.reviews[i].rating).collect();
    let weights: Vec<f32> = indices.iter().map(|&i| ds.reviews[i].label.as_f32()).collect();
    let labels: Vec<bool> = indices.iter().map(|&i| ds.reviews[i].label.is_benign()).collect();
    JointEvaluation {
        brmse: brmse(&ratings, &targets, &weights),
        rmse: rmse(&ratings, &targets),
        auc: auc(&reliabilities, &labels),
        ap_benign: average_precision(&reliabilities, &labels),
        ndcg_100: ndcg_at_k(&reliabilities, &labels, 100.min(labels.len())),
        n: indices.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RrreConfig;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::{train_test_split, CorpusConfig};
    use rrre_text::word2vec::Word2VecConfig;

    #[test]
    fn evaluation_fields_are_consistent() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 12,
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let split = train_test_split(&ds, 0.3, &mut rng);
        let model = Rrre::fit(&ds, &corpus, &split.train, RrreConfig { epochs: 3, ..RrreConfig::tiny() });
        let e = evaluate(&model, &ds, &corpus, &split.test);
        assert_eq!(e.n, split.test.len());
        assert!(e.brmse > 0.0 && e.brmse.is_finite());
        // bRMSE restricts to benign reviews; it never exceeds plain RMSE by
        // more than the fake-review contribution allows in either direction,
        // but both must be in a sane star-scale band.
        assert!((0.1..=4.0).contains(&e.rmse));
        assert!((0.0..=1.0).contains(&e.auc));
        assert!((0.0..=1.0).contains(&e.ap_benign));
        assert!((0.0..=1.0 + 1e-9).contains(&e.ndcg_100));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_panics() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.03));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 8,
                word2vec: Word2VecConfig { dim: 4, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let train: Vec<usize> = (0..ds.len()).collect();
        let model = Rrre::fit(&ds, &corpus, &train, RrreConfig { epochs: 1, ..RrreConfig::tiny() });
        let _ = evaluate(&model, &ds, &corpus, &[]);
    }
}
