//! Deterministic data-parallel training primitives.
//!
//! The training loop in [`crate::Rrre::train_epoch`] splits every minibatch
//! into *shards* of a fixed grain ([`SHARD_GRAIN`] examples), each worker of
//! a persistent [`Pool`] claims shards off a shared counter and accumulates
//! forward/backward results into that shard's own [`GradShard`], and a single
//! thread then combines the shards with [`tree_reduce`] — a fixed-order,
//! pairwise tree whose shape depends only on the shard count.
//!
//! Determinism argument, in three parts:
//!
//! 1. **Shards are positional, not per-worker.** Shard `s` always covers
//!    chunk positions `[s·G, (s+1)·G)` and its buffer is filled in position
//!    order, so the bits inside every shard are independent of which worker
//!    computed it (thread count only decides *who* runs a shard, never
//!    *what* a shard contains).
//! 2. **The reduction order is pinned.** [`tree_reduce`] combines shard `i`
//!    with shard `i + stride` for strides `1, 2, 4, …` — a tree determined by
//!    the shard count alone. Floating-point addition is not associative, so
//!    this is the step that would silently vary with thread count in a naïve
//!    "reduce as workers finish" design.
//! 3. **The optimiser step is serial.** One thread absorbs the reduced
//!    gradients into the `Params` store and applies Adam, exactly as before.
//!
//! Together these make training bit-identical for every thread count,
//! including `threads = 1`, which runs the very same shard loop on the
//! calling thread. `tests/parallel_parity.rs` is the oracle for this claim.
//!
//! The pool itself follows the worker-pool idiom of `crates/serve`'s
//! batching engine (parked workers, a generation counter instead of a
//! channel, panic containment), but publishes borrowed jobs: [`Pool::run`]
//! hands workers a lifetime-erased pointer to a caller-stack closure and
//! blocks until every worker is done with it, which is what makes the
//! erasure sound.

use rrre_tensor::{GradStore, Params};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Examples per shard. A constant — never derived from the thread count —
/// so the shard layout (and therefore every accumulation order) is a pure
/// function of the chunk length. Small enough to keep 8 workers busy on the
/// default 64-example batch, large enough that the per-shard buffer zeroing
/// amortises.
pub const SHARD_GRAIN: usize = 4;

/// Number of shards a chunk of `n` examples splits into.
pub fn shard_count(n: usize) -> usize {
    n.div_ceil(SHARD_GRAIN)
}

/// Chunk positions covered by shard `s` of a chunk of `n` examples.
pub fn shard_range(s: usize, n: usize) -> std::ops::Range<usize> {
    let start = s * SHARD_GRAIN;
    start..((start + SHARD_GRAIN).min(n))
}

/// One shard's accumulation buffer: a detached gradient store plus the
/// (f64) loss partial sums for the epoch statistics. Keeping the loss sums
/// in the shard means the *statistics* are also combined by the fixed-order
/// tree, so the reported per-epoch losses are bit-stable across thread
/// counts too — which is exactly what the golden traces assert on.
#[derive(Debug)]
pub struct GradShard {
    /// Per-parameter gradient accumulators for this shard's examples.
    pub grads: GradStore,
    /// Sum over the shard of the per-example joint loss.
    pub loss: f64,
    /// Sum over the shard of the per-example reliability loss.
    pub loss1: f64,
    /// Sum over the shard of the per-example rating loss.
    pub loss2: f64,
}

impl GradShard {
    /// A zeroed shard shaped like `params`.
    pub fn new(params: &Params) -> Self {
        Self { grads: params.grad_store(), loss: 0.0, loss1: 0.0, loss2: 0.0 }
    }

    /// Resets the shard for reuse on the next minibatch (in place, no
    /// reallocation).
    pub fn reset(&mut self) {
        self.grads.zero();
        self.loss = 0.0;
        self.loss1 = 0.0;
        self.loss2 = 0.0;
    }

    /// Pairwise combine: gradients and loss partials of `other` are added
    /// onto `self`. The single reduction primitive [`tree_reduce`] is built
    /// from.
    pub fn merge(&mut self, other: &GradShard) {
        self.grads.add_assign(&other.grads);
        self.loss += other.loss;
        self.loss1 += other.loss1;
        self.loss2 += other.loss2;
    }
}

/// Fixed-order pairwise tree reduction: after the call, `shards[0]` holds
/// the combination of all shards, merged as `(0,1) (2,3) …`, then
/// `(0,2) (4,6) …`, and so on with doubling strides. The tree shape — and
/// therefore every float-addition order — depends only on `shards.len()`.
pub fn tree_reduce(shards: &mut [GradShard]) {
    let n = shards.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let (left, right) = shards.split_at_mut(i + stride);
            left[i].merge(&right[0]);
            i += 2 * stride;
        }
        stride *= 2;
    }
}

/// A published job: a borrowed `Fn(worker_index)` with its lifetime erased.
/// Sound because [`Pool::run`] does not return until every worker has
/// finished calling it (even when the caller's own slice of the job panics).
#[derive(Clone, Copy)]
struct ErasedJob(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `Pool::run` guarantees it outlives every use.
unsafe impl Send for ErasedJob {}

struct PoolState {
    job: Option<ErasedJob>,
    /// Bumped once per `run`; workers use it to detect fresh jobs.
    generation: u64,
    /// Workers still inside the current job.
    remaining: usize,
    /// Set when any worker's slice of the job panicked.
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a new job is published (or on shutdown).
    start: Condvar,
    /// Signalled when the last worker leaves a job.
    done: Condvar,
}

/// A persistent pool of training workers. `threads` counts the calling
/// thread: `Pool::new(1)` spawns nothing and [`Pool::run`] degenerates to a
/// plain call, so serial training goes through the identical code path.
pub struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Creates a pool of `threads.max(1)` workers (including the caller).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rrre-train-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("Pool: failed to spawn worker thread")
            })
            .collect();
        Self { shared, handles, threads }
    }

    /// Total worker count, calling thread included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(worker_index)` once on every worker — background workers get
    /// indices `1..threads`, the calling thread runs index `0` — and returns
    /// when all of them have finished.
    ///
    /// # Panics
    /// Re-raises after all workers have left the job if any worker's call
    /// (or the caller's own) panicked, so borrowed data is never freed while
    /// still in use.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            job(0);
            return;
        }
        // SAFETY (lifetime erasure): the pointer is cleared below before this
        // function returns, and we block until `remaining == 0`, so no worker
        // can observe the job after the borrow ends.
        let erased = ErasedJob(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(job)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.remaining, 0, "Pool::run re-entered while a job is active");
            st.job = Some(erased);
            st.generation += 1;
            st.remaining = self.handles.len();
            st.panicked = false;
            self.shared.start.notify_all();
        }

        // The caller is worker 0 — but even if its slice panics we must wait
        // for the background workers before unwinding frees the job.
        let caller = catch_unwind(AssertUnwindSafe(|| job(0)));

        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);

        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("Pool: a worker thread panicked during a parallel training job");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, idx: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break st.job.expect("Pool: generation advanced without a job");
                }
                st = shared.start.wait(st).unwrap();
            }
        };
        // SAFETY: `Pool::run` keeps the job alive until `remaining` hits 0,
        // which only happens after this call returns (or unwinds into the
        // catch below).
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let f: &(dyn Fn(usize) + Sync) = unsafe { &*job.0 };
            f(idx);
        }))
        .is_ok();
        let mut st = shared.state.lock().unwrap();
        if !ok {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_tensor::{GradSink, ParamId, Tensor};
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn test_params() -> (Params, ParamId) {
        let mut params = Params::new();
        let w = params.register("w", Tensor::zeros(1, 3));
        (params, w)
    }

    /// Shard `s`'s contents are a pure function of `s`, using magnitudes
    /// (±1e8 against O(1) values) where float addition order is observable.
    fn staged_shard(params: &Params, w: ParamId, s: usize) -> GradShard {
        let mut shard = GradShard::new(params);
        let v = match s % 3 {
            0 => 1.0e8,
            1 => -1.0e8,
            _ => 3.7,
        };
        shard.grads.accumulate_grad(
            w,
            &Tensor::from_vec(1, 3, vec![v, s as f32 + 0.1, 1.0 / (s as f32 + 1.0)]),
        );
        shard.loss = v as f64;
        shard
    }

    fn staged_shards(n: usize) -> (Params, ParamId, Vec<GradShard>) {
        let (params, w) = test_params();
        let shards = (0..n).map(|s| staged_shard(&params, w, s)).collect();
        (params, w, shards)
    }

    #[test]
    fn shard_layout_is_a_pure_function_of_chunk_length() {
        assert_eq!(shard_count(0), 0);
        assert_eq!(shard_count(1), 1);
        assert_eq!(shard_count(SHARD_GRAIN), 1);
        assert_eq!(shard_count(SHARD_GRAIN + 1), 2);
        assert_eq!(shard_count(64), 16);
        // The ranges tile [0, n) exactly, in order, for awkward lengths too.
        for n in [1usize, 3, 4, 5, 17, 64] {
            let mut covered = Vec::new();
            for s in 0..shard_count(n) {
                let r = shard_range(s, n);
                assert!(!r.is_empty(), "shard {s} of {n} is empty");
                covered.extend(r);
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "tiling of {n}");
        }
    }

    #[test]
    fn tree_reduce_order_is_fixed_under_permuted_completion_order() {
        // Reference: shards created and reduced on one thread, in index order.
        let (_, w, mut reference) = staged_shards(7);
        tree_reduce(&mut reference);
        let want_grad: Vec<u32> =
            reference[0].grads.grad(w).as_slice().iter().map(|v| v.to_bits()).collect();
        let want_loss = reference[0].loss.to_bits();

        // Adversarial runs: 7 workers each build one shard, but a condvar
        // turnstile forces them to *finish* in a permuted order — the shape a
        // naïve "reduce as workers complete" design would be sensitive to.
        for perm in [[3usize, 0, 6, 1, 5, 2, 4], [6, 5, 4, 3, 2, 1, 0], [0, 2, 4, 6, 1, 3, 5]] {
            let turnstile = Arc::new((Mutex::new(0usize), Condvar::new()));
            let gate = Arc::clone(&turnstile);
            let mut shards: Vec<GradShard> =
                rrre_testkit::sync::run_concurrently(7, move |shard_idx| {
                    let (params, w) = test_params();
                    let mine = staged_shard(&params, w, shard_idx);
                    // Completion turnstile: block until every worker with a
                    // lower rank in `perm` has already finished.
                    let my_rank = perm.iter().position(|&p| p == shard_idx).unwrap();
                    let (lock, cv) = &*gate;
                    let mut done = lock.lock().unwrap();
                    while *done != my_rank {
                        done = cv.wait(done).unwrap();
                    }
                    *done += 1;
                    cv.notify_all();
                    mine
                });
            // `run_concurrently` returns results in worker-index order, which
            // is shard-index order — completion order never leaks in.
            tree_reduce(&mut shards);
            let got: Vec<u32> =
                shards[0].grads.grad(w).as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want_grad, "gradient bits drifted under completion order {perm:?}");
            assert_eq!(shards[0].loss.to_bits(), want_loss, "loss bits drifted under {perm:?}");
        }
    }

    #[test]
    fn tree_reduce_differs_from_left_fold_on_cancellation_heavy_input() {
        // Sanity that the oracle has teeth: with catastrophic cancellation in
        // play, the pinned tree and a naïve left fold genuinely disagree —
        // so "bit-identical" elsewhere is a real constraint, not a tautology.
        let (params, w, mut tree) = staged_shards(7);
        let (_, _, fold_src) = staged_shards(7);
        tree_reduce(&mut tree);
        let mut fold = GradShard::new(&params);
        for s in &fold_src {
            fold.merge(s);
        }
        let tree_bits: Vec<u32> =
            tree[0].grads.grad(w).as_slice().iter().map(|v| v.to_bits()).collect();
        let fold_bits: Vec<u32> =
            fold.grads.grad(w).as_slice().iter().map(|v| v.to_bits()).collect();
        assert_ne!(
            tree_bits, fold_bits,
            "expected the pairwise tree and a left fold to disagree on cancellation-heavy input"
        );
    }

    #[test]
    fn pool_runs_job_on_every_worker_and_is_reusable() {
        let pool = Pool::new(4);
        assert_eq!(pool.threads(), 4);
        for _ in 0..3 {
            let seen = Mutex::new(BTreeSet::new());
            pool.run(&|w| {
                seen.lock().unwrap().insert(w);
            });
            assert_eq!(
                seen.into_inner().unwrap().into_iter().collect::<Vec<_>>(),
                vec![0, 1, 2, 3],
                "every worker index must run the job exactly once"
            );
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let count = AtomicUsize::new(0);
        let caller = std::thread::current().id();
        pool.run(&|w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), caller, "threads=1 must run on the caller");
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.run(&|_| {});
    }

    #[test]
    fn worker_panic_propagates_to_the_caller_and_pool_survives() {
        let pool = Pool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "a worker panic must surface in Pool::run");
        // The pool is still serviceable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }
}
