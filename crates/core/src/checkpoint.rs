//! Crash-safe training: periodic atomic checkpoints, bit-identical resume
//! and a NaN/Inf divergence guard.
//!
//! A checkpoint directory looks like:
//!
//! ```text
//! <dir>/latest.json        pointer to the newest complete checkpoint
//! <dir>/ckpt-<E>/          one checkpoint after E completed epochs
//!   manifest.json          epoch, RNG state, Adam step count, epoch order
//!   model.rrrp             model weights (RRRP)
//!   adam.rrrp              Adam first/second moments (RRRP)
//! ```
//!
//! Atomicity: each checkpoint is assembled in a `.stage-<E>` sibling and
//! `rename`d into place, and `latest.json` is written via tmp + `rename`
//! *after* the checkpoint directory exists. A crash at any instant leaves
//! either the previous complete checkpoint or the new one — never a torn
//! mix — so [`Rrre::resume`] always has a valid state to continue from.
//!
//! Bit-identical resume: the training loop's mutable state is exactly
//! (params, Adam `t`/`m`/`v`, the RNG, the epoch shuffle `order` — which is
//! permuted *in place* each epoch and therefore cannot be regenerated).
//! All four are persisted; [`Rrre::resume`] replays
//! [`Rrre::training_setup`] (same seed ⇒ same architecture + label mask),
//! overwrites that state from the checkpoint, and continues the epoch loop
//! on the identical trajectory — the golden-trace harness is the witness.

use crate::config::RrreConfig;
use crate::model::{EpochStats, Rrre};
use crate::parallel::Pool;
use rand::rngs::StdRng;
use rrre_data::{Dataset, EncodedCorpus};
use rrre_tensor::{optim::Adam, Params, Tensor};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Checkpoint manifest layout version.
pub const CKPT_VERSION: u32 = 1;

/// File names inside one `ckpt-<E>` directory.
pub const CKPT_MANIFEST_FILE: &str = "manifest.json";
/// See [`CKPT_MANIFEST_FILE`].
pub const CKPT_MODEL_FILE: &str = "model.rrrp";
/// See [`CKPT_MANIFEST_FILE`].
pub const CKPT_ADAM_FILE: &str = "adam.rrrp";
/// The newest-complete-checkpoint pointer at the top of the directory.
pub const CKPT_LATEST_FILE: &str = "latest.json";

/// Periodic-checkpointing knobs for [`Rrre::fit_checkpointed`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory the checkpoints live in (created if absent).
    pub dir: PathBuf,
    /// Checkpoint after every `every` completed epochs.
    pub every: usize,
    /// Retain at most this many complete checkpoints (oldest pruned).
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoint every epoch into `dir`, keeping the last two.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), every: 1, keep: 2 }
    }

    fn epoch_dir(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{epoch}"))
    }
}

/// What a checkpointed (or resumed) training run produced.
pub struct FitOutcome {
    /// The trained model — rolled back to the last good checkpoint if the
    /// run diverged.
    pub model: Rrre,
    /// Epochs whose updates the returned model reflects.
    pub completed_epochs: usize,
    /// The zero-based epoch whose update produced a non-finite loss or
    /// parameter, if any; the model was rolled back when this is set.
    pub diverged_at: Option<usize>,
    /// The completed-epoch count this run resumed from, for resumed runs.
    pub resumed_from: Option<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CkptManifest {
    version: u32,
    /// Completed epochs at capture time.
    epoch: usize,
    /// Adam step counter.
    adam_t: u64,
    /// Raw xoshiro256++ words, each split into (low, high) 32-bit halves —
    /// always 8 entries. JSON numbers ride through f64, which is exact only
    /// up to 2⁵³; full-range u64 words would silently lose low bits and
    /// resume onto a different shuffle trajectory.
    rng_state: Vec<u64>,
    /// The in-place-shuffled epoch order — training state that cannot be
    /// regenerated without replaying every prior epoch's permutation.
    order: Vec<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LatestPointer {
    epoch: usize,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Rrre {
    /// [`Rrre::fit_with_hook`] with periodic atomic checkpoints and a
    /// divergence guard. The per-epoch statistics and the final weights are
    /// bit-identical to an uncheckpointed run; checkpoint writes consume no
    /// randomness.
    ///
    /// After any epoch whose mean loss is non-finite or that left a NaN/Inf
    /// in the parameters, the model is rolled back to the last complete
    /// checkpoint and the run stops with [`FitOutcome::diverged_at`] set
    /// (an error if the run diverged before the first checkpoint).
    pub fn fit_checkpointed(
        ds: &Dataset,
        corpus: &EncodedCorpus,
        train: &[usize],
        cfg: RrreConfig,
        ckpt: &CheckpointConfig,
        hook: impl FnMut(EpochStats, &Rrre),
    ) -> io::Result<FitOutcome> {
        run_checkpointed(ds, corpus, train, cfg, ckpt, None, hook)
    }

    /// Continues a [`Rrre::fit_checkpointed`] run from the newest complete
    /// checkpoint in `ckpt.dir`, up to `cfg.epochs` total epochs. `ds`,
    /// `corpus`, `train` and the architectural parts of `cfg` must match
    /// the original run (shape mismatches fail with `InvalidData`).
    pub fn resume(
        ds: &Dataset,
        corpus: &EncodedCorpus,
        train: &[usize],
        cfg: RrreConfig,
        ckpt: &CheckpointConfig,
        hook: impl FnMut(EpochStats, &Rrre),
    ) -> io::Result<FitOutcome> {
        let latest = read_latest(&ckpt.dir)?;
        run_checkpointed(ds, corpus, train, cfg, ckpt, Some(latest), hook)
    }
}

fn run_checkpointed(
    ds: &Dataset,
    corpus: &EncodedCorpus,
    train: &[usize],
    cfg: RrreConfig,
    ckpt: &CheckpointConfig,
    resume_from: Option<usize>,
    mut hook: impl FnMut(EpochStats, &Rrre),
) -> io::Result<FitOutcome> {
    assert!(ckpt.every >= 1, "CheckpointConfig: `every` must be ≥ 1");
    assert!(ckpt.keep >= 1, "CheckpointConfig: `keep` must be ≥ 1");
    std::fs::create_dir_all(&ckpt.dir)?;

    let (mut model, mut rng, labeled) = Rrre::training_setup(ds, corpus, train, cfg);
    let mut opt = Adam::new(cfg.lr);
    // Thread count is *not* checkpoint state: training is bit-identical at
    // every `threads`, so a run may legally resume with a different count.
    let pool = Pool::new(cfg.threads);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut start_epoch = 0;
    if let Some(epoch) = resume_from {
        if epoch > cfg.epochs {
            return Err(invalid(format!(
                "checkpoint has {epoch} completed epochs but the run targets only {}",
                cfg.epochs
            )));
        }
        restore_state(&ckpt.epoch_dir(epoch), corpus, &mut model, &mut opt, &mut rng, &mut order)?;
        start_epoch = epoch;
    }

    let mut last_good = resume_from;
    for epoch in start_epoch..cfg.epochs {
        let stats =
            model.train_epoch(ds, corpus, train, &labeled, &mut order, &mut rng, &mut opt, epoch, &pool);
        if !stats.loss.is_finite() || model.params().has_non_finite() {
            // Divergence guard: do not checkpoint the poisoned state, do
            // not keep training on it — restore the last good weights.
            let Some(good) = last_good else {
                return Err(invalid(format!(
                    "training diverged at epoch {epoch} before any checkpoint existed"
                )));
            };
            model.load_weights(ckpt.epoch_dir(good).join(CKPT_MODEL_FILE), corpus)?;
            // The diverged epoch's non-finite gradients are still in the
            // store; weights were restored, so clear them too.
            model.params_mut().zero_grads();
            return Ok(FitOutcome {
                model,
                completed_epochs: good,
                diverged_at: Some(epoch),
                resumed_from: resume_from,
            });
        }
        let completed = epoch + 1;
        if completed % ckpt.every == 0 || completed == cfg.epochs {
            write_checkpoint(ckpt, completed, &model, &opt, &rng, &order)?;
            prune(ckpt)?;
            last_good = Some(completed);
        }
        hook(stats, &model);
    }
    Ok(FitOutcome {
        model,
        completed_epochs: cfg.epochs,
        diverged_at: None,
        resumed_from: resume_from,
    })
}

/// Stages a complete checkpoint and renames it into place; the `latest`
/// pointer flips (also via rename) only after the directory is complete.
fn write_checkpoint(
    ckpt: &CheckpointConfig,
    epoch: usize,
    model: &Rrre,
    opt: &Adam,
    rng: &StdRng,
    order: &[usize],
) -> io::Result<()> {
    let stage = ckpt.dir.join(format!(".stage-{epoch}"));
    let _ = std::fs::remove_dir_all(&stage);
    std::fs::create_dir_all(&stage)?;

    model.save_weights(stage.join(CKPT_MODEL_FILE))?;

    let (t, m, v) = opt.state();
    let mut adam = Params::new();
    for (i, tensor) in m.iter().enumerate() {
        adam.register(format!("adam.m.{i}"), tensor.clone());
    }
    for (i, tensor) in v.iter().enumerate() {
        adam.register(format!("adam.v.{i}"), tensor.clone());
    }
    adam.save(stage.join(CKPT_ADAM_FILE))?;

    let manifest = CkptManifest {
        version: CKPT_VERSION,
        epoch,
        adam_t: t,
        rng_state: rng
            .state()
            .iter()
            .flat_map(|&w| [w & 0xFFFF_FFFF, w >> 32])
            .collect(),
        order: order.to_vec(),
    };
    let json = serde_json::to_string(&manifest).map_err(io::Error::other)?;
    std::fs::write(stage.join(CKPT_MANIFEST_FILE), json)?;

    let final_dir = ckpt.epoch_dir(epoch);
    let _ = std::fs::remove_dir_all(&final_dir);
    std::fs::rename(&stage, &final_dir)?;

    let tmp = ckpt.dir.join(".latest.json.tmp");
    let json = serde_json::to_string(&LatestPointer { epoch }).map_err(io::Error::other)?;
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, ckpt.dir.join(CKPT_LATEST_FILE))?;
    Ok(())
}

fn read_latest(dir: &Path) -> io::Result<usize> {
    let json = std::fs::read_to_string(dir.join(CKPT_LATEST_FILE)).map_err(|e| {
        io::Error::new(e.kind(), format!("no resumable checkpoint in {}: {e}", dir.display()))
    })?;
    let latest: LatestPointer =
        serde_json::from_str(&json).map_err(|e| invalid(format!("bad latest.json: {e}")))?;
    Ok(latest.epoch)
}

/// Restores params, Adam moments, RNG and epoch order from one checkpoint
/// directory, validating every count and shape against the live model.
fn restore_state(
    dir: &Path,
    corpus: &EncodedCorpus,
    model: &mut Rrre,
    opt: &mut Adam,
    rng: &mut StdRng,
    order: &mut Vec<usize>,
) -> io::Result<()> {
    let json = std::fs::read_to_string(dir.join(CKPT_MANIFEST_FILE))?;
    let manifest: CkptManifest =
        serde_json::from_str(&json).map_err(|e| invalid(format!("bad checkpoint manifest: {e}")))?;
    if manifest.version != CKPT_VERSION {
        return Err(invalid(format!(
            "unsupported checkpoint version {} (this build reads {CKPT_VERSION})",
            manifest.version
        )));
    }
    if manifest.rng_state.len() != 8 {
        return Err(invalid(format!(
            "rng_state has {} half-words, expected 8",
            manifest.rng_state.len()
        )));
    }
    if manifest.rng_state.iter().any(|&h| h > u32::MAX as u64) {
        return Err(invalid("rng_state half-word out of 32-bit range"));
    }
    let mut words = [0u64; 4];
    for (i, pair) in manifest.rng_state.chunks_exact(2).enumerate() {
        words[i] = pair[0] | (pair[1] << 32);
    }
    if words.iter().all(|&w| w == 0) {
        return Err(invalid("rng_state is all zeros"));
    }
    if manifest.order.len() != order.len() {
        return Err(invalid(format!(
            "checkpoint order covers {} training reviews, run has {}",
            manifest.order.len(),
            order.len()
        )));
    }
    if manifest.order.iter().any(|&i| i >= order.len()) {
        return Err(invalid("checkpoint order indexes past the training set"));
    }

    model.load_weights(dir.join(CKPT_MODEL_FILE), corpus)?;

    let adam = Params::load(dir.join(CKPT_ADAM_FILE))?;
    let n = model.params().len();
    if adam.len() != 2 * n {
        return Err(invalid(format!(
            "Adam state has {} tensors, expected {} (2 per parameter)",
            adam.len(),
            2 * n
        )));
    }
    let mut moments: Vec<Tensor> = Vec::with_capacity(2 * n);
    for (i, (id, name, value)) in adam.iter().enumerate() {
        let expect = if i < n { format!("adam.m.{i}") } else { format!("adam.v.{}", i - n) };
        if name != expect {
            return Err(invalid(format!("Adam tensor {} is named `{name}`, expected `{expect}`", id.index())));
        }
        let param_shape = model
            .params()
            .iter()
            .nth(i % n)
            .map(|(_, _, p)| p.shape())
            .unwrap_or((0, 0));
        if value.shape() != param_shape {
            return Err(invalid(format!(
                "Adam moment `{name}` is {:?} but the parameter is {param_shape:?}",
                value.shape()
            )));
        }
        moments.push(value.clone());
    }
    let v = moments.split_off(n);
    opt.restore(manifest.adam_t, moments, v).map_err(invalid)?;

    *rng = StdRng::from_state(words);
    order.copy_from_slice(&manifest.order);
    Ok(())
}

/// Removes all but the newest `keep` complete checkpoints (and any stale
/// staging directories from interrupted writes).
fn prune(ckpt: &CheckpointConfig) -> io::Result<()> {
    let mut epochs: Vec<usize> = Vec::new();
    for entry in std::fs::read_dir(&ckpt.dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix("ckpt-") {
            if let Ok(epoch) = rest.parse::<usize>() {
                epochs.push(epoch);
            }
        } else if name.starts_with(".stage-") {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }
    epochs.sort_unstable();
    let cut = epochs.len().saturating_sub(ckpt.keep);
    for &epoch in &epochs[..cut] {
        let _ = std::fs::remove_dir_all(ckpt.epoch_dir(epoch));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::CorpusConfig;
    use rrre_text::word2vec::Word2VecConfig;

    fn tiny() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.03));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 10,
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rrre-ckpt-tests").join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn params_bits(model: &Rrre) -> Vec<u32> {
        model
            .params()
            .iter()
            .flat_map(|(_, _, t)| t.as_slice().iter().map(|x| x.to_bits()))
            .collect()
    }

    #[test]
    fn checkpointed_fit_matches_plain_fit_exactly() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 3, ..RrreConfig::tiny() };

        let mut plain_trace = Vec::new();
        let plain = Rrre::fit_with_hook(&ds, &corpus, &train, cfg, |s, _| plain_trace.push(s));

        let dir = scratch("plain-parity");
        let ckpt = CheckpointConfig::new(&dir);
        let mut traced = Vec::new();
        let out = Rrre::fit_checkpointed(&ds, &corpus, &train, cfg, &ckpt, |s, _| traced.push(s)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(out.completed_epochs, 3);
        assert!(out.diverged_at.is_none());
        assert_eq!(plain_trace.len(), traced.len());
        for (a, b) in plain_trace.iter().zip(&traced) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {} loss diverged", a.epoch);
            assert_eq!(a.loss1.to_bits(), b.loss1.to_bits());
            assert_eq!(a.loss2.to_bits(), b.loss2.to_bits());
        }
        assert_eq!(params_bits(&plain), params_bits(&out.model));
    }

    #[test]
    fn resume_continues_bit_identically() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let full_cfg = RrreConfig { epochs: 4, ..RrreConfig::tiny() };

        let mut full_trace = Vec::new();
        let full = Rrre::fit_with_hook(&ds, &corpus, &train, full_cfg, |s, _| full_trace.push(s));

        // Interrupted run: stop after 2 epochs (the checkpoint survives),
        // then resume to the full 4.
        let dir = scratch("resume");
        let ckpt = CheckpointConfig::new(&dir);
        let cut_cfg = RrreConfig { epochs: 2, ..full_cfg };
        Rrre::fit_checkpointed(&ds, &corpus, &train, cut_cfg, &ckpt, |_, _| {}).unwrap();

        let mut tail = Vec::new();
        let resumed = Rrre::resume(&ds, &corpus, &train, full_cfg, &ckpt, |s, _| tail.push(s)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(resumed.resumed_from, Some(2));
        assert_eq!(resumed.completed_epochs, 4);
        assert_eq!(tail.len(), 2, "resume must run exactly the remaining epochs");
        for (a, b) in full_trace[2..].iter().zip(&tail) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {} loss diverged after resume", a.epoch);
        }
        assert_eq!(params_bits(&full), params_bits(&resumed.model), "resumed weights diverged");
    }

    #[test]
    fn divergence_rolls_back_to_last_good_checkpoint() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };

        let dir = scratch("nan-guard");
        let ckpt = CheckpointConfig::new(&dir);
        let good = Rrre::fit_checkpointed(&ds, &corpus, &train, cfg, &ckpt, |_, _| {}).unwrap();
        let good_bits = params_bits(&good.model);

        // Resume with an absurd learning rate: the next epoch blows up, the
        // guard trips, and the model rolls back to the epoch-2 checkpoint.
        let hot_cfg = RrreConfig { epochs: 4, lr: 1e30, ..cfg };
        let out = Rrre::resume(&ds, &corpus, &train, hot_cfg, &ckpt, |_, _| {}).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(out.diverged_at, Some(2), "epoch 2 (0-based) must trip the guard");
        assert_eq!(out.completed_epochs, 2);
        assert!(!out.model.params().has_non_finite(), "rolled-back model must be clean");
        assert_eq!(params_bits(&out.model), good_bits, "rollback must restore the checkpoint exactly");
    }

    #[test]
    fn prune_keeps_only_the_newest_checkpoints() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 4, ..RrreConfig::tiny() };
        let dir = scratch("prune");
        let ckpt = CheckpointConfig { dir: dir.clone(), every: 1, keep: 2 };
        Rrre::fit_checkpointed(&ds, &corpus, &train, cfg, &ckpt, |_, _| {}).unwrap();

        assert!(!dir.join("ckpt-1").exists());
        assert!(!dir.join("ckpt-2").exists());
        assert!(dir.join("ckpt-3").exists());
        assert!(dir.join("ckpt-4").exists());
        assert_eq!(read_latest(&dir).unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_checkpoints_is_a_clean_error() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
        let dir = scratch("no-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let err = Rrre::resume(&ds, &corpus, &train, cfg, &CheckpointConfig::new(&dir), |_, _| {})
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("no resumable checkpoint"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_file_fails_closed() {
        let (ds, corpus) = tiny();
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 1, ..RrreConfig::tiny() };
        let dir = scratch("torn");
        let ckpt = CheckpointConfig::new(&dir);
        Rrre::fit_checkpointed(&ds, &corpus, &train, cfg, &ckpt, |_, _| {}).unwrap();

        let model_file = dir.join("ckpt-1").join(CKPT_MODEL_FILE);
        let bytes = std::fs::read(&model_file).unwrap();
        std::fs::write(&model_file, &bytes[..bytes.len() / 2]).unwrap();
        let err =
            Rrre::resume(&ds, &corpus, &train, cfg, &ckpt, |_, _| {}).map(|_| ()).unwrap_err();
        let _ = std::fs::remove_dir_all(&dir);
        // A torn weights file must surface as an I/O / InvalidData error,
        // never a half-restored model.
        assert!(matches!(
            err.kind(),
            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
        ));
    }
}
