//! System-level recommendation diagnostics: catalog coverage, reliability
//! uplift, and the fake-explanation exposure rate — the operational numbers
//! a deployment of §III-B's pipeline would monitor.

use crate::model::Rrre;
use crate::recommend::{explain, recommend};
use rrre_data::{Dataset, EncodedCorpus, UserId};
use std::collections::HashSet;

/// Aggregate diagnostics of the recommendation + explanation pipeline over
/// a set of users.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Users evaluated.
    pub n_users: usize,
    /// Fraction of the catalog that appears in at least one user's top-k.
    pub catalog_coverage: f64,
    /// Mean predicted reliability of the top-ranked recommendation.
    pub mean_top_reliability: f64,
    /// Fraction of surfaced (unfiltered) explanation reviews whose ground
    /// truth is fake — the failure mode the paper's pipeline exists to
    /// prevent; lower is better.
    pub fake_explanation_rate: f64,
    /// Fraction of *filtered* explanation candidates that were actually
    /// fake (filter precision); higher is better, `None` if nothing was
    /// filtered.
    pub filter_precision: Option<f64>,
}

/// Runs the full §III-B pipeline for `users` and aggregates diagnostics.
/// `k` is the candidate-set size for both recommendation and explanation.
///
/// # Panics
/// Panics if `users` is empty or `k == 0`.
pub fn pipeline_report(
    model: &Rrre,
    ds: &Dataset,
    corpus: &EncodedCorpus,
    users: &[UserId],
    k: usize,
) -> PipelineReport {
    assert!(!users.is_empty(), "pipeline_report: no users");
    assert!(k > 0, "pipeline_report: k must be positive");
    let mut recommended_items: HashSet<u32> = HashSet::new();
    let mut top_reliability_sum = 0.0f64;
    let (mut shown, mut shown_fake) = (0usize, 0usize);
    let (mut filtered, mut filtered_fake) = (0usize, 0usize);

    for &user in users {
        let recs = recommend(model, ds, corpus, user, k);
        if let Some(top) = recs.first() {
            top_reliability_sum += top.reliability as f64;
            for e in explain(model, ds, corpus, top.item, k) {
                let actually_fake = !ds.reviews[e.review_idx].label.is_benign();
                if e.filtered {
                    filtered += 1;
                    if actually_fake {
                        filtered_fake += 1;
                    }
                } else {
                    shown += 1;
                    if actually_fake {
                        shown_fake += 1;
                    }
                }
            }
        }
        for r in &recs {
            recommended_items.insert(r.item.0);
        }
    }

    PipelineReport {
        n_users: users.len(),
        catalog_coverage: recommended_items.len() as f64 / ds.n_items.max(1) as f64,
        mean_top_reliability: top_reliability_sum / users.len() as f64,
        fake_explanation_rate: if shown == 0 { 0.0 } else { shown_fake as f64 / shown as f64 },
        filter_precision: if filtered == 0 {
            None
        } else {
            Some(filtered_fake as f64 / filtered as f64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RrreConfig;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::CorpusConfig;
    use rrre_text::word2vec::Word2VecConfig;

    #[test]
    fn report_fields_are_sane() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 12,
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let train: Vec<usize> = (0..ds.len()).collect();
        let model = Rrre::fit(&ds, &corpus, &train, RrreConfig { epochs: 3, ..RrreConfig::tiny() });
        let users: Vec<UserId> = (0..10.min(ds.n_users)).map(|u| UserId(u as u32)).collect();
        let report = pipeline_report(&model, &ds, &corpus, &users, 2);
        assert_eq!(report.n_users, users.len());
        assert!((0.0..=1.0).contains(&report.catalog_coverage));
        assert!(report.catalog_coverage > 0.0);
        assert!((0.0..=1.0).contains(&report.mean_top_reliability));
        assert!((0.0..=1.0).contains(&report.fake_explanation_rate));
        if let Some(p) = report.filter_precision {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
