//! Recommendation and reliable-explanation generation (paper §III-B and the
//! §IV-F case study).
//!
//! For a user: score every item, keep the top-𝒦 by predicted rating as the
//! candidate set, then re-rank the candidates by predicted reliability.
//! For a recommended item: score the reviews written to it, keep the top-𝒦
//! by rating, re-rank by reliability, and surface the texts — filtering
//! low-reliability reviews exactly as Table VIII's case study does.

use crate::model::{Prediction, Rrre};
use rrre_data::{Dataset, EncodedCorpus, ItemId, UserId};

/// One recommended item with its scores.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Recommended item.
    pub item: ItemId,
    /// Display name of the item.
    pub item_name: String,
    /// Predicted rating `r̂`.
    pub rating: f32,
    /// Predicted reliability `l̂`.
    pub reliability: f32,
}

/// One explanation review for a recommended item.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Index of the review in `dataset.reviews`.
    pub review_idx: usize,
    /// Authoring user.
    pub user: UserId,
    /// Display name of the author.
    pub user_name: String,
    /// Review text shown to the customer.
    pub text: String,
    /// Predicted rating of the pair.
    pub rating: f32,
    /// Predicted reliability of the review.
    pub reliability: f32,
    /// Whether the pipeline would filter this review out for low
    /// reliability (kept in the output for the case-study table).
    pub filtered: bool,
}

/// Reliability threshold below which an explanation is filtered (the case
/// study filters a 0.405-reliability review; 0.5 is the natural benign/fake
/// decision boundary).
pub const EXPLANATION_RELIABILITY_THRESHOLD: f32 = 0.5;

/// The paper's two-stage ranking (§III-B), shared by [`recommend`],
/// [`explain`] and the serving engine: keep the top-`k` entries by predicted
/// rating as the candidate set, then order the candidates by predicted
/// reliability. Ties break on the entity key ascending so rankings are
/// deterministic across runs and processes.
pub fn rank_candidates<T: Ord + Copy>(scored: &mut Vec<(T, Prediction)>, k: usize) {
    scored.sort_by(|a, b| b.1.rating.total_cmp(&a.1.rating).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored.sort_by(|a, b| b.1.reliability.total_cmp(&a.1.reliability).then(a.0.cmp(&b.0)));
}

/// Generates the top-𝒦 recommendations for `user`: candidates by rating,
/// final order by reliability (§III-B).
pub fn recommend(model: &Rrre, ds: &Dataset, corpus: &EncodedCorpus, user: UserId, k: usize) -> Vec<Recommendation> {
    let mut scored: Vec<(ItemId, Prediction)> = (0..ds.n_items)
        .map(|i| {
            let item = ItemId(i as u32);
            (item, model.predict(corpus, user, item))
        })
        .collect();
    rank_candidates(&mut scored, k);
    scored
        .into_iter()
        .map(|(item, p)| Recommendation {
            item,
            item_name: ds.item_name(item),
            rating: p.rating,
            reliability: p.reliability,
        })
        .collect()
}

/// Generates up to `k` reliable explanation reviews for `item` (§III-B):
/// top-`k` of the item's reviews by predicted rating, re-ranked by
/// reliability, with sub-threshold reviews marked `filtered`.
pub fn explain(model: &Rrre, ds: &Dataset, corpus: &EncodedCorpus, item: ItemId, k: usize) -> Vec<Explanation> {
    let index = ds.index();
    let mut scored: Vec<(usize, Prediction)> = index
        .item_reviews(item)
        .iter()
        .map(|&ri| {
            let r = &ds.reviews[ri];
            (ri, model.predict(corpus, r.user, r.item))
        })
        .collect();
    rank_candidates(&mut scored, k);
    scored
        .into_iter()
        .map(|(ri, p)| {
            let r = &ds.reviews[ri];
            Explanation {
                review_idx: ri,
                user: r.user,
                user_name: ds.user_name(r.user),
                text: r.text.clone(),
                rating: p.rating,
                reliability: p.reliability,
                filtered: p.reliability < EXPLANATION_RELIABILITY_THRESHOLD,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RrreConfig;
    use rrre_data::synth::{generate, SynthConfig};
    use rrre_data::CorpusConfig;
    use rrre_text::word2vec::Word2VecConfig;

    fn trained() -> (Dataset, EncodedCorpus, Rrre) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                max_len: 14,
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let train: Vec<usize> = (0..ds.len()).collect();
        let cfg = RrreConfig { epochs: 3, ..RrreConfig::tiny() };
        let model = Rrre::fit(&ds, &corpus, &train, cfg);
        (ds, corpus, model)
    }

    #[test]
    fn recommendations_are_reliability_ordered_rating_candidates() {
        let (ds, corpus, model) = trained();
        let recs = recommend(&model, &ds, &corpus, UserId(0), 3);
        assert_eq!(recs.len(), 3.min(ds.n_items));
        for w in recs.windows(2) {
            assert!(w[0].reliability >= w[1].reliability);
        }
        // Every candidate's rating is at least as high as any non-candidate.
        let min_cand = recs.iter().map(|r| r.rating).fold(f32::INFINITY, f32::min);
        let mut all: Vec<f32> = (0..ds.n_items)
            .map(|i| model.predict(&corpus, UserId(0), ItemId(i as u32)).rating)
            .collect();
        all.sort_by(|a, b| b.total_cmp(a));
        let kth = all[recs.len() - 1];
        assert!(min_cand >= kth - 1e-5);
    }

    #[test]
    fn explanations_come_from_item_reviews_and_flag_low_reliability() {
        let (ds, corpus, model) = trained();
        let item = ItemId(0);
        let ex = explain(&model, &ds, &corpus, item, 2);
        assert!(!ex.is_empty());
        let index = ds.index();
        for e in &ex {
            assert!(index.item_reviews(item).contains(&e.review_idx));
            assert_eq!(e.filtered, e.reliability < EXPLANATION_RELIABILITY_THRESHOLD);
            assert!(!e.text.is_empty());
        }
    }

    #[test]
    fn k_larger_than_population_is_safe() {
        let (ds, corpus, model) = trained();
        let recs = recommend(&model, &ds, &corpus, UserId(1), ds.n_items + 10);
        assert_eq!(recs.len(), ds.n_items);
    }
}
