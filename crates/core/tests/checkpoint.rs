//! Checkpoint lifecycle: `Rrre::from_checkpoint` must rebuild a trained
//! model bit-for-bit without re-running `fit`, and malformed checkpoint
//! files must fail loudly with `InvalidData` rather than yielding a model
//! with silently wrong weights.

use rrre_core::{Rrre, RrreConfig};
use rrre_data::{ItemId, UserId};
use rrre_testkit::{trained_fixture_with, Fixture, FixtureSpec, TempDir};
use std::io::ErrorKind;

/// A trained small fixture plus a scratch dir holding its saved weights.
fn saved(tag: &str, epochs: usize) -> (Fixture, TempDir, std::path::PathBuf) {
    let fx = trained_fixture_with(FixtureSpec::small().with_epochs(epochs));
    let dir = TempDir::new(&format!("checkpoint-{tag}"));
    let path = dir.file("weights.rrrp");
    fx.model.save_weights(&path).unwrap();
    (fx, dir, path)
}

#[test]
fn from_checkpoint_is_bit_identical_without_fit() {
    let (fx, _dir, path) = saved("roundtrip", 2);
    let restored = Rrre::from_checkpoint(&fx.dataset, &fx.corpus, fx.spec.rrre_config(), &path).unwrap();

    assert!(restored.has_frozen_cache(), "frozen-mode model must be inference-ready on load");
    assert_eq!(restored.mean_rating(), fx.model.mean_rating());
    // Every user×item pair — not a sample — must agree exactly: the serving
    // engine relies on checkpoint restoration being a pure weight copy.
    for u in 0..fx.dataset.n_users {
        for i in 0..fx.dataset.n_items {
            let (user, item) = (UserId(u as u32), ItemId(i as u32));
            let a = fx.model.predict(&fx.corpus, user, item);
            let b = restored.predict(&fx.corpus, user, item);
            assert_eq!(a, b, "prediction diverged for pair ({u}, {i})");
        }
    }
}

#[test]
fn decomposed_inference_matches_predict() {
    let fx = trained_fixture_with(FixtureSpec::small());
    for r in fx.dataset.reviews.iter().take(20) {
        let x_u = fx.model.infer_user_tower(r.user, r.item);
        let y_i = fx.model.infer_item_tower(r.user, r.item);
        let via_parts = fx.model.infer_heads(r.user, r.item, &x_u, &y_i);
        let direct = fx.model.predict(&fx.corpus, r.user, r.item);
        assert_eq!(via_parts, direct);
    }
}

#[test]
fn corrupted_magic_is_rejected() {
    let (fx, _dir, path) = saved("corrupt-magic", 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[..4].copy_from_slice(b"XXXX");
    std::fs::write(&path, &bytes).unwrap();

    let err = Rrre::from_checkpoint(&fx.dataset, &fx.corpus, fx.spec.rrre_config(), &path)
        .err()
        .expect("corrupted magic must not load");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("RRRP"), "unexpected error: {err}");
}

#[test]
fn truncated_checkpoint_is_rejected() {
    let (fx, _dir, path) = saved("truncated", 1);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let err = Rrre::from_checkpoint(&fx.dataset, &fx.corpus, fx.spec.rrre_config(), &path)
        .err()
        .expect("truncated checkpoint must not load");
    // Truncation surfaces as UnexpectedEof from the reader; either way it
    // must be an error, never a silently short model.
    assert!(
        matches!(err.kind(), ErrorKind::UnexpectedEof | ErrorKind::InvalidData),
        "unexpected error kind {:?}",
        err.kind()
    );
}

#[test]
fn wrong_architecture_is_rejected() {
    let (fx, _dir, path) = saved("wrong-shape", 1);
    // Same dataset, different tower width: parameter shapes disagree.
    let cfg = fx.spec.rrre_config();
    let wrong = RrreConfig { id_dim: cfg.id_dim * 2, ..cfg };
    let err = Rrre::from_checkpoint(&fx.dataset, &fx.corpus, wrong, &path)
        .err()
        .expect("shape mismatch must not load");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("mismatch"), "unexpected error: {err}");
}

#[test]
fn missing_file_is_not_found() {
    let spec = FixtureSpec::micro();
    let (ds, corpus) = spec.corpus();
    let dir = TempDir::new("checkpoint-missing");
    let err = Rrre::from_checkpoint(&ds, &corpus, spec.rrre_config(), dir.file("does-not-exist.rrrp"))
        .err()
        .expect("missing file must not load");
    assert_eq!(err.kind(), ErrorKind::NotFound);
}
