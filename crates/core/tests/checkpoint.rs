//! Checkpoint lifecycle: `Rrre::from_checkpoint` must rebuild a trained
//! model bit-for-bit without re-running `fit`, and malformed checkpoint
//! files must fail loudly with `InvalidData` rather than yielding a model
//! with silently wrong weights.

use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::{generate, SynthConfig};
use rrre_data::{CorpusConfig, Dataset, EncodedCorpus, ItemId, UserId};
use rrre_text::word2vec::Word2VecConfig;
use std::io::ErrorKind;
use std::path::PathBuf;

fn tiny() -> (Dataset, EncodedCorpus) {
    let ds = generate(&SynthConfig::yelp_chi().scaled(0.04));
    let corpus = EncodedCorpus::build(
        &ds,
        &CorpusConfig {
            max_len: 12,
            word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
            ..Default::default()
        },
    );
    (ds, corpus)
}

fn trained(ds: &Dataset, corpus: &EncodedCorpus, cfg: RrreConfig) -> Rrre {
    let train: Vec<usize> = (0..ds.len()).collect();
    Rrre::fit(ds, corpus, &train, cfg)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rrre-checkpoint-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.rrrp", std::process::id()))
}

#[test]
fn from_checkpoint_is_bit_identical_without_fit() {
    let (ds, corpus) = tiny();
    let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
    let model = trained(&ds, &corpus, cfg);
    let path = temp_path("roundtrip");
    model.save_weights(&path).unwrap();

    let restored = Rrre::from_checkpoint(&ds, &corpus, cfg, &path).unwrap();
    std::fs::remove_file(&path).ok();

    assert!(restored.has_frozen_cache(), "frozen-mode model must be inference-ready on load");
    assert_eq!(restored.mean_rating(), model.mean_rating());
    // Every user×item pair — not a sample — must agree exactly: the serving
    // engine relies on checkpoint restoration being a pure weight copy.
    for u in 0..ds.n_users {
        for i in 0..ds.n_items {
            let (user, item) = (UserId(u as u32), ItemId(i as u32));
            let a = model.predict(&corpus, user, item);
            let b = restored.predict(&corpus, user, item);
            assert_eq!(a, b, "prediction diverged for pair ({u}, {i})");
        }
    }
}

#[test]
fn decomposed_inference_matches_predict() {
    let (ds, corpus) = tiny();
    let cfg = RrreConfig { epochs: 2, ..RrreConfig::tiny() };
    let model = trained(&ds, &corpus, cfg);
    for r in ds.reviews.iter().take(20) {
        let x_u = model.infer_user_tower(r.user, r.item);
        let y_i = model.infer_item_tower(r.user, r.item);
        let via_parts = model.infer_heads(r.user, r.item, &x_u, &y_i);
        let direct = model.predict(&corpus, r.user, r.item);
        assert_eq!(via_parts, direct);
    }
}

#[test]
fn corrupted_magic_is_rejected() {
    let (ds, corpus) = tiny();
    let cfg = RrreConfig { epochs: 1, ..RrreConfig::tiny() };
    let model = trained(&ds, &corpus, cfg);
    let path = temp_path("corrupt-magic");
    model.save_weights(&path).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[..4].copy_from_slice(b"XXXX");
    std::fs::write(&path, &bytes).unwrap();

    let err = Rrre::from_checkpoint(&ds, &corpus, cfg, &path).err().expect("corrupted magic must not load");
    std::fs::remove_file(&path).ok();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("RRRP"), "unexpected error: {err}");
}

#[test]
fn truncated_checkpoint_is_rejected() {
    let (ds, corpus) = tiny();
    let cfg = RrreConfig { epochs: 1, ..RrreConfig::tiny() };
    let model = trained(&ds, &corpus, cfg);
    let path = temp_path("truncated");
    model.save_weights(&path).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let err = Rrre::from_checkpoint(&ds, &corpus, cfg, &path).err().expect("truncated checkpoint must not load");
    std::fs::remove_file(&path).ok();
    // Truncation surfaces as UnexpectedEof from the reader; either way it
    // must be an error, never a silently short model.
    assert!(
        matches!(err.kind(), ErrorKind::UnexpectedEof | ErrorKind::InvalidData),
        "unexpected error kind {:?}",
        err.kind()
    );
}

#[test]
fn wrong_architecture_is_rejected() {
    let (ds, corpus) = tiny();
    let cfg = RrreConfig { epochs: 1, ..RrreConfig::tiny() };
    let model = trained(&ds, &corpus, cfg);
    let path = temp_path("wrong-shape");
    model.save_weights(&path).unwrap();

    // Same dataset, different tower width: parameter shapes disagree.
    let wrong = RrreConfig { id_dim: cfg.id_dim * 2, ..cfg };
    let err = Rrre::from_checkpoint(&ds, &corpus, wrong, &path).err().expect("shape mismatch must not load");
    std::fs::remove_file(&path).ok();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("mismatch"), "unexpected error: {err}");
}

#[test]
fn missing_file_is_not_found() {
    let (ds, corpus) = tiny();
    let cfg = RrreConfig::tiny();
    let err = Rrre::from_checkpoint(&ds, &corpus, cfg, temp_path("does-not-exist-ever"))
        .err()
        .expect("missing file must not load");
    assert_eq!(err.kind(), ErrorKind::NotFound);
}
