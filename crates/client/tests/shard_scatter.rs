//! Scatter-gather correctness drills over in-process sharded fleets.
//!
//! The contract under test, from strongest to weakest guarantee:
//!
//! 1. **Parity oracle** — a 3-shard deployment answers Predict, Recommend
//!    and Explain *bit-identically* to a single whole-model engine over the
//!    same artifact, across three master seeds. Sharding is a deployment
//!    detail, never a model change.
//! 2. **Degraded answers** — with one shard entirely down, ranking answers
//!    still come back `ok`, flagged `degraded` with the missing shard id,
//!    and every row they do contain carries the exact whole-model score.
//! 3. **Deadline splitting** — a black-holed shard consumes only the
//!    scatter's shared budget, not `shards × timeout`, and retry attempts
//!    advertise a shrinking `deadline_ms` to the server.

use rrre_client::{Client, ClientConfig, ShardedClient};
use rrre_testkit::{trained_fixture_with, FixtureSpec, ShardedDeployment};
use rrre_wire::{Request, Response};
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn quiet_cfg() -> ClientConfig {
    ClientConfig {
        probe_interval: None, // no background probes: deterministic attempt counts
        request_timeout: Duration::from_millis(2_000),
        ..ClientConfig::default()
    }
}

/// Asserts two success responses carry bit-identical payloads (ids and
/// degraded markers excluded — those are transport-level).
fn assert_payload_eq(scattered: &Response, reference: &Response, what: &str) {
    assert!(scattered.ok, "{what}: scattered answer refused: {:?}", scattered.error);
    assert!(reference.ok, "{what}: reference answer refused: {:?}", reference.error);
    match (&scattered.prediction, &reference.prediction) {
        (Some(a), Some(b)) => {
            assert_eq!(a.rating.to_bits(), b.rating.to_bits(), "{what}: rating bits diverge");
            assert_eq!(
                a.reliability.to_bits(),
                b.reliability.to_bits(),
                "{what}: reliability bits diverge"
            );
        }
        (a, b) => assert_eq!(a.is_some(), b.is_some(), "{what}: prediction presence diverges"),
    }
    match (&scattered.recommendations, &reference.recommendations) {
        (Some(a), Some(b)) => {
            assert_eq!(a.len(), b.len(), "{what}: recommendation count diverges");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.item, y.item, "{what}: recommended item diverges");
                assert_eq!(x.rating.to_bits(), y.rating.to_bits(), "{what}: rec rating bits");
                assert_eq!(
                    x.reliability.to_bits(),
                    y.reliability.to_bits(),
                    "{what}: rec reliability bits"
                );
            }
        }
        (a, b) => assert_eq!(a.is_some(), b.is_some(), "{what}: recommendations presence"),
    }
    match (&scattered.explanations, &reference.explanations) {
        (Some(a), Some(b)) => {
            assert_eq!(a.len(), b.len(), "{what}: explanation count diverges");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.review_idx, y.review_idx, "{what}: explanation review diverges");
                assert_eq!(x.rating.to_bits(), y.rating.to_bits(), "{what}: expl rating bits");
                assert_eq!(
                    x.reliability.to_bits(),
                    y.reliability.to_bits(),
                    "{what}: expl reliability bits"
                );
                assert_eq!(x.filtered, y.filtered, "{what}: expl filter verdict diverges");
            }
        }
        (a, b) => assert_eq!(a.is_some(), b.is_some(), "{what}: explanations presence"),
    }
}

/// The acceptance oracle: a 3-shard scatter-gather deployment is
/// bit-identical to one whole-model engine over the same artifact, for
/// three different master seeds.
#[test]
fn three_shard_scatter_matches_single_node_across_seeds() {
    for seed in [0x5EED_u64, 0xACE_0F_5EED5, 0xD15EA5E] {
        let fx = trained_fixture_with(FixtureSpec::micro().with_seed(seed));
        let dep = ShardedDeployment::launch(&fx, 3, 1);
        let reference = dep.whole_model_engine();
        let client = ShardedClient::new(dep.topology(), quiet_cfg()).unwrap();

        let users = fx.dataset.n_users as u32;
        let items = fx.dataset.n_items as u32;
        let mut requests = Vec::new();
        for user in 0..users.min(4) {
            requests.push(Request::recommend(user, 5));
            for item in 0..items.min(6) {
                requests.push(Request::predict(user, item));
            }
        }
        for item in 0..items.min(6) {
            requests.push(Request::explain(item, 3));
        }

        for req in requests {
            let what = format!("seed {seed:#x}, {:?} u={:?} i={:?}", req.op, req.user, req.item);
            let scattered = client.request(req.clone()).unwrap_or_else(|e| {
                panic!("{what}: scatter-gather failed client-visibly: {e}")
            });
            assert_ne!(scattered.degraded, Some(true), "{what}: fleet is healthy");
            let reference_resp = reference.submit(req);
            assert_payload_eq(&scattered, &reference_resp, &what);
        }

        client.shutdown();
        reference.shutdown();
    }
}

/// One shard entirely down: point lookups for its entities fail, ranking
/// over the survivors comes back `ok` + `degraded` + missing shard id, and
/// every surviving row is still the whole-model score for that item.
#[test]
fn kill_one_shard_yields_flagged_exact_partial_answers() {
    // Micro's catalog is a single item; this drill needs items on both
    // sides of the kill, so scale the catalog up to 8 items.
    let fx = trained_fixture_with(FixtureSpec { scale: 0.2, ..FixtureSpec::micro() });
    let mut dep = ShardedDeployment::launch(&fx, 3, 1);
    let reference = dep.whole_model_engine();
    let map = rrre_shard::ShardMap::new(dep.spec()).unwrap();
    let client = ShardedClient::new(
        dep.topology(),
        ClientConfig {
            request_timeout: Duration::from_millis(400),
            connect_timeout: Duration::from_millis(200),
            retries: 1,
            ..quiet_cfg()
        },
    )
    .unwrap();

    let users = fx.dataset.n_users as u32;
    let items = fx.dataset.n_items as u32;

    // Kill whichever shard owns item 0 — guaranteed to strand ≥1 item even
    // on a tiny catalog.
    let dead = map.shard_of_item(0);
    dep.kill_shard(dead);

    // Point lookups split by ownership: dead shard's items error, others work.
    let (mut dead_items, mut live_items) = (0, 0);
    for item in 0..items {
        let owner = map.shard_of_item(item);
        let outcome = client.request(Request::predict(0, item));
        if owner == dead {
            dead_items += 1;
            assert!(outcome.is_err(), "item {item} owned by the dead shard must fail");
        } else {
            live_items += 1;
            let resp = outcome.unwrap_or_else(|e| panic!("item {item} on live shard: {e}"));
            let reference_resp = reference.submit(Request::predict(0, item));
            assert_payload_eq(&resp, &reference_resp, &format!("live predict item {item}"));
        }
    }
    assert!(dead_items > 0 && live_items > 0, "fixture must spread items across shards");

    // Ranking degrades instead of failing, and stays exact on what it has.
    for user in 0..users.min(3) {
        let resp = client
            .request(Request::recommend(user, items as usize))
            .unwrap_or_else(|e| panic!("degraded recommend user {user} must not fail: {e}"));
        assert!(resp.ok, "degraded recommend refused: {:?}", resp.error);
        assert_eq!(resp.degraded, Some(true), "partial answer must be flagged");
        assert_eq!(resp.missing_shards.as_deref(), Some(&[dead][..]));
        let rows = resp.recommendations.expect("degraded recommend still carries rows");
        assert!(!rows.is_empty(), "two live shards must contribute rows");
        let reference_resp = reference.submit(Request::recommend(user, items as usize));
        let full = reference_resp.recommendations.unwrap();
        for row in &rows {
            assert_ne!(map.shard_of_item(row.item), dead, "no row may come from the dead shard");
            let whole = full.iter().find(|r| r.item == row.item).expect("row exists in full list");
            assert_eq!(
                row.rating.to_bits(),
                whole.rating.to_bits(),
                "degraded rows are incomplete, never wrong"
            );
        }
    }

    let snap = client.snapshot();
    assert!(snap.degraded_responses > 0, "client must count its degraded answers");
    client.shutdown();
    reference.shutdown();
}

/// A TCP stub that accepts connections, records each request line's
/// `deadline_ms`, and never answers — a black hole with a tape recorder.
fn black_hole_recorder() -> (String, mpsc::Receiver<u64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { return };
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut lines = BufReader::new(stream).lines();
                while let Some(Ok(line)) = lines.next() {
                    let deadline = serde_json::from_str::<serde_json::Value>(&line)
                        .ok()
                        .and_then(|v| v.get("deadline_ms")?.as_u64());
                    if let Some(ms) = deadline {
                        let _ = tx.send(ms);
                    }
                    // …and never reply: the client's per-attempt timeout fires.
                }
            });
        }
    });
    (addr, rx)
}

/// `request_with_deadline` re-budgets every attempt from the *remaining*
/// wall-clock: the server sees a strictly shrinking `deadline_ms`, and the
/// whole call ends by the deadline instead of `attempts × timeout`.
#[test]
fn deadline_budget_shrinks_across_attempts_and_bounds_the_call() {
    let (addr, deadlines) = black_hole_recorder();
    let client = Client::new(
        vec![addr],
        ClientConfig {
            connect_timeout: Duration::from_millis(100),
            request_timeout: Duration::from_millis(120),
            retries: 10, // far more than the budget can fund
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            // Keep the breaker out of this test: it can't fill a window
            // this large within one request's attempts.
            breaker_window: 64,
            breaker_threshold: 64,
            probe_interval: None,
            seed: 7,
            ..ClientConfig::default()
        },
    );

    let budget = Duration::from_millis(300);
    let started = Instant::now();
    let outcome = client.request_with_deadline(Request::predict(0, 0), Instant::now() + budget);
    let took = started.elapsed();
    assert!(outcome.is_err(), "black-holed replica cannot produce an answer");
    assert!(
        took < budget + Duration::from_millis(200),
        "call must end near the deadline, not retries × timeout (took {took:?})"
    );

    let seen: Vec<u64> = deadlines.try_iter().collect();
    assert!(seen.len() >= 2, "budget of 300ms over 120ms attempts funds ≥2 attempts: {seen:?}");
    for pair in seen.windows(2) {
        assert!(
            pair[1] < pair[0],
            "later attempts must advertise strictly smaller deadline_ms: {seen:?}"
        );
    }
    assert!(seen[0] <= 300, "first advertised deadline_ms is capped by the budget: {seen:?}");
    client.shutdown();
}

/// A black-holed shard spends the scatter's *shared* deadline: the other
/// shards' sub-requests are unaffected and the whole scatter returns in
/// roughly one timeout, degraded around the silent shard.
#[test]
fn slow_shard_cannot_consume_another_shards_time() {
    let fx = trained_fixture_with(FixtureSpec::micro());
    let dep = ShardedDeployment::launch(&fx, 3, 1);

    // Re-point shard 2 at a black hole (accepts, never answers).
    let (hole, _deadlines) = black_hole_recorder();
    let mut topology = dep.topology();
    topology.replicas[2] = vec![hole];

    let timeout = Duration::from_millis(400);
    let client = ShardedClient::new(
        topology,
        ClientConfig {
            request_timeout: timeout,
            connect_timeout: Duration::from_millis(200),
            retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..quiet_cfg()
        },
    )
    .unwrap();

    let started = Instant::now();
    let resp = client
        .request(Request::recommend(0, 8))
        .expect("two live shards still produce a degraded answer");
    let took = started.elapsed();
    assert!(resp.ok);
    assert_eq!(resp.degraded, Some(true));
    assert_eq!(resp.missing_shards.as_deref(), Some(&[2u32][..]));
    assert!(
        took < timeout * 2,
        "scatter must end within the shared budget, not shards × timeout (took {took:?})"
    );
    client.shutdown();
}
