//! Proof that the client's retries are idempotency-disciplined.
//!
//! A recording shim sits between the chaos proxy and a real engine and
//! logs every `(op, id)` the engine actually observes. The chaos proxy's
//! `SwallowResponse` fault delivers a request upstream and then destroys
//! the response — the one failure mode where the engine executed work the
//! client cannot confirm. The assertions:
//!
//! * an idempotent op is retried **with the same correlation id**, so the
//!   engine-side log shows the duplicate and the duplicate is harmless;
//! * a non-idempotent op (`Reload`) is *not* replayed — the engine
//!   observes exactly one execution and the client reports the ambiguous
//!   failure instead of guessing.

use rrre_client::{Client, ClientConfig, ErrorClass};
use rrre_serve::protocol::{decode_request, encode_response, Op};
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Request};
use rrre_testkit::chaos::{ChaosConfig, ChaosProxy, Fault};
use rrre_testkit::{trained_fixture, TempDir};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Duration;

type OpLog = Arc<Mutex<Vec<(Op, Option<u64>)>>>;

/// A minimal TCP front end over a real [`Engine`] that records every
/// decodable request the engine is handed, in arrival order.
fn recording_server(engine: Arc<Engine>) -> (String, OpLog) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let log: OpLog = Arc::new(Mutex::new(Vec::new()));
    let accept_log = Arc::clone(&log);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let engine = Arc::clone(&engine);
            let log = Arc::clone(&accept_log);
            std::thread::spawn(move || {
                let mut writer = stream.try_clone().unwrap();
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Ok(req) = decode_request(&line) {
                        log.lock().unwrap().push((req.op, req.id));
                    }
                    let resp = engine.submit_line(&line);
                    let out = encode_response(&resp);
                    if writer.write_all(out.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
                        break;
                    }
                }
            });
        }
    });
    (addr, log)
}

fn stack(tag: &str) -> (TempDir, Arc<Engine>, ChaosProxy, OpLog, Client) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Arc::new(Engine::new(artifact, EngineConfig { workers: 2, ..EngineConfig::default() }));
    let (addr, log) = recording_server(Arc::clone(&engine));
    let proxy = ChaosProxy::start(addr, ChaosConfig::default()).unwrap();
    let client = Client::new(
        vec![proxy.local_addr().to_string()],
        ClientConfig {
            connect_timeout: Duration::from_millis(300),
            request_timeout: Duration::from_millis(600),
            retries: 3,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            // No pooling: chaos faults are drawn per accepted connection,
            // so every request must dial fresh for the forced schedule to
            // line up with the request sequence.
            pool_per_replica: 0,
            seed: 0x1DE4,
            ..ClientConfig::default()
        },
    );
    (dir, engine, proxy, log, client)
}

#[test]
fn swallowed_response_forces_a_same_id_retry_for_idempotent_ops() {
    let (_dir, _engine, proxy, log, client) = stack("idem-swallow");
    proxy.force_once(Fault::SwallowResponse);

    let resp = client.request(Request::predict(0, 0)).unwrap();
    assert!(resp.ok, "the retry must recover the swallowed response: {:?}", resp.error);
    assert_eq!(client.snapshot().retries, 1);

    let observed = log.lock().unwrap().clone();
    let predicts: Vec<_> = observed.iter().filter(|(op, _)| *op == Op::Predict).collect();
    assert_eq!(predicts.len(), 2, "the engine must have seen the request twice: {observed:?}");
    assert_eq!(predicts[0].1, predicts[1].1, "the retry must reuse the correlation id");
    assert!(predicts[0].1.is_some(), "the client must have stamped an id");
}

#[test]
fn non_idempotent_reload_is_never_replayed_after_a_swallowed_response() {
    let (_dir, engine, proxy, log, client) = stack("idem-reload");
    let reloads_before = engine.stats().reloads;
    proxy.force_once(Fault::SwallowResponse);

    let err = client.request(Request::reload()).unwrap_err();
    assert_eq!(err.kind, ErrorClass::ConnectionLost, "the ambiguity must be surfaced, not hidden");
    assert_eq!(err.attempts, 1, "no second attempt may be made");

    let observed = log.lock().unwrap().clone();
    let reloads: Vec<_> = observed.iter().filter(|(op, _)| *op == Op::Reload).collect();
    assert_eq!(reloads.len(), 1, "the engine must see exactly one Reload: {observed:?}");
    assert_eq!(
        engine.stats().reloads,
        reloads_before + 1,
        "exactly one reload side effect must have happened"
    );
}

#[test]
fn chaotic_burst_produces_duplicates_only_for_idempotent_ops() {
    let (_dir, _engine, proxy, log, client) = stack("idem-burst");

    // Swallow every fifth connection's response: each swallow forces one
    // same-id retry. The schedule is forced (not probabilistic), so the
    // test is exactly reproducible.
    for i in 0..20u32 {
        if i % 5 == 0 {
            proxy.force_once(Fault::SwallowResponse);
        }
        let resp = client.request(Request::predict(i % 3, 0)).unwrap();
        assert!(resp.ok, "request {i} must survive the chaos: {:?}", resp.error);
    }

    let observed = log.lock().unwrap().clone();
    let mut by_id: std::collections::HashMap<u64, Vec<Op>> = std::collections::HashMap::new();
    for (op, id) in &observed {
        by_id.entry(id.expect("client stamps every request")).or_default().push(*op);
    }
    let duplicated: Vec<_> = by_id.values().filter(|ops| ops.len() > 1).collect();
    assert!(
        !duplicated.is_empty(),
        "the swallow schedule must have forced at least one duplicate: {observed:?}"
    );
    for ops in duplicated {
        for op in ops {
            assert!(
                op.is_idempotent(),
                "a non-idempotent op was replayed: {observed:?}"
            );
        }
    }
    assert_eq!(proxy.stats().swallowed, 4, "all four forced swallows must have fired");
}
