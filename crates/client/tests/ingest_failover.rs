//! Ingest routing resilience: `IngestReview` through the sharded client
//! must survive replica failure exactly like a query — the op is
//! seq-deduplicated server-side, so the client is free to fail over — and
//! must follow `NotLeader` redirects to a replicated shard's leader.

use rrre_client::{ClientConfig, ShardedClient};
use rrre_shard::ShardTopology;
use rrre_wire::{encode_response, IngestDto, Request, Response, ShardSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// A scripted protocol server (one thread per connection); returns its
/// bound address. `None` from `respond` drops the connection mid-request.
fn mock_server(respond: impl Fn(&Request) -> Option<Response> + Send + Sync + 'static) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let respond = Arc::new(respond);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let respond = Arc::clone(&respond);
            std::thread::spawn(move || {
                let mut writer = stream.try_clone().unwrap();
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    let req = rrre_wire::decode_request(&line).unwrap();
                    match respond(&req) {
                        Some(resp) => {
                            let out = encode_response(&resp);
                            if writer.write_all(out.as_bytes()).is_err()
                                || writer.write_all(b"\n").is_err()
                            {
                                break;
                            }
                        }
                        None => break,
                    }
                }
            });
        }
    });
    addr
}

/// An address with nothing listening behind it.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

fn ack(req: &Request) -> Option<Response> {
    let mut resp = Response::ok(req.id);
    resp.ingest = Some(IngestDto { seq: req.seq.unwrap_or(0), duplicate: false });
    Some(resp)
}

fn quick_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(200),
        request_timeout: Duration::from_millis(500),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        retries: 2,
        ..ClientConfig::default()
    }
}

fn one_shard(replicas: Vec<String>) -> ShardTopology {
    ShardTopology { spec: ShardSpec::single(), replicas: vec![replicas] }
}

#[test]
fn sharded_ingest_fails_over_a_dead_first_replica() {
    // The shard's first replica is down; the batch must land on the
    // second, exactly as a Predict would, with zero caller-visible
    // failures.
    let live = mock_server(ack);
    let topo = one_shard(vec![dead_addr(), live]);
    let client = ShardedClient::new(topo, quick_cfg()).unwrap();
    for seq in 1..=5u64 {
        let resp = client
            .request(Request::ingest_review(seq, 0, 0, 4.0, "failover batch", seq as i64))
            .unwrap_or_else(|e| panic!("seq {seq} must fail over, not fail: {e}"));
        assert!(resp.ok, "seq {seq} refused: {:?}", resp.error);
        assert_eq!(resp.ingest.as_ref().map(|i| i.seq), Some(seq));
    }
    let snap = client.snapshot();
    assert!(snap.shards[0].replicas[1].attempts >= 5, "live replica must carry the batch");
    assert!(
        snap.shards[0].replicas[0].failures >= 1,
        "the dead replica should have been tried and recorded as failing"
    );
}

#[test]
fn sharded_ingest_follows_the_leader_redirect() {
    // A replicated shard where replica 0 is a follower: its NotLeader
    // refusal names the leader, and the retry must land there.
    let leader = mock_server(ack);
    let hint = leader.clone();
    let follower = mock_server(move |req| Some(Response::not_leader(req.id, Some(hint.clone()))));
    let topo = one_shard(vec![follower, leader]);
    let client = ShardedClient::new(topo, quick_cfg()).unwrap();
    let resp = client.request(Request::ingest_review(9, 0, 0, 4.0, "redirected", 9)).unwrap();
    assert!(resp.ok, "redirected ingest refused: {:?}", resp.error);
    assert_eq!(resp.ingest.as_ref().map(|i| i.seq), Some(9));
    let snap = client.snapshot();
    assert_eq!(snap.shards[0].replicas[1].attempts, 1, "one steered attempt at the leader");
}
