//! The headline resilience drill: three replicas serving one artifact,
//! one replica killed mid-burst — the client must finish the burst with
//! **zero** visible failures, open the dead replica's breaker, and after
//! the replica restarts (on a new port, behind the same stable proxy
//! address) recover it via health probes and route traffic back.
//!
//! Deterministic: the proxies are transparent (no probabilistic faults),
//! the client's jitter RNG is seeded, and every assertion is on ordered
//! request outcomes or monotone counters — no racing on exact counts.

use rrre_client::{Client, ClientConfig};
use rrre_serve::server::Server;
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Request};
use rrre_testkit::chaos::{ChaosConfig, ChaosProxy};
use rrre_testkit::{trained_fixture, TempDir};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn replica_from(dir: &TempDir) -> (Arc<Engine>, Server) {
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Arc::new(Engine::new(artifact, EngineConfig { workers: 2, ..EngineConfig::default() }));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    (engine, server)
}

#[test]
fn kill_one_of_three_mid_burst_zero_failures_then_breaker_recovers_on_restart() {
    // One artifact, three replicas serving it.
    let fx = trained_fixture();
    let dir = TempDir::new("failover-artifact");
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();

    let (_engine_a, mut server_a) = replica_from(&dir);
    let (engine_b, mut server_b) = replica_from(&dir);
    let (_engine_c, mut server_c) = replica_from(&dir);

    // Each replica sits behind a transparent chaos proxy: the client's
    // endpoint addresses stay stable across the kill/restart cycle.
    let proxy_a = ChaosProxy::start(server_a.local_addr().to_string(), ChaosConfig::default()).unwrap();
    let proxy_b = ChaosProxy::start(server_b.local_addr().to_string(), ChaosConfig::default()).unwrap();
    let proxy_c = ChaosProxy::start(server_c.local_addr().to_string(), ChaosConfig::default()).unwrap();

    let client = Client::new(
        vec![
            proxy_a.local_addr().to_string(),
            proxy_b.local_addr().to_string(),
            proxy_c.local_addr().to_string(),
        ],
        ClientConfig {
            connect_timeout: Duration::from_millis(300),
            request_timeout: Duration::from_millis(800),
            retries: 3,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            breaker_window: 4,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60), // recovery must come from probes
            probe_interval: Some(Duration::from_millis(40)),
            probe_timeout: Duration::from_millis(250),
            seed: 0xFA110,
            ..ClientConfig::default()
        },
    );

    let users = fx.dataset.n_users as u32;
    let mut ok = 0usize;
    let mut engine_b = Some(engine_b);
    // Phase 1: burst with all replicas up; kill replica B mid-burst.
    for i in 0..30u32 {
        if i == 10 {
            server_b.stop();
            drop(engine_b.take());
        }
        let resp = client.request(Request::predict(i % users, 0)).unwrap_or_else(|e| {
            panic!("request {i} must not fail client-visibly: {e}")
        });
        assert!(resp.ok, "request {i} refused: {:?}", resp.error);
        ok += 1;
    }
    assert_eq!(ok, 30, "zero client-visible failures through the kill");

    // The killed replica's breaker must open (via failed attempts and/or
    // failed probes) and its probe verdict must go not-ready.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = client.snapshot();
        if snap.replicas[1].breaker_open && !snap.replicas[1].probe_ready {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker for the killed replica never opened: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(client.snapshot().replicas[1].breaker_opens >= 1);

    // Restart replica B on a brand-new port and swing the proxy over to
    // it — the client keeps the same endpoint address throughout.
    let (_engine_b2, mut server_b2) = replica_from(&dir);
    proxy_b.set_upstream(server_b2.local_addr().to_string());

    // Probes must close the breaker (cooldown is 60 s, so a half-open
    // trial cannot be the mechanism) and mark the replica ready again.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = client.snapshot();
        if !snap.replicas[1].breaker_open && snap.replicas[1].probe_ready {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "probes never recovered the restarted replica: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Phase 2: traffic flows again, including to the recovered replica.
    let attempts_before = client.snapshot().replicas[1].attempts;
    for i in 0..9u32 {
        let resp = client.request(Request::predict(i % users, 0)).unwrap();
        assert!(resp.ok);
    }
    assert!(
        client.snapshot().replicas[1].attempts > attempts_before,
        "the recovered replica must receive traffic again"
    );

    client.shutdown();
    server_a.stop();
    server_b2.stop();
    server_c.stop();
}
