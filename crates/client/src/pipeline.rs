//! Pipelined mode: many in-flight requests on one connection.
//!
//! The resilient [`crate::Client`] is strictly send-one-read-one per
//! connection — right for latency-sensitive point lookups, wasteful for
//! bulk traffic, where each request paying a full round trip caps one
//! connection at `1/RTT` requests per second. A [`PipelinedClient`]
//! instead keeps a window of requests in flight on a single socket and
//! matches responses to requests by correlation id, because the server's
//! event core answers in **completion** order, not submission order.
//!
//! This client is deliberately minimal — no retries, no failover, no
//! breakers. It exists to drive the server's pipelined path (benchmarks
//! and tests); production point traffic should use [`crate::Client`].

use rrre_wire::{Request, Response};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A single-connection pipelining client. Not thread-safe by design: one
/// window, one owner.
pub struct PipelinedClient {
    writer: TcpStream,
    reader: TcpStream,
    /// Received-but-undecoded bytes. Kept across calls so a timed-out
    /// [`PipelinedClient::recv`] never loses a partial response line — the
    /// next call resumes exactly where the stream left off.
    buf: Vec<u8>,
    next_id: u64,
    /// Correlation ids sent and not yet answered.
    pending: HashSet<u64>,
}

/// What one [`PipelinedClient::recv`] produced.
#[derive(Debug)]
pub enum Pipelined {
    /// A response matching one of this client's in-flight ids.
    Response(Response),
    /// A response that matched nothing in flight (a server-side push or a
    /// correlation bug — the caller decides how suspicious to be).
    Unmatched(Response),
}

impl PipelinedClient {
    /// Connects (with `connect_timeout`) and prepares an empty window.
    pub fn connect(addr: impl ToSocketAddrs, connect_timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Self { writer: stream, reader, buf: Vec::new(), next_id: 1, pending: HashSet::new() })
    }

    /// Sends one request without waiting for anything, returning the
    /// correlation id it was stamped with (a missing `id` is assigned from
    /// this client's counter; a caller-supplied one is kept).
    pub fn send(&mut self, mut req: Request) -> std::io::Result<u64> {
        let id = match req.id {
            Some(id) => id,
            None => {
                let id = self.next_id;
                self.next_id += 1;
                req.id = Some(id);
                id
            }
        };
        let line = serde_json::to_string(&req).expect("Request serialisation cannot fail");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.pending.insert(id);
        Ok(id)
    }

    /// Reads the next response line (blocking up to `timeout`), decodes
    /// it, and retires its id from the in-flight window. Responses arrive
    /// in whatever order the server completed them.
    ///
    /// A `TimedOut` error is *resumable*: any partially received line
    /// stays buffered, so callers may poll with short timeouts (draining
    /// early arrivals between scheduled sends) without corrupting framing.
    pub fn recv(&mut self, timeout: Duration) -> std::io::Result<Pipelined> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line[..nl]);
                let resp: Response = serde_json::from_str(text.trim()).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("undecodable response: {e}"),
                    )
                })?;
                return match resp.id {
                    Some(id) if self.pending.remove(&id) => Ok(Pipelined::Response(resp)),
                    _ => Ok(Pipelined::Unmatched(resp)),
                };
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no complete response within the timeout",
                ));
            };
            self.reader.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            let mut chunk = [0u8; 4096];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        if self.buf.is_empty() {
                            "server closed the connection with responses still in flight"
                        } else {
                            "truncated response line"
                        },
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no complete response within the timeout",
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Receives until the window is empty (or `timeout` expires per read),
    /// returning every matched response. Unmatched responses are dropped —
    /// use [`PipelinedClient::recv`] directly to see them.
    pub fn drain(&mut self, timeout: Duration) -> std::io::Result<Vec<Response>> {
        let mut out = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            if let Pipelined::Response(resp) = self.recv(timeout)? {
                out.push(resp);
            }
        }
        Ok(out)
    }

    /// Requests currently in flight.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Shuts down the write half, telling the server no more requests are
    /// coming (in-flight ones still get answered — the drain path).
    pub fn finish_sending(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }
}
