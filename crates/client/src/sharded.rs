//! Scatter-gather front end over a sharded deployment.
//!
//! A [`ShardedClient`] owns one resilient [`Client`] per shard (each with
//! the full retry/hedge/breaker/probe machinery scoped to that shard's
//! replica set) and a [`ShardMap`] built from the deployment's
//! [`ShardTopology`]. Requests route by plan:
//!
//! * **point lookups** (`Predict`, `Explain`, item-scoped `Invalidate`) go
//!   straight to the owning shard's client;
//! * **`Recommend`** scatters to every shard in parallel — each shard
//!   scores only the catalog slice it owns — and the partial top-k lists
//!   are gathered and re-ranked with the exact `rank_candidates` ordering,
//!   so the merged answer is bit-identical to a single node holding the
//!   whole model;
//! * **`Stats`/`Health`** scatter and fold into one fleet-level snapshot;
//! * **user-only `Invalidate` and `Reload`** broadcast, since every shard
//!   holds state the side effect must reach.
//!
//! **Deadline split.** A scatter shares *one* caller budget
//! ([`ClientConfig::request_timeout`]): the overall deadline is fixed
//! up front and every per-shard sub-request runs under
//! [`Client::request_with_deadline`], whose retries spend down the
//! *remaining* budget. The per-shard arms run in parallel, so a slow shard
//! can exhaust only its own slice of the budget — never another shard's
//! time, and never more than the caller's total.
//!
//! **Degraded answers.** If a shard's replica set is entirely unavailable,
//! the gather returns what the surviving shards produced, flagged
//! `degraded: true` with the missing shard ids — the exact answer to the
//! sub-universe that was reachable, incomplete but never wrong. Callers
//! that need completeness can retry; callers that need availability can
//! render the partial list.

use crate::{Client, ClientConfig, ClientError, ClientSnapshot, ErrorClass};
use rrre_shard::plan::{merge_health, merge_recommendations, merge_stats, plan, RoutePlan};
use rrre_shard::{ShardMap, ShardTopology};
use rrre_wire::{CompactionDto, ErrorKind, HealthDto, Op, Request, Response};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counters a [`ShardedClient`] keeps on top of its per-shard clients.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    /// Logical requests submitted.
    pub requests: u64,
    /// Scatter fan-outs fired (sub-requests actually sent, summed over
    /// scattered and broadcast ops).
    pub scatter_fanout: u64,
    /// Gathered answers that came back partial (≥ 1 shard missing).
    pub degraded_responses: u64,
    /// Per-shard client snapshots, indexed by shard id.
    pub shards: Vec<ClientSnapshot>,
}

/// A shard-routing, scatter-gathering client over one deployment topology.
pub struct ShardedClient {
    map: ShardMap,
    clients: Vec<Client>,
    requests: AtomicU64,
    scatter_fanout: AtomicU64,
    degraded_responses: AtomicU64,
}

impl ShardedClient {
    /// Builds one [`Client`] per shard from a validated topology. Each
    /// shard's client gets a decorrelated RNG seed (`cfg.seed` mixed with
    /// the shard id) so backoff schedules don't synchronise across shards
    /// into fleet-wide retry storms.
    pub fn new(topology: ShardTopology, cfg: ClientConfig) -> Result<Self, String> {
        topology.validate()?;
        let map = ShardMap::new(topology.spec)?;
        let clients = topology
            .replicas
            .iter()
            .enumerate()
            .map(|(shard, addrs)| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.seed = cfg.seed.rotate_left(17)
                    ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1);
                Client::new(addrs.clone(), shard_cfg)
            })
            .collect();
        Ok(Self {
            map,
            clients,
            requests: AtomicU64::new(0),
            scatter_fanout: AtomicU64::new(0),
            degraded_responses: AtomicU64::new(0),
        })
    }

    /// The shard map this client routes with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Direct access to one shard's client (testing and tooling).
    pub fn shard_client(&self, shard: u32) -> &Client {
        &self.clients[shard as usize]
    }

    /// Routes one logical request per its [`RoutePlan`] and returns the
    /// (possibly gathered) response. Transport-level failure of *every*
    /// involved shard is the only way to get `Err`; a partially failed
    /// scatter returns `Ok` with `degraded: true`.
    pub fn request(&self, req: Request) -> Result<Response, ClientError> {
        self.requests.fetch_add(1, Ordering::SeqCst);
        match plan(&self.map, &req) {
            RoutePlan::Shard(shard) => self.clients[shard as usize].request(req),
            // Shardless requests are answered identically everywhere
            // (typically with a structured BadRequest); shard 0 speaks for
            // the deployment.
            RoutePlan::Any => self.clients[0].request(req),
            RoutePlan::Scatter => self.scatter(req),
            RoutePlan::Broadcast => self.broadcast(req),
        }
    }

    /// Point-in-time counters, including each shard's client snapshot.
    pub fn snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot {
            requests: self.requests.load(Ordering::SeqCst),
            scatter_fanout: self.scatter_fanout.load(Ordering::SeqCst),
            degraded_responses: self.degraded_responses.load(Ordering::SeqCst),
            shards: self.clients.iter().map(Client::snapshot).collect(),
        }
    }

    /// Stops every shard client's health prober. Idempotent.
    pub fn shutdown(&self) {
        for client in &self.clients {
            client.shutdown();
        }
    }

    /// Fans `req` out to every shard under one shared deadline and returns
    /// the per-shard outcomes (indexed by shard id).
    fn fan_out(&self, req: &Request) -> Vec<Result<Response, ClientError>> {
        let deadline = Instant::now()
            + self.clients.first().map(|c| c.config().request_timeout).unwrap_or_default();
        self.scatter_fanout.fetch_add(self.clients.len() as u64, Ordering::SeqCst);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clients
                .iter()
                .map(|client| {
                    let sub = req.clone();
                    scope.spawn(move || client.request_with_deadline(sub, deadline))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scatter arm panicked")).collect()
        })
    }

    /// Scatter + gather for `Recommend`, `Stats` and `Health`: merge the
    /// survivors, flag the missing.
    fn scatter(&self, req: Request) -> Result<Response, ClientError> {
        let outcomes = self.fan_out(&req);
        let mut missing: Vec<u32> = Vec::new();
        let mut answers: Vec<(u32, Response)> = Vec::new();
        let mut last_err: Option<ClientError> = None;
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(resp) if resp.ok => answers.push((shard as u32, resp)),
                Ok(resp) => {
                    // A structured refusal is deterministic across shards
                    // for a malformed request — report it as the overall
                    // answer rather than degrading around it.
                    if resp.kind == Some(ErrorKind::BadRequest) {
                        return Ok(resp);
                    }
                    missing.push(shard as u32);
                    last_err = Some(ClientError::new(
                        ErrorClass::Server(resp.kind.unwrap_or(ErrorKind::Internal)),
                        resp.error.unwrap_or_else(|| "shard refused the sub-request".into()),
                    ));
                }
                Err(e) => {
                    missing.push(shard as u32);
                    last_err = Some(e);
                }
            }
        }
        if answers.is_empty() {
            return Err(last_err.unwrap_or_else(|| {
                ClientError::new(ErrorClass::NoReplica, "scatter reached no shard")
            }));
        }
        let degraded = !missing.is_empty();
        if degraded {
            self.degraded_responses.fetch_add(1, Ordering::SeqCst);
        }

        let mut merged = Response::ok(req.id);
        merged.generation = answers.iter().filter_map(|(_, r)| r.generation).min();
        match req.op {
            Op::Recommend => {
                let k = req.k.unwrap_or(0);
                let rows = answers
                    .iter_mut()
                    .flat_map(|(_, r)| r.recommendations.take().unwrap_or_default())
                    .collect();
                merged.recommendations = Some(merge_recommendations(rows, k));
            }
            Op::Stats => {
                let parts: Vec<_> =
                    answers.iter_mut().filter_map(|(_, r)| r.stats.take()).collect();
                let mut stats = merge_stats(&parts);
                // Engines report 0 here — degradation is a gather-side
                // phenomenon only this client can see.
                stats.degraded_responses = self.degraded_responses.load(Ordering::SeqCst);
                merged.stats = Some(stats);
            }
            Op::Health => {
                let mut parts: Vec<_> =
                    answers.iter_mut().filter_map(|(_, r)| r.health.take()).collect();
                // An unreachable shard reads as a dead member of the fleet,
                // not an absent one.
                for _ in &missing {
                    parts.push(HealthDto {
                        live: false,
                        ready: false,
                        draining: false,
                        breaker_open: false,
                        generation: 0,
                    });
                }
                merged.health = Some(merge_health(&parts));
            }
            _ => unreachable!("only Recommend/Stats/Health plan as Scatter"),
        }
        if degraded {
            merged.degraded = Some(true);
            merged.missing_shards = Some(missing);
        }
        Ok(merged)
    }

    /// Broadcast for side-effecting ops (`Reload`, user-only
    /// `Invalidate`): the effect must land on *every* shard, so any
    /// failure fails the whole call — a half-applied broadcast must not
    /// report success.
    fn broadcast(&self, req: Request) -> Result<Response, ClientError> {
        let outcomes = self.fan_out(&req);
        let mut merged = Response::ok(req.id);
        let mut evicted = 0u64;
        let mut saw_evicted = false;
        let mut folded = 0u64;
        let mut saw_compaction = false;
        for outcome in outcomes {
            let resp = outcome?;
            if !resp.ok {
                return Ok(resp);
            }
            merged.generation = match (merged.generation, resp.generation) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if let Some(n) = resp.evicted {
                evicted += n;
                saw_evicted = true;
            }
            if let Some(c) = resp.compaction {
                folded += c.folded;
                saw_compaction = true;
            }
        }
        if saw_evicted {
            merged.evicted = Some(evicted);
        }
        if saw_compaction {
            // Deployment-wide fold count; the generation is the *lowest*
            // post-compaction generation across shards (same conservative
            // convention as the merged `generation` field).
            merged.compaction =
                Some(CompactionDto { folded, generation: merged.generation.unwrap_or(0) });
        }
        Ok(merged)
    }
}

impl Drop for ShardedClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}
