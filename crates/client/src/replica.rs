//! Per-replica state: address, connection pool, breaker and counters.

use crate::breaker::Breaker;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One pooled connection: the buffered read half and the raw write half of
/// the same socket (the pair stays together so no buffered byte is ever
/// orphaned).
pub struct Conn {
    /// Buffered reader over the socket.
    pub reader: BufReader<TcpStream>,
    /// Write half (a `try_clone` of the same socket).
    pub writer: TcpStream,
}

impl Conn {
    fn dial(addr: &str, connect_timeout: Duration) -> std::io::Result<Self> {
        let mut last = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let writer = stream.try_clone()?;
                    return Ok(Self { reader: BufReader::new(stream), writer });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{addr}: no addresses"))
        }))
    }
}

/// One replica endpoint and everything the client knows about it.
pub struct Replica {
    /// The `host:port` this replica is reached at.
    pub addr: String,
    /// Outcome-driven circuit breaker.
    pub breaker: Mutex<Breaker>,
    pool: Mutex<Vec<Conn>>,
    pool_cap: usize,
    /// Last health-probe verdict; `true` until a probe says otherwise so a
    /// probe-less client (or the window before the first probe lands)
    /// routes normally.
    probe_ready: AtomicBool,
    /// Attempts routed here (including hedges and probes are *not* counted).
    pub attempts: AtomicU64,
    /// Attempts that failed (transport error, timeout, or a retryable
    /// server refusal).
    pub failures: AtomicU64,
    /// Hedge attempts that used this replica as the backup arm.
    pub hedges: AtomicU64,
}

impl Replica {
    /// A replica with an empty pool and a closed breaker.
    pub fn new(addr: String, breaker: Breaker, pool_cap: usize) -> Self {
        Self {
            addr,
            breaker: Mutex::new(breaker),
            pool: Mutex::new(Vec::new()),
            pool_cap,
            probe_ready: AtomicBool::new(true),
            attempts: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
        }
    }

    /// A connection to this replica: pooled if one is idle (returned with
    /// `pooled = true` so the caller can apply its stale-connection grace
    /// retry), freshly dialed otherwise.
    pub fn checkout(&self, connect_timeout: Duration) -> std::io::Result<(Conn, bool)> {
        if let Some(conn) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok((conn, true));
        }
        Conn::dial(&self.addr, connect_timeout).map(|c| (c, false))
    }

    /// Returns a healthy connection to the pool (dropped if the pool is at
    /// capacity). Never check in a connection with an unread response in
    /// flight — the next checkout would read a stale reply.
    pub fn checkin(&self, conn: Conn) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < self.pool_cap {
            pool.push(conn);
        }
    }

    /// Drops every idle pooled connection (used when a probe declares the
    /// replica dead — pooled sockets to it are dead too).
    pub fn clear_pool(&self) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// The last health-probe verdict.
    pub fn probe_ready(&self) -> bool {
        self.probe_ready.load(Ordering::SeqCst)
    }

    /// Records a health-probe verdict.
    pub fn set_probe_ready(&self, ready: bool) {
        self.probe_ready.store(ready, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(pool_cap: usize) -> Replica {
        Replica::new(
            "127.0.0.1:1".into(),
            Breaker::new(4, 2, Duration::from_millis(50)),
            pool_cap,
        )
    }

    #[test]
    fn pool_is_bounded() {
        let r = replica(1);
        // Hand-build conns over a real loopback listener.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let make = || {
            let stream = TcpStream::connect(addr).unwrap();
            let writer = stream.try_clone().unwrap();
            Conn { reader: BufReader::new(stream), writer }
        };
        r.checkin(make());
        r.checkin(make());
        assert_eq!(r.pool.lock().unwrap().len(), 1, "pool must cap at pool_cap");
        let (_, pooled) = r.checkout(Duration::from_millis(100)).unwrap();
        assert!(pooled);
        r.clear_pool();
        assert!(r.pool.lock().unwrap().is_empty());
    }

    #[test]
    fn checkout_dials_when_pool_is_empty() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let r = Replica::new(
            listener.local_addr().unwrap().to_string(),
            Breaker::new(4, 2, Duration::from_millis(50)),
            1,
        );
        let (_, pooled) = r.checkout(Duration::from_millis(500)).unwrap();
        assert!(!pooled);
    }

    #[test]
    fn dial_failure_surfaces_as_io_error() {
        // A listener bound then dropped: the port refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let r = Replica::new(addr, Breaker::new(4, 2, Duration::from_millis(50)), 1);
        assert!(r.checkout(Duration::from_millis(200)).is_err());
    }
}
