//! Per-replica sliding-window circuit breaker.
//!
//! Outcome-driven, not panic-driven (unlike the server-side breaker in
//! `rrre-serve`): every attempt against a replica records success or
//! failure into a fixed-size window of the most recent outcomes. When the
//! window holds `threshold` failures the breaker opens and the replica
//! stops being selected. Recovery is two-path:
//!
//! * **half-open trial** — after `cooldown`, exactly one request is
//!   allowed through ([`Breaker::try_acquire`]); success closes the
//!   breaker, failure re-opens it with a fresh cooldown;
//! * **probe override** — a successful out-of-band health probe closes
//!   the breaker immediately ([`Breaker::probe_success`]), and a failed
//!   probe while open pushes the next half-open trial out, so request
//!   traffic never has to test a replica the prober already knows is
//!   dead.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    /// Open since the instant; no traffic until the cooldown elapses.
    Open(Instant),
    /// One in-flight trial request; everyone else keeps waiting.
    HalfOpen,
}

/// One replica's breaker. Not thread-safe by itself — callers wrap it in a
/// mutex next to the rest of the replica state.
#[derive(Debug)]
pub struct Breaker {
    window: usize,
    threshold: usize,
    cooldown: Duration,
    /// Most recent outcomes, `true` = failure, newest at the back.
    outcomes: VecDeque<bool>,
    state: State,
    opens: u64,
}

impl Breaker {
    /// A closed breaker that opens on `threshold` failures within the last
    /// `window` outcomes and allows a half-open trial after `cooldown`.
    pub fn new(window: usize, threshold: usize, cooldown: Duration) -> Self {
        assert!(window >= 1 && threshold >= 1, "Breaker: window and threshold must be ≥ 1");
        assert!(threshold <= window, "Breaker: threshold cannot exceed the window");
        Self {
            window,
            threshold,
            cooldown,
            outcomes: VecDeque::with_capacity(window),
            state: State::Closed,
            opens: 0,
        }
    }

    fn push(&mut self, failure: bool) {
        if self.outcomes.len() == self.window {
            self.outcomes.pop_front();
        }
        self.outcomes.push_back(failure);
    }

    fn failures(&self) -> usize {
        self.outcomes.iter().filter(|&&f| f).count()
    }

    /// Whether a request may be routed here right now. An open breaker
    /// past its cooldown converts to half-open and admits exactly one
    /// trial; while that trial is in flight everyone else is refused.
    pub fn try_acquire(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed => true,
            State::HalfOpen => false,
            State::Open(since) => {
                if now.duration_since(since) >= self.cooldown {
                    self.state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful attempt (closes a half-open breaker).
    pub fn record_success(&mut self) {
        self.push(false);
        if self.state != State::Closed {
            self.state = State::Closed;
            self.outcomes.clear();
        }
    }

    /// Records a failed attempt; opens the breaker when the window crosses
    /// the threshold (or instantly re-opens a half-open one).
    pub fn record_failure(&mut self, now: Instant) {
        self.push(true);
        match self.state {
            State::HalfOpen => {
                self.state = State::Open(now);
                self.opens += 1;
            }
            State::Closed if self.failures() >= self.threshold => {
                self.state = State::Open(now);
                self.opens += 1;
            }
            _ => {}
        }
    }

    /// An out-of-band health probe succeeded: close immediately, whatever
    /// state we were in — the replica is demonstrably back.
    pub fn probe_success(&mut self) {
        self.state = State::Closed;
        self.outcomes.clear();
    }

    /// An out-of-band health probe failed. While open, push the half-open
    /// trial out (the prober just confirmed the replica is still dead, so
    /// burning a real request on it would be pure waste); while closed it
    /// counts like any other failure.
    pub fn probe_failure(&mut self, now: Instant) {
        match self.state {
            State::Open(_) | State::HalfOpen => {
                self.state = State::Open(now);
            }
            State::Closed => self.record_failure(now),
        }
    }

    /// Whether the breaker is currently open or half-open (i.e. not
    /// serving normally).
    pub fn is_open(&self) -> bool {
        self.state != State::Closed
    }

    /// How many times this breaker has transitioned closed/half-open →
    /// open over its lifetime.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(8, 3, Duration::from_millis(50))
    }

    #[test]
    fn opens_after_threshold_failures_in_window() {
        let now = Instant::now();
        let mut b = breaker();
        b.record_failure(now);
        b.record_failure(now);
        assert!(!b.is_open(), "under threshold must stay closed");
        b.record_failure(now);
        assert!(b.is_open());
        assert_eq!(b.opens(), 1);
        assert!(!b.try_acquire(now), "no traffic inside the cooldown");
    }

    #[test]
    fn successes_age_failures_out_of_the_window() {
        let now = Instant::now();
        let mut b = breaker();
        b.record_failure(now);
        b.record_failure(now);
        for _ in 0..8 {
            b.record_success();
        }
        b.record_failure(now);
        b.record_failure(now);
        assert!(!b.is_open(), "old failures must have slid out of the window");
    }

    #[test]
    fn half_open_admits_exactly_one_trial() {
        let now = Instant::now();
        let mut b = breaker();
        for _ in 0..3 {
            b.record_failure(now);
        }
        let later = now + Duration::from_millis(60);
        assert!(b.try_acquire(later), "cooldown elapsed: one trial allowed");
        assert!(!b.try_acquire(later), "second caller must wait for the trial");
        b.record_success();
        assert!(!b.is_open());
        assert!(b.try_acquire(later), "closed again after a good trial");
    }

    #[test]
    fn failed_trial_reopens_with_fresh_cooldown() {
        let now = Instant::now();
        let mut b = breaker();
        for _ in 0..3 {
            b.record_failure(now);
        }
        let later = now + Duration::from_millis(60);
        assert!(b.try_acquire(later));
        b.record_failure(later);
        assert_eq!(b.opens(), 2);
        assert!(!b.try_acquire(later + Duration::from_millis(10)), "cooldown restarted");
        assert!(b.try_acquire(later + Duration::from_millis(60)));
    }

    #[test]
    fn probe_success_closes_and_probe_failure_postpones() {
        let now = Instant::now();
        let mut b = breaker();
        for _ in 0..3 {
            b.record_failure(now);
        }
        // Probe keeps confirming death: the half-open trial keeps moving.
        let t1 = now + Duration::from_millis(60);
        b.probe_failure(t1);
        assert!(!b.try_acquire(t1 + Duration::from_millis(10)));
        // Probe sees recovery: closed instantly, no trial needed.
        b.probe_success();
        assert!(!b.is_open());
        assert!(b.try_acquire(t1));
    }
}
