//! Capped decorrelated-jitter exponential backoff.
//!
//! The classic AWS-blog variant: each sleep is drawn uniformly from
//! `[base, prev * 3]` and clamped to `cap`. Compared with plain
//! exponential-with-jitter it decorrelates retry storms faster (the next
//! sleep depends on the *drawn* previous sleep, not on the attempt
//! number), and compared with full jitter it keeps a floor of `base` so a
//! retry never lands instantly on a replica that just failed.
//!
//! All randomness comes from the caller-supplied seeded RNG — two clients
//! built with the same seed draw the same sleep schedule, which is what
//! makes retry behaviour reproducible in the chaos tests.

use rand::{rngs::StdRng, Rng};
use std::time::Duration;

/// One request's backoff state. Cheap to build per request; the RNG is
/// borrowed per draw so a client-wide seeded stream can feed every
/// request's schedule.
#[derive(Debug, Clone, Copy)]
pub struct DecorrelatedJitter {
    base: Duration,
    cap: Duration,
    prev: Duration,
}

impl DecorrelatedJitter {
    /// A fresh schedule: the first draw comes from `[base, base * 3]`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        let base = base.max(Duration::from_millis(1));
        Self { base, cap: cap.max(base), prev: base }
    }

    /// Draws the next sleep from `rng`.
    pub fn next(&mut self, rng: &mut StdRng) -> Duration {
        let lo = self.base.as_millis() as u64;
        let hi = (self.prev.as_millis() as u64).saturating_mul(3).max(lo + 1);
        let drawn = Duration::from_millis(rng.gen_range(lo..hi));
        self.prev = drawn.min(self.cap);
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sleeps_stay_within_base_and_cap() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut b = DecorrelatedJitter::new(base, cap);
        for _ in 0..100 {
            let s = b.next(&mut rng);
            assert!(s >= base, "sleep {s:?} under base");
            assert!(s <= cap, "sleep {s:?} over cap");
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = DecorrelatedJitter::new(Duration::from_millis(5), Duration::from_millis(500));
            (0..10).map(|_| b.next(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn schedule_grows_from_the_base() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = DecorrelatedJitter::new(Duration::from_millis(10), Duration::from_secs(60));
        // With a generous cap the running maximum should escape the first
        // decade: decorrelated jitter explores upward.
        let max = (0..50).map(|_| b.next(&mut rng)).max().unwrap();
        assert!(max > Duration::from_millis(30), "never grew past 3x base: {max:?}");
    }
}
