//! # rrre-client
//!
//! Resilient client for the RRRE serving protocol. One [`Client`] fronts a
//! fixed set of replica endpoints and gives callers a single
//! [`Client::request`] that hides the unreliable parts of the path:
//!
//! * **connection pooling** — idle sockets are reused per replica, with a
//!   one-shot grace redial when a pooled socket turns out to be stale;
//! * **deadline propagation** — the per-attempt timeout is also written
//!   into the request's `deadline_ms` field, so the server sheds work the
//!   client has already given up on;
//! * **retries** — idempotent ops (see [`rrre_wire::Op::is_idempotent`])
//!   are retried across replicas with capped decorrelated-jitter backoff
//!   ([`backoff::DecorrelatedJitter`]); non-idempotent ops are retried
//!   only when the failure proves the request never reached a server
//!   (connect failure, or a structured `Overloaded`/`Unavailable`
//!   refusal);
//! * **leader redirect** — a `NotLeader` refusal from a replicated shard
//!   proves the request was never applied, so it is always retried; when
//!   the refusal carries the current leader's address and that address is
//!   one of this client's replicas, the next attempt is steered straight
//!   at it instead of round-robining through followers;
//! * **hedging** — when an idempotent attempt is slower than
//!   [`ClientConfig::hedge_after`], a second copy of the request (same
//!   correlation id) is fired at another replica and the first successful
//!   response wins; the loser finishes in the background and its
//!   connection is drained or dropped, never returned with a response in
//!   flight;
//! * **circuit breaking** — each replica has a sliding-window breaker
//!   ([`breaker::Breaker`]); a replica with an open breaker is skipped by
//!   replica selection until its cooldown elapses or a health probe sees
//!   it recover;
//! * **health probing** — with [`ClientConfig::probe_interval`] set, a
//!   background thread polls each replica's `Health` op and feeds the
//!   verdicts into routing: a not-ready replica stops receiving traffic
//!   without burning a single user request, and a recovered one is closed
//!   back into rotation immediately instead of waiting for a half-open
//!   trial.
//!
//! All randomness (backoff jitter) comes from one seeded RNG, so a client
//! built with a fixed [`ClientConfig::seed`] has a reproducible retry
//! schedule — the property the chaos tests lean on.

#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod ingest;
pub mod pipeline;
mod replica;
pub mod sharded;

pub use ingest::IngestSequencer;
pub use pipeline::{Pipelined, PipelinedClient};
pub use sharded::{ShardedClient, ShardedSnapshot};

use backoff::DecorrelatedJitter;
use breaker::Breaker;
use rand::{rngs::StdRng, SeedableRng};
use replica::{Conn, Replica};
use rrre_wire::{ErrorKind, Request, Response};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Client`]. Start from `ClientConfig::default()` and
/// override fields; every duration is wall-clock.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout per dial.
    pub connect_timeout: Duration,
    /// Per-attempt request timeout; also propagated to the server as the
    /// request's `deadline_ms` when the caller didn't set one.
    pub request_timeout: Duration,
    /// Extra attempts after the first (so `retries = 2` means at most 3
    /// attempts). Applies in full to idempotent ops; non-idempotent ops
    /// only consume retries on failures that prove non-execution.
    pub retries: usize,
    /// Backoff floor between retries.
    pub backoff_base: Duration,
    /// Backoff ceiling between retries.
    pub backoff_cap: Duration,
    /// Fire a hedge at another replica when an idempotent attempt has not
    /// answered within this threshold. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Sliding-window size of each replica's circuit breaker.
    pub breaker_window: usize,
    /// Failures within the window that open the breaker.
    pub breaker_threshold: usize,
    /// How long an open breaker refuses traffic before allowing one
    /// half-open trial.
    pub breaker_cooldown: Duration,
    /// Poll each replica's `Health` op at this interval from a background
    /// thread. `None` (the default) disables probing: routing then relies
    /// on breakers alone, which keeps single-threaded tests deterministic.
    pub probe_interval: Option<Duration>,
    /// Timeout for one health probe (kept short — a probe that is slow is
    /// as good as failed).
    pub probe_timeout: Duration,
    /// Idle connections kept pooled per replica.
    pub pool_per_replica: usize,
    /// Seed for the backoff-jitter RNG; fixed seed ⇒ reproducible retry
    /// schedule.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_millis(250),
            request_timeout: Duration::from_secs(2),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            hedge_after: None,
            breaker_window: 8,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(400),
            probe_interval: None,
            probe_timeout: Duration::from_millis(250),
            pool_per_replica: 2,
            seed: 0xC11E57,
        }
    }
}

/// Why a [`Client::request`] ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorClass {
    /// No TCP connection could be established (nothing was sent — always
    /// safe to retry, even for non-idempotent ops).
    Connect,
    /// An attempt timed out waiting for the response.
    Timeout,
    /// The connection died mid-exchange (reset, mid-line EOF, partial
    /// write). Ambiguous: the server may or may not have executed the
    /// request, so only idempotent ops retry past this.
    ConnectionLost,
    /// The server answered, but with bytes that don't decode as a protocol
    /// response — or with a response whose correlation id doesn't match
    /// the request (a stale or corrupted stream).
    Protocol,
    /// The server answered with a structured error that retries could not
    /// clear.
    Server(ErrorKind),
    /// Every replica was unavailable (breaker open and not due for a
    /// trial, or probed dead).
    NoReplica,
}

/// Terminal failure of one logical request, after all retry/hedge budget
/// was spent.
#[derive(Debug, Clone)]
pub struct ClientError {
    /// Classification of the last failure.
    pub kind: ErrorClass,
    /// Attempts actually made (0 only when no replica could be selected
    /// at all).
    pub attempts: usize,
    message: String,
}

impl ClientError {
    fn new(kind: ErrorClass, message: impl Into<String>) -> Self {
        Self { kind, attempts: 0, message: message.into() }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} after {} attempt(s): {}", self.kind, self.attempts, self.message)
    }
}

impl std::error::Error for ClientError {}

/// Point-in-time view of one replica as the client sees it.
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot {
    /// Endpoint address.
    pub addr: String,
    /// Request attempts routed here (hedge arms included, probes not).
    pub attempts: u64,
    /// Attempts that failed (transport error or retryable server refusal).
    pub failures: u64,
    /// Times this replica served as the backup arm of a hedge.
    pub hedges: u64,
    /// Whether the breaker is currently open or half-open.
    pub breaker_open: bool,
    /// Lifetime count of breaker open transitions.
    pub breaker_opens: u64,
    /// Last health-probe verdict (`true` when probing is disabled).
    pub probe_ready: bool,
}

/// Point-in-time view of the whole client.
#[derive(Debug, Clone)]
pub struct ClientSnapshot {
    /// Logical requests submitted via [`Client::request`].
    pub requests: u64,
    /// Retry attempts made beyond each request's first attempt.
    pub retries: u64,
    /// Hedge arms fired.
    pub hedges: u64,
    /// Per-replica detail, in constructor order.
    pub replicas: Vec<ReplicaSnapshot>,
}

struct Shared {
    cfg: ClientConfig,
    replicas: Vec<Replica>,
    rr: AtomicUsize,
    next_id: AtomicU64,
    rng: Mutex<StdRng>,
    stop: AtomicBool,
    requests: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
}

/// A resilient multi-replica client. Cheap to share: internally one
/// `Arc`; clone-free concurrent use via `&self` methods.
pub struct Client {
    shared: Arc<Shared>,
    prober: Mutex<Option<JoinHandle<()>>>,
}

impl Client {
    /// Builds a client over the given replica endpoints (`host:port`
    /// strings). Panics if `addrs` is empty — a client with nowhere to
    /// send is a configuration bug, not a runtime condition.
    pub fn new(addrs: Vec<String>, cfg: ClientConfig) -> Self {
        assert!(!addrs.is_empty(), "Client::new: at least one replica address is required");
        let replicas = addrs
            .into_iter()
            .map(|addr| {
                Replica::new(
                    addr,
                    Breaker::new(cfg.breaker_window, cfg.breaker_threshold, cfg.breaker_cooldown),
                    cfg.pool_per_replica,
                )
            })
            .collect();
        let shared = Arc::new(Shared {
            rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
            cfg,
            replicas,
            rr: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
        });
        let prober = shared.cfg.probe_interval.map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || probe_loop(shared))
        });
        Self { shared, prober: Mutex::new(prober) }
    }

    /// Sends one logical request, applying replica selection, retries with
    /// backoff, hedging and breaker accounting. A missing `id` is filled
    /// from the client's counter and reused verbatim across every retry
    /// and hedge of this request; a missing `deadline_ms` is set to the
    /// per-attempt timeout.
    ///
    /// Returns `Ok` for any response the server committed to — including
    /// structured errors like `BadRequest` that retrying cannot fix; those
    /// are the caller's to inspect via [`Response::ok`]. Returns `Err`
    /// only when the retry budget ran out (or the op was not safe to
    /// retry).
    pub fn request(&self, req: Request) -> Result<Response, ClientError> {
        self.run(req, None)
    }

    /// [`Client::request`] bounded by an *overall* wall-clock deadline
    /// instead of a per-attempt budget. Every attempt's timeout — and the
    /// `deadline_ms` written into the request, overwriting any
    /// caller-supplied value — is the *remaining* budget at that moment
    /// (capped at [`ClientConfig::request_timeout`]), and backoff sleeps
    /// are clipped to it, so retries spend down one shared allowance
    /// rather than granting each attempt a fresh one. Once the deadline
    /// passes, the request fails with the last attempt's error (or
    /// [`ErrorClass::Timeout`] if none was made) instead of starting
    /// another attempt.
    ///
    /// This is how the scatter-gather tier splits one caller deadline
    /// across per-shard sub-requests: each sub-request gets what is *left*
    /// of the caller's budget, so a slow shard can exhaust only its own
    /// time, never another shard's.
    pub fn request_with_deadline(
        &self,
        req: Request,
        deadline: Instant,
    ) -> Result<Response, ClientError> {
        self.run(req, Some(deadline))
    }

    fn run(&self, mut req: Request, deadline: Option<Instant>) -> Result<Response, ClientError> {
        let shared = &self.shared;
        let cfg = &shared.cfg;
        if req.id.is_none() {
            req.id = Some(shared.next_id.fetch_add(1, Ordering::SeqCst));
        }
        if req.deadline_ms.is_none() && deadline.is_none() {
            req.deadline_ms = Some(cfg.request_timeout.as_millis() as u64);
        }
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let idempotent = req.op.is_idempotent();
        let mut backoff = DecorrelatedJitter::new(cfg.backoff_base, cfg.backoff_cap);
        let mut last_err: Option<ClientError> = None;
        let mut last_idx: Option<usize> = None;
        // Follow-the-leader: a `NotLeader` refusal that names a replica we
        // already know steers the next attempt straight at it instead of
        // round-robining through followers that will refuse the same way.
        let mut steer: Option<usize> = None;
        let budget = cfg.retries + 1;
        // Finer than this and the server would see a 0ms deadline, which
        // is expired by definition — not worth an attempt.
        const MIN_BUDGET: Duration = Duration::from_millis(1);
        for attempt in 1..=budget {
            if attempt > 1 {
                let mut sleep = {
                    let mut rng = shared.rng.lock().unwrap_or_else(|e| e.into_inner());
                    backoff.next(&mut rng)
                };
                if let Some(d) = deadline {
                    sleep = sleep.min(d.saturating_duration_since(Instant::now()));
                }
                std::thread::sleep(sleep);
                shared.retries.fetch_add(1, Ordering::SeqCst);
            }
            let timeout = match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining < MIN_BUDGET {
                        break;
                    }
                    // Each attempt sees — and tells the server about — only
                    // what is left of the overall budget.
                    req.deadline_ms = Some(remaining.as_millis() as u64);
                    cfg.request_timeout.min(remaining)
                }
                None => cfg.request_timeout,
            };
            let picked = steer.take().or_else(|| shared.pick(last_idx));
            let Some(idx) = picked else {
                let mut e = ClientError::new(
                    ErrorClass::NoReplica,
                    "every replica is unavailable (breaker open or probed not-ready)",
                );
                e.attempts = attempt - 1;
                last_err = Some(e);
                continue;
            };
            last_idx = Some(idx);
            let outcome = if idempotent && cfg.hedge_after.is_some() {
                self.hedged_attempt(idx, &req, timeout)
            } else {
                shared.attempt(idx, &req, timeout)
            };
            match outcome {
                Ok(resp) => {
                    let retryable = match resp.kind {
                        // A structured shed proves the request was never
                        // executed: safe to resend whatever the op.
                        Some(ErrorKind::Overloaded) | Some(ErrorKind::Unavailable) => true,
                        // A replica refusing leadership also proves
                        // non-execution; the retry re-routes (steered at
                        // the advertised leader when the hint names a
                        // replica in this set, plain failover otherwise).
                        Some(ErrorKind::NotLeader) => true,
                        // Executed-and-failed or expired-in-queue: only
                        // side-effect-free ops may go around again.
                        Some(ErrorKind::Internal) | Some(ErrorKind::DeadlineExceeded) => idempotent,
                        _ => false,
                    };
                    if resp.ok || !retryable {
                        return Ok(resp);
                    }
                    if resp.kind == Some(ErrorKind::NotLeader) {
                        steer = resp
                            .leader
                            .as_deref()
                            .and_then(|hint| shared.replicas.iter().position(|r| r.addr == hint));
                    }
                    let mut e = ClientError::new(
                        ErrorClass::Server(resp.kind.expect("retryable implies kind")),
                        resp.error.unwrap_or_else(|| "server refusal".into()),
                    );
                    e.attempts = attempt;
                    last_err = Some(e);
                }
                Err(mut e) => {
                    e.attempts = attempt;
                    // Connect failures never reached a server; everything
                    // else is ambiguous and must not be replayed for ops
                    // with side effects.
                    if !idempotent && e.kind != ErrorClass::Connect {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            if deadline.is_some() {
                ClientError::new(
                    ErrorClass::Timeout,
                    "overall deadline exhausted before any attempt completed",
                )
            } else {
                ClientError::new(ErrorClass::NoReplica, "no attempt was made")
            }
        }))
    }

    /// Convenience: sends a `Health` request to one specific replica
    /// (bypassing selection, retries and hedging) and returns its raw
    /// response. Used by operational tooling; regular traffic should go
    /// through [`Client::request`].
    pub fn health_of(&self, replica: usize) -> Result<Response, ClientError> {
        let shared = &self.shared;
        let req = Request::health().with_id(shared.next_id.fetch_add(1, Ordering::SeqCst));
        shared.attempt_io(&shared.replicas[replica], &req, shared.cfg.probe_timeout)
    }

    /// The configuration this client was built with.
    pub fn config(&self) -> &ClientConfig {
        &self.shared.cfg
    }

    /// Current counters and per-replica state.
    pub fn snapshot(&self) -> ClientSnapshot {
        let s = &self.shared;
        ClientSnapshot {
            requests: s.requests.load(Ordering::SeqCst),
            retries: s.retries.load(Ordering::SeqCst),
            hedges: s.hedges.load(Ordering::SeqCst),
            replicas: s
                .replicas
                .iter()
                .map(|r| {
                    let b = r.breaker.lock().unwrap_or_else(|e| e.into_inner());
                    ReplicaSnapshot {
                        addr: r.addr.clone(),
                        attempts: r.attempts.load(Ordering::SeqCst),
                        failures: r.failures.load(Ordering::SeqCst),
                        hedges: r.hedges.load(Ordering::SeqCst),
                        breaker_open: b.is_open(),
                        breaker_opens: b.opens(),
                        probe_ready: r.probe_ready(),
                    }
                })
                .collect(),
        }
    }

    /// Stops the health-probe thread (if any) and joins it. Idempotent;
    /// also called by `Drop`.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let handle = self.prober.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            handle.join().ok();
        }
    }

    /// One hedged attempt: fire at `primary`; if no answer within
    /// `hedge_after`, fire the same request (same id) at another replica
    /// and take the first successful response. A fast *failure* from the
    /// primary returns immediately instead of hedging — hedging is a
    /// latency tool, the outer retry loop owns failure handling.
    fn hedged_attempt(
        &self,
        primary: usize,
        req: &Request,
        timeout: Duration,
    ) -> Result<Response, ClientError> {
        let shared = &self.shared;
        let hedge_after = shared.cfg.hedge_after.expect("hedged_attempt requires hedge_after");
        let (tx, rx) = mpsc::channel::<Result<Response, ClientError>>();
        let spawn_arm = |idx: usize| {
            let shared = Arc::clone(shared);
            let req = req.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send(shared.attempt(idx, &req, timeout));
            });
        };
        spawn_arm(primary);
        match rx.recv_timeout(hedge_after) {
            Ok(res) => return res,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ClientError::new(ErrorClass::ConnectionLost, "hedge arm vanished"))
            }
        }
        // Primary is slow. Fire the backup arm if another replica is
        // available; either way keep listening — the primary may still
        // answer first.
        if let Some(idx) = shared.pick(Some(primary)) {
            if idx != primary {
                shared.hedges.fetch_add(1, Ordering::SeqCst);
                shared.replicas[idx].hedges.fetch_add(1, Ordering::SeqCst);
                spawn_arm(idx);
            }
        }
        drop(tx);
        // Both arms are bounded by connect + attempt timeouts; the recv
        // deadline below is a backstop, not the mechanism.
        let deadline = shared.cfg.connect_timeout + timeout * 2;
        let started = Instant::now();
        let mut fallback: Option<Result<Response, ClientError>> = None;
        loop {
            let remaining = match deadline.checked_sub(started.elapsed()) {
                Some(d) => d,
                None => break,
            };
            match rx.recv_timeout(remaining) {
                Ok(Ok(resp)) if resp.ok => return Ok(resp),
                Ok(res) => {
                    // Prefer a structured server response over a transport
                    // error as the reported loser.
                    let upgrade = match (&fallback, &res) {
                        (None, _) => true,
                        (Some(Err(_)), Ok(_)) => true,
                        _ => false,
                    };
                    if upgrade {
                        fallback = Some(res);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
                Err(mpsc::RecvTimeoutError::Timeout) => break,
            }
        }
        fallback.unwrap_or_else(|| {
            Err(ClientError::new(ErrorClass::Timeout, "hedged attempt produced no response"))
        })
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Shared {
    /// Selects a replica for the next attempt: round-robin from a shared
    /// cursor, preferring replicas whose last health probe said ready and
    /// whose breaker admits traffic, and de-prioritising (not excluding)
    /// the replica the previous attempt failed on. A second pass ignores
    /// probe verdicts so a stale "not ready" cannot strand the client when
    /// it's the only replica whose breaker is willing.
    fn pick(&self, prefer_not: Option<usize>) -> Option<usize> {
        let n = self.replicas.len();
        if n == 0 {
            return None;
        }
        let start = self.rr.fetch_add(1, Ordering::SeqCst) % n;
        let mut order: Vec<usize> = (0..n).map(|off| (start + off) % n).collect();
        if let Some(skip) = prefer_not {
            if n > 1 {
                order.retain(|&i| i != skip);
                order.push(skip);
            }
        }
        for honour_probes in [true, false] {
            for &i in &order {
                let r = &self.replicas[i];
                if honour_probes && !r.probe_ready() {
                    continue;
                }
                let now = Instant::now();
                if r.breaker.lock().unwrap_or_else(|e| e.into_inner()).try_acquire(now) {
                    return Some(i);
                }
            }
            if self.replicas.iter().all(|r| r.probe_ready()) {
                break; // the second pass would be identical
            }
        }
        None
    }

    /// One attempt against one replica, with breaker and counter
    /// accounting. Breaker failure = transport error or a retryable
    /// server refusal; a `BadRequest` counts as success (the replica is
    /// healthy, the request was wrong).
    fn attempt(&self, idx: usize, req: &Request, timeout: Duration) -> Result<Response, ClientError> {
        let replica = &self.replicas[idx];
        replica.attempts.fetch_add(1, Ordering::SeqCst);
        let result = self.attempt_io(replica, req, timeout);
        let failed = match &result {
            Ok(resp) => {
                !resp.ok
                    && matches!(
                        resp.kind,
                        Some(ErrorKind::Overloaded)
                            | Some(ErrorKind::Unavailable)
                            | Some(ErrorKind::Internal)
                            | Some(ErrorKind::DeadlineExceeded)
                    )
            }
            Err(_) => true,
        };
        let mut breaker = replica.breaker.lock().unwrap_or_else(|e| e.into_inner());
        if failed {
            replica.failures.fetch_add(1, Ordering::SeqCst);
            breaker.record_failure(Instant::now());
        } else {
            breaker.record_success();
        }
        result
    }

    /// The raw exchange: checkout (or dial) a connection, send one line,
    /// read one line, validate, check the connection back in. A pooled
    /// socket that dies before yielding a response gets one uncounted
    /// grace retry on a fresh dial (the pool is cleared first — if one
    /// pooled socket is stale, its siblings are too). Connections are
    /// never pooled after a timeout or a protocol violation: there may be
    /// a response in flight.
    fn attempt_io(&self, replica: &Replica, req: &Request, timeout: Duration) -> Result<Response, ClientError> {
        let line = serde_json::to_string(req).expect("Request serialisation cannot fail");
        let expect_id = req.id;
        let mut graced = false;
        loop {
            let (mut conn, pooled) = replica.checkout(self.cfg.connect_timeout).map_err(|e| {
                ClientError::new(ErrorClass::Connect, format!("{}: connect failed: {e}", replica.addr))
            })?;
            match exchange(&mut conn, &line, timeout) {
                Ok(resp_line) => {
                    let resp: Response = match serde_json::from_str(resp_line.trim()) {
                        Ok(resp) => resp,
                        Err(e) => {
                            return Err(ClientError::new(
                                ErrorClass::Protocol,
                                format!("{}: undecodable response: {e}", replica.addr),
                            ))
                        }
                    };
                    if resp.id != expect_id {
                        return Err(ClientError::new(
                            ErrorClass::Protocol,
                            format!(
                                "{}: response id {:?} does not match request id {:?}",
                                replica.addr, resp.id, expect_id
                            ),
                        ));
                    }
                    replica.checkin(conn);
                    return Ok(resp);
                }
                Err(e) => {
                    let timed_out = matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    );
                    if pooled && !graced && !timed_out {
                        graced = true;
                        replica.clear_pool();
                        continue;
                    }
                    let class = if timed_out { ErrorClass::Timeout } else { ErrorClass::ConnectionLost };
                    return Err(ClientError::new(class, format!("{}: {e}", replica.addr)));
                }
            }
        }
    }

    /// One health probe against one replica. Probes bypass breaker
    /// acquisition (their whole point is to test replicas traffic can't
    /// reach) and don't count as attempts.
    fn probe_once(&self, idx: usize) {
        let replica = &self.replicas[idx];
        let req = Request::health().with_id(self.next_id.fetch_add(1, Ordering::SeqCst));
        match self.attempt_io(replica, &req, self.cfg.probe_timeout) {
            Ok(resp) => {
                let ready = resp.ok && resp.health.as_ref().map_or(false, |h| h.ready);
                replica.set_probe_ready(ready);
                if ready {
                    // Demonstrably serving again: close the breaker now
                    // instead of waiting for a half-open trial.
                    replica.breaker.lock().unwrap_or_else(|e| e.into_inner()).probe_success();
                }
                // Alive but not ready (draining, server-side breaker):
                // probe_ready alone steers traffic away; the client-side
                // breaker is left to its own outcome history.
            }
            Err(_) => {
                replica.set_probe_ready(false);
                replica.clear_pool();
                replica
                    .breaker
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .probe_failure(Instant::now());
            }
        }
    }
}

fn probe_loop(shared: Arc<Shared>) {
    let interval = shared.cfg.probe_interval.expect("probe thread spawned without an interval");
    while !shared.stop.load(Ordering::SeqCst) {
        for idx in 0..shared.replicas.len() {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            shared.probe_once(idx);
        }
        // Sleep in short slices so shutdown() never waits a full interval.
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.stop.load(Ordering::SeqCst) {
            let step = Duration::from_millis(20).min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// Sends one request line and reads one response line within `timeout`.
fn exchange(conn: &mut Conn, line: &str, timeout: Duration) -> std::io::Result<String> {
    conn.writer.set_write_timeout(Some(timeout))?;
    conn.reader.get_ref().set_read_timeout(Some(timeout))?;
    conn.writer.write_all(line.as_bytes())?;
    conn.writer.write_all(b"\n")?;
    conn.writer.flush()?;
    let mut buf = String::new();
    match conn.reader.read_line(&mut buf) {
        Ok(0) => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        )),
        Ok(_) if buf.ends_with('\n') => Ok(buf),
        Ok(_) => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "truncated response line",
        )),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_wire::{encode_response, Op};
    use std::io::BufReader;
    use std::net::TcpListener;

    /// A scripted protocol server: each accepted connection gets its own
    /// thread reading request lines and answering via `respond` until the
    /// peer hangs up (concurrent connections matter — the prober holds a
    /// pooled connection open while requests dial new ones). Returns the
    /// bound address.
    fn mock_server(
        respond: impl Fn(&Request) -> Option<Response> + Send + Sync + 'static,
    ) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let respond = Arc::new(respond);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let respond = Arc::clone(&respond);
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let reader = BufReader::new(stream);
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        let req = rrre_wire::decode_request(&line).unwrap();
                        match respond(&req) {
                            Some(resp) => {
                                let out = encode_response(&resp);
                                if writer.write_all(out.as_bytes()).is_err()
                                    || writer.write_all(b"\n").is_err()
                                {
                                    break;
                                }
                            }
                            // None = drop the connection mid-request.
                            None => break,
                        }
                    }
                });
            }
        });
        addr
    }

    fn quick_cfg() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            retries: 2,
            ..ClientConfig::default()
        }
    }

    #[test]
    fn request_roundtrips_and_fills_id_and_deadline() {
        let addr = mock_server(|req| {
            assert!(req.id.is_some(), "client must assign an id");
            assert_eq!(req.deadline_ms, Some(500), "client must propagate its timeout as the deadline");
            Some(Response::ok(req.id))
        });
        let client = Client::new(vec![addr], quick_cfg());
        let resp = client.request(Request::stats()).unwrap();
        assert!(resp.ok);
        let snap = client.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.retries, 0);
    }

    #[test]
    fn caller_supplied_deadline_is_not_overwritten() {
        let addr = mock_server(|req| {
            assert_eq!(req.deadline_ms, Some(77));
            Some(Response::ok(req.id))
        });
        let client = Client::new(vec![addr], quick_cfg());
        let resp = client.request(Request::stats().with_deadline_ms(77)).unwrap();
        assert!(resp.ok);
    }

    #[test]
    fn connect_failure_exhausts_retries_then_errors() {
        // A port with nothing listening: bind then drop to reserve-and-free.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let client = Client::new(vec![addr], quick_cfg());
        let err = client.request(Request::stats()).unwrap_err();
        assert_eq!(err.kind, ErrorClass::Connect);
        assert_eq!(err.attempts, 3, "retries=2 means 3 attempts");
        assert_eq!(client.snapshot().retries, 2);
    }

    #[test]
    fn failover_to_the_healthy_replica() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let live = mock_server(|req| Some(Response::ok(req.id)));
        let client = Client::new(vec![dead, live], quick_cfg());
        for _ in 0..4 {
            let resp = client.request(Request::stats()).unwrap();
            assert!(resp.ok, "healthy replica must absorb the traffic");
        }
        let snap = client.snapshot();
        assert!(snap.replicas[1].attempts >= 4);
        assert!(
            snap.replicas[0].failures >= 1,
            "the dead replica should have been tried and recorded as failing"
        );
    }

    #[test]
    fn bad_request_is_returned_not_retried() {
        let addr = mock_server(|req| {
            Some(Response::error_kind(req.id, ErrorKind::BadRequest, "unknown user"))
        });
        let client = Client::new(vec![addr], quick_cfg());
        let resp = client.request(Request::predict(u32::MAX, 0)).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.kind, Some(ErrorKind::BadRequest));
        assert_eq!(client.snapshot().replicas[0].attempts, 1, "BadRequest must not be retried");
    }

    #[test]
    fn non_idempotent_op_is_not_retried_after_connection_loss() {
        let addr = mock_server(|_req| None); // read the request, then hang up
        let client = Client::new(vec![addr], quick_cfg());
        let err = client.request(Request::reload()).unwrap_err();
        assert_eq!(err.kind, ErrorClass::ConnectionLost);
        assert_eq!(err.attempts, 1, "Reload must not be replayed after an ambiguous failure");
    }

    #[test]
    fn idempotent_op_retries_through_connection_loss() {
        // Drop the first connection mid-request, serve the second.
        let served = Arc::new(AtomicU64::new(0));
        let served2 = Arc::clone(&served);
        let addr = mock_server(move |req| {
            if served2.fetch_add(1, Ordering::SeqCst) == 0 {
                None
            } else {
                Some(Response::ok(req.id))
            }
        });
        let client = Client::new(vec![addr], quick_cfg());
        let resp = client.request(Request::predict(0, 0)).unwrap();
        assert!(resp.ok);
        assert_eq!(client.snapshot().retries, 1);
    }

    #[test]
    fn not_leader_refusal_steers_the_retry_at_the_hinted_leader() {
        // Two followers that refuse with a redirect hint, one leader. The
        // first attempt lands on follower 0 (round-robin starts there); the
        // retry must jump straight to the hinted leader, skipping follower 1
        // entirely — plain failover would have tried it next.
        let leader = mock_server(|req| Some(Response::ok(req.id)));
        let hint = leader.clone();
        let f0 = mock_server(move |req| Some(Response::not_leader(req.id, Some(hint.clone()))));
        let hint = leader.clone();
        let f1 = mock_server(move |req| Some(Response::not_leader(req.id, Some(hint.clone()))));
        let client = Client::new(vec![f0, f1, leader], quick_cfg());
        // IngestReview is the op NotLeader exists for; the refusal proves
        // non-execution, so even a side-effecting op may retry through it.
        let resp = client.request(Request::ingest_review(1, 0, 0, 5.0, "good", 0)).unwrap();
        assert!(resp.ok);
        let snap = client.snapshot();
        assert_eq!(snap.replicas[0].attempts, 1, "first attempt hits follower 0");
        assert_eq!(snap.replicas[1].attempts, 0, "redirect must skip the other follower");
        assert_eq!(snap.replicas[2].attempts, 1, "retry goes straight to the leader");
        assert_eq!(snap.retries, 1);
    }

    #[test]
    fn hintless_not_leader_falls_back_to_plain_failover() {
        let follower = mock_server(|req| Some(Response::not_leader(req.id, None)));
        let leader = mock_server(|req| Some(Response::ok(req.id)));
        let client = Client::new(vec![follower, leader], quick_cfg());
        let resp = client.request(Request::ingest_review(1, 0, 0, 5.0, "good", 0)).unwrap();
        assert!(resp.ok, "failover must still find the leader without a hint");
        assert_eq!(client.snapshot().retries, 1);
    }

    #[test]
    fn not_leader_everywhere_exhausts_the_budget_and_surfaces_the_kind() {
        let addr = mock_server(|req| Some(Response::not_leader(req.id, None)));
        let client = Client::new(vec![addr], quick_cfg());
        let err = client.request(Request::ingest_review(1, 0, 0, 5.0, "good", 0)).unwrap_err();
        assert_eq!(err.kind, ErrorClass::Server(ErrorKind::NotLeader));
        assert_eq!(err.attempts, 3, "retries=2 means 3 attempts");
    }

    #[test]
    fn mismatched_response_id_is_a_protocol_error() {
        let addr = mock_server(|req| Some(Response::ok(req.id.map(|i| i + 1000))));
        let cfg = ClientConfig { retries: 0, ..quick_cfg() };
        let client = Client::new(vec![addr], cfg);
        let err = client.request(Request::stats()).unwrap_err();
        assert_eq!(err.kind, ErrorClass::Protocol);
    }

    #[test]
    fn breaker_opens_after_repeated_failures_and_no_replica_errors_follow() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = ClientConfig {
            breaker_window: 4,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60),
            retries: 0,
            ..quick_cfg()
        };
        let client = Client::new(vec![addr], cfg);
        for _ in 0..2 {
            assert_eq!(client.request(Request::stats()).unwrap_err().kind, ErrorClass::Connect);
        }
        let snap = client.snapshot();
        assert!(snap.replicas[0].breaker_open);
        assert_eq!(snap.replicas[0].breaker_opens, 1);
        // With the breaker open and a long cooldown, no attempt is even made.
        let err = client.request(Request::stats()).unwrap_err();
        assert_eq!(err.kind, ErrorClass::NoReplica);
        assert_eq!(client.snapshot().replicas[0].attempts, 2);
    }

    #[test]
    fn hedging_rescues_a_slow_replica() {
        // Replica 0 answers Predicts only after a long sleep; replica 1 is
        // fast. With hedging on, the request should come back quickly.
        let slow = mock_server(|req| {
            std::thread::sleep(Duration::from_millis(400));
            Some(Response::ok(req.id))
        });
        let fast = mock_server(|req| Some(Response::ok(req.id)));
        let cfg = ClientConfig {
            hedge_after: Some(Duration::from_millis(50)),
            request_timeout: Duration::from_secs(2),
            ..quick_cfg()
        };
        let client = Client::new(vec![slow, fast], cfg);
        // Pin the round-robin cursor onto the slow replica by making the
        // first pick; parity of the cursor decides who is primary, so just
        // measure: at least one of a few requests must hedge.
        let started = Instant::now();
        for _ in 0..4 {
            let resp = client.request(Request::predict(0, 0)).unwrap();
            assert!(resp.ok);
        }
        assert!(
            started.elapsed() < Duration::from_millis(900),
            "hedging should mask the slow replica: {:?}",
            started.elapsed()
        );
        assert!(client.snapshot().hedges >= 1, "at least one hedge must have fired");
    }

    #[test]
    fn probes_mark_dead_replicas_and_recover_them() {
        let live = mock_server(|req| {
            let mut resp = Response::ok(req.id);
            if req.op == Op::Health {
                resp.health = Some(rrre_wire::HealthDto {
                    live: true,
                    ready: true,
                    draining: false,
                    breaker_open: false,
                    generation: 1,
                });
            }
            Some(resp)
        });
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = ClientConfig {
            probe_interval: Some(Duration::from_millis(25)),
            probe_timeout: Duration::from_millis(100),
            ..quick_cfg()
        };
        let client = Client::new(vec![live, dead], cfg);
        // Wait for the prober to pass over both replicas a few times.
        std::thread::sleep(Duration::from_millis(200));
        let snap = client.snapshot();
        assert!(snap.replicas[0].probe_ready, "live replica must probe ready");
        assert!(!snap.replicas[1].probe_ready, "dead replica must probe not-ready");
        // Traffic avoids the dead replica entirely on the first pass.
        let before = client.snapshot().replicas[1].attempts;
        for _ in 0..3 {
            assert!(client.request(Request::stats()).unwrap().ok);
        }
        assert_eq!(
            client.snapshot().replicas[1].attempts,
            before,
            "probed-dead replica must receive no traffic"
        );
        client.shutdown();
    }
}
