//! Client-side sequence-id discipline for durable ingest.
//!
//! `IngestReview` is exactly-once because the *server* dedups on the
//! client-supplied `seq` — which makes the client responsible for two
//! invariants:
//!
//! 1. **never reuse a seq for a different review** (the server would ack
//!    the resend as a duplicate and silently drop the new payload), and
//! 2. **always resend the *same* seq after an ambiguous outcome** (a lost
//!    ack, a timeout, a crash mid-request) so the dedup can collapse the
//!    retry.
//!
//! [`IngestSequencer`] packages both: it hands out strictly increasing
//! sequence ids and builds the request in the same step, so a seq can
//! never be paired with two payloads. On ambiguity, resend the *returned
//! request value* — not a freshly built one. The transparent retries
//! inside [`crate::Client`] already do this correctly ([`rrre_wire::Op`]
//! classifies `IngestReview` as idempotent, and a retried request reuses
//! the original body verbatim); the sequencer matters for retries *above*
//! the client, e.g. re-driving a batch after a process restart.
//!
//! Restart discipline: persist your high-water seq (or re-derive it from
//! the server's acks) and resume with [`IngestSequencer::starting_at`] —
//! replaying an already-acked prefix is safe (acked `duplicate: true`),
//! skipping ids is safe (seqs need not be dense), but restarting from a
//! *lower* seq with different payloads is not.

use rrre_wire::Request;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocates strictly increasing ingest sequence ids and builds the
/// matching [`Request`] in one step. Safe to share across threads.
#[derive(Debug)]
pub struct IngestSequencer {
    next: AtomicU64,
}

impl IngestSequencer {
    /// A sequencer whose first allocated seq is `first`.
    pub fn starting_at(first: u64) -> Self {
        Self { next: AtomicU64::new(first) }
    }

    /// Allocates the next seq and builds the `IngestReview` request for
    /// one review. The returned request is the durable unit: resend *it*
    /// (same seq, same payload) after any ambiguous outcome.
    pub fn review(
        &self,
        user: u32,
        item: u32,
        rating: f32,
        text: impl Into<String>,
        ts: i64,
    ) -> Request {
        let seq = self.next.fetch_add(1, Ordering::SeqCst);
        Request::ingest_review(seq, user, item, rating, text, ts)
    }

    /// The next seq that would be allocated (the high-water mark to
    /// persist for restart).
    pub fn next_seq(&self) -> u64 {
        self.next.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrre_wire::Op;

    #[test]
    fn sequencer_allocates_strictly_increasing_seqs() {
        let s = IngestSequencer::starting_at(7);
        let a = s.review(1, 2, 4.0, "good", 100);
        let b = s.review(1, 3, 2.0, "bad", 101);
        assert_eq!(a.op, Op::IngestReview);
        assert_eq!((a.seq, b.seq), (Some(7), Some(8)));
        assert_eq!(s.next_seq(), 9);
    }

    #[test]
    fn sequencer_is_shareable_across_threads_without_seq_collisions() {
        let s = std::sync::Arc::new(IngestSequencer::starting_at(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    (0..50).map(|_| s.review(0, 0, 3.0, "t", 0).seq.unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "every allocated seq is unique");
    }
}
