//! Degenerate-input contracts for the ranking metrics and curves: one-class
//! label sets, single examples, and empty inputs must produce *defined*
//! finite values — never NaN, never a panic. The adversarial-robustness
//! harness feeds these metrics machine-generated subsets (e.g. "the injected
//! reviews of a zero-strength campaign"), so the degenerate cases are
//! reachable in production sweeps, not just in tests.

use rrre_metrics::{
    auc, auc_from_curve, average_precision, brmse, ndcg_at_k, pr_curve, precision_at_k, rmse,
    roc_curve,
};

#[test]
fn auc_on_one_class_sets_is_defined() {
    // All positive, all negative, and empty: AUC is undefined statistically;
    // the contract is a neutral 0.5, not NaN.
    assert_eq!(auc(&[0.9, 0.8, 0.1], &[true, true, true]), 0.5);
    assert_eq!(auc(&[0.9, 0.8, 0.1], &[false, false, false]), 0.5);
    assert_eq!(auc(&[], &[]), 0.5);
}

#[test]
fn auc_on_single_examples_is_defined() {
    assert_eq!(auc(&[0.7], &[true]), 0.5);
    assert_eq!(auc(&[0.7], &[false]), 0.5);
    // Smallest informative set: one of each class, correctly ordered.
    assert_eq!(auc(&[0.9, 0.1], &[true, false]), 1.0);
    assert_eq!(auc(&[0.1, 0.9], &[true, false]), 0.0);
    // Tied scores: the midrank correction yields exactly 0.5.
    assert_eq!(auc(&[0.5, 0.5], &[true, false]), 0.5);
}

#[test]
fn average_precision_on_one_class_sets_is_defined() {
    // No positives → 0.0 by contract (nothing to retrieve).
    assert_eq!(average_precision(&[0.9, 0.1], &[false, false]), 0.0);
    assert_eq!(average_precision(&[], &[]), 0.0);
    // All positives → every prefix has precision 1.
    assert_eq!(average_precision(&[0.9, 0.5, 0.1], &[true, true, true]), 1.0);
}

#[test]
fn average_precision_on_single_examples_is_defined() {
    assert_eq!(average_precision(&[0.3], &[true]), 1.0);
    assert_eq!(average_precision(&[0.3], &[false]), 0.0);
}

#[test]
fn ndcg_handles_one_class_and_tiny_sets() {
    let all_pos = ndcg_at_k(&[0.9, 0.1], &[true, true], 2);
    assert!((all_pos - 1.0).abs() < 1e-12);
    // No positives: DCG is 0, the paper's IDCG convention is positive → 0.
    assert_eq!(ndcg_at_k(&[0.9, 0.1], &[false, false], 2), 0.0);
    assert_eq!(ndcg_at_k(&[0.4], &[true], 1), 1.0);
    assert_eq!(ndcg_at_k(&[0.4], &[false], 1), 0.0);
    assert_eq!(ndcg_at_k(&[], &[], 0), 0.0);
}

#[test]
fn precision_at_k_handles_edges() {
    assert_eq!(precision_at_k(&[0.9], &[true], 1), 1.0);
    assert_eq!(precision_at_k(&[0.9], &[false], 5), 0.0);
    assert_eq!(precision_at_k(&[], &[], 3), 0.0);
    assert_eq!(precision_at_k(&[0.9], &[true], 0), 0.0);
}

#[test]
fn roc_curve_on_one_class_sets_is_two_finite_endpoints() {
    for labels in [vec![true, true], vec![false, false]] {
        let pts = roc_curve(&[0.8, 0.2], &labels);
        assert_eq!(pts.len(), 2, "degenerate ROC is the (0,0)→(1,1) chord");
        assert_eq!((pts[0].fpr, pts[0].tpr), (0.0, 0.0));
        assert_eq!((pts[1].fpr, pts[1].tpr), (1.0, 1.0));
        for p in &pts {
            assert!(p.fpr.is_finite() && p.tpr.is_finite());
        }
        // The chord integrates to the neutral 0.5, matching `auc`.
        assert_eq!(auc_from_curve(&pts), 0.5);
    }
}

#[test]
fn roc_curve_on_single_example_is_defined() {
    let pts = roc_curve(&[0.8], &[true]);
    assert_eq!(pts.len(), 2);
    assert!(pts.iter().all(|p| p.fpr.is_finite() && p.tpr.is_finite()));
}

#[test]
fn pr_curve_without_positives_is_empty_not_nan() {
    assert!(pr_curve(&[0.9, 0.1], &[false, false]).is_empty());
    assert!(pr_curve(&[], &[]).is_empty());
}

#[test]
fn pr_curve_on_single_positive_is_one_finite_point() {
    let pts = pr_curve(&[0.9], &[true]);
    assert_eq!(pts.len(), 1);
    assert_eq!((pts[0].recall, pts[0].precision), (1.0, 1.0));
}

#[test]
fn rmse_family_handles_empty_and_zero_weight() {
    assert_eq!(rmse(&[], &[]), 0.0);
    // brmse with every weight zero (e.g. an all-fake subset) is 0, not NaN.
    assert_eq!(brmse(&[3.0, 4.0], &[1.0, 5.0], &[0.0, 0.0]), 0.0);
    let v = brmse(&[3.0], &[4.0], &[1.0]);
    assert!((v - 1.0).abs() < 1e-6 && v.is_finite());
}

#[test]
fn nothing_degenerate_produces_nan() {
    let cases: [(&[f32], &[bool]); 5] = [
        (&[], &[]),
        (&[0.5], &[true]),
        (&[0.5], &[false]),
        (&[0.1, 0.2], &[true, true]),
        (&[0.1, 0.2], &[false, false]),
    ];
    for (scores, labels) in cases {
        assert!(!auc(scores, labels).is_nan());
        assert!(!average_precision(scores, labels).is_nan());
        assert!(!ndcg_at_k(scores, labels, scores.len()).is_nan());
        assert!(!precision_at_k(scores, labels, 1).is_nan());
        assert!(!auc_from_curve(&roc_curve(scores, labels)).is_nan());
    }
}
