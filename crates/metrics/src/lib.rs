//! # rrre-metrics
//!
//! Evaluation metrics used by the paper's experiments: RMSE and the biased
//! RMSE of Eq. (17) for rating prediction; ROC-AUC, average precision and
//! NDCG@k (Eq. 18–19) for reliability-score ranking; plus threshold-based
//! classification diagnostics.

#![warn(missing_docs)]

pub mod calibration;
pub mod classify;
pub mod curves;
pub mod poisoning;
pub mod ranking;
pub mod rmse;
pub mod stats;

pub use calibration::{brier_score, calibration_bins, expected_calibration_error, CalibrationBin};
pub use classify::Confusion;
pub use curves::{auc_from_curve, pr_curve, roc_curve, PrPoint, RocPoint};
pub use poisoning::{GridRow, PoisoningDelta, RobustnessGrid};
pub use ranking::{auc, average_precision, dcg_at_k, ndcg_at_k, precision_at_k};
pub use rmse::{brmse, mae, rmse};
pub use stats::{mean_std, paired_t_test, MeanStd, PairedTTest};
