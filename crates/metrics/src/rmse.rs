//! Rating-prediction error metrics: RMSE (Eq. 16) and the paper's biased
//! RMSE (Eq. 17), which evaluates only on benign reviews.

/// Root mean squared error over all pairs.
///
/// Returns `0.0` for empty input.
///
/// # Panics
/// Panics on length mismatch.
pub fn rmse(predictions: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "rmse: {} preds vs {} targets", predictions.len(), targets.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let sum: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| {
            let d = (p - t) as f64;
            d * d
        })
        .sum();
    (sum / predictions.len() as f64).sqrt()
}

/// Biased RMSE (paper Eq. 17): squared errors are weighted by the
/// reliability ground truth `l_ui ∈ {0, 1}` and normalised by the number of
/// benign reviews, so fake reviews contribute nothing.
///
/// `reliability` is typically 0/1 but fractional weights are honoured
/// (weighted RMSE). Returns `0.0` if the total weight is zero.
///
/// # Panics
/// Panics on length mismatches.
pub fn brmse(predictions: &[f32], targets: &[f32], reliability: &[f32]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "brmse: {} preds vs {} targets", predictions.len(), targets.len());
    assert_eq!(predictions.len(), reliability.len(), "brmse: {} preds vs {} weights", predictions.len(), reliability.len());
    let mut sum = 0.0f64;
    let mut weight = 0.0f64;
    for ((&p, &t), &l) in predictions.iter().zip(targets).zip(reliability) {
        let d = (p - t) as f64;
        sum += l as f64 * d * d;
        weight += l as f64;
    }
    if weight == 0.0 {
        0.0
    } else {
        (sum / weight).sqrt()
    }
}

/// Mean absolute error, a common companion diagnostic.
pub fn mae(predictions: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "mae: {} preds vs {} targets", predictions.len(), targets.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let sum: f64 = predictions.iter().zip(targets).map(|(&p, &t)| ((p - t) as f64).abs()).sum();
    sum / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known_values() {
        assert!((rmse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    fn brmse_ignores_fake_reviews() {
        // Second example is fake (weight 0) and wildly wrong.
        let b = brmse(&[1.0, 100.0], &[2.0, 1.0], &[1.0, 0.0]);
        assert!((b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn brmse_equals_rmse_when_all_benign() {
        let p = [1.0, 2.5, 4.0];
        let t = [2.0, 2.0, 5.0];
        let w = [1.0, 1.0, 1.0];
        assert!((brmse(&p, &t, &w) - rmse(&p, &t)).abs() < 1e-9);
    }

    #[test]
    fn brmse_zero_weight_is_zero() {
        assert_eq!(brmse(&[1.0], &[5.0], &[0.0]), 0.0);
    }

    #[test]
    fn mae_known_values() {
        assert!((mae(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-9);
    }
}
