//! Threshold-based classification diagnostics.

/// Confusion-matrix counts at a decision threshold (score ≥ threshold →
/// predicted positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds the confusion matrix.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn at_threshold(scores: &[f32], labels: &[bool], threshold: f32) -> Self {
        assert_eq!(scores.len(), labels.len(), "Confusion: {} scores vs {} labels", scores.len(), labels.len());
        let mut c = Confusion { tp: 0, fp: 0, tn: 0, fn_: 0 };
        for (&s, &l) in scores.iter().zip(labels) {
            match (s >= threshold, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Accuracy (0 on empty input).
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Precision for the positive class (0 when nothing predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall for the positive class (0 when no positives exist).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score (0 when precision + recall is 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, false, true, false];
        let c = Confusion::at_threshold(&scores, &labels, 0.5);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert!((c.accuracy() - 0.5).abs() < 1e-9);
        assert!((c.precision() - 0.5).abs() < 1e-9);
        assert!((c.recall() - 0.5).abs() < 1e-9);
        assert!((c.f1() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        let c = Confusion::at_threshold(&[], &[], 0.5);
        assert_eq!(c.accuracy(), 0.0);
        let c = Confusion::at_threshold(&[0.1], &[true], 0.5);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }
}
