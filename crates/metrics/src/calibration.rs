//! Probability-calibration diagnostics for the reliability scores: Brier
//! score and expected calibration error. A reliability head that ranks well
//! but is mis-calibrated would mislead the §III-B explanation filter, which
//! thresholds raw probabilities.

/// Brier score: mean squared error between predicted probabilities and
/// binary outcomes. Lower is better; 0.25 is the chance level for balanced
/// classes.
///
/// # Panics
/// Panics on length mismatch.
pub fn brier_score(probabilities: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "brier_score: length mismatch");
    if probabilities.is_empty() {
        return 0.0;
    }
    probabilities
        .iter()
        .zip(labels)
        .map(|(&p, &l)| {
            let d = p as f64 - if l { 1.0 } else { 0.0 };
            d * d
        })
        .sum::<f64>()
        / probabilities.len() as f64
}

/// One bin of a reliability (calibration) diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Mean predicted probability of the bin's members.
    pub mean_predicted: f64,
    /// Empirical positive rate of the bin's members.
    pub observed_rate: f64,
    /// Number of members.
    pub count: usize,
}

/// Equal-width calibration diagram with `n_bins` bins over `[0, 1]`.
/// Empty bins are omitted.
///
/// # Panics
/// Panics on length mismatch or `n_bins == 0`.
pub fn calibration_bins(probabilities: &[f32], labels: &[bool], n_bins: usize) -> Vec<CalibrationBin> {
    assert!(n_bins > 0, "calibration_bins: need at least one bin");
    assert_eq!(probabilities.len(), labels.len(), "calibration_bins: length mismatch");
    let mut sum_p = vec![0.0f64; n_bins];
    let mut pos = vec![0usize; n_bins];
    let mut count = vec![0usize; n_bins];
    for (&p, &l) in probabilities.iter().zip(labels) {
        let bin = ((p as f64 * n_bins as f64) as usize).min(n_bins - 1);
        sum_p[bin] += p as f64;
        if l {
            pos[bin] += 1;
        }
        count[bin] += 1;
    }
    (0..n_bins)
        .filter(|&b| count[b] > 0)
        .map(|b| CalibrationBin {
            mean_predicted: sum_p[b] / count[b] as f64,
            observed_rate: pos[b] as f64 / count[b] as f64,
            count: count[b],
        })
        .collect()
}

/// Expected calibration error: the count-weighted mean absolute gap between
/// predicted probability and observed rate over the bins.
pub fn expected_calibration_error(probabilities: &[f32], labels: &[bool], n_bins: usize) -> f64 {
    let bins = calibration_bins(probabilities, labels, n_bins);
    let total: usize = bins.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    bins.iter()
        .map(|b| (b.mean_predicted - b.observed_rate).abs() * b.count as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brier_extremes() {
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]), 1.0);
        assert!((brier_score(&[0.5, 0.5], &[true, false]) - 0.25).abs() < 1e-9);
        assert_eq!(brier_score(&[], &[]), 0.0);
    }

    #[test]
    fn perfectly_calibrated_scores_have_zero_ece() {
        // 10 items at p=0.8, 8 positive → bin gap 0.
        let probs = vec![0.8f32; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 8).collect();
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!(ece < 1e-6, "ece {ece}"); // f32→f64 rounding of 0.8 leaves ~1e-8
    }

    #[test]
    fn overconfident_scores_have_positive_ece() {
        // Predicts 0.95 but only half are positive.
        let probs = vec![0.95f32; 20];
        let labels: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!((ece - 0.45).abs() < 1e-6, "ece {ece}");
    }

    #[test]
    fn bins_partition_and_report_means() {
        let probs = [0.05f32, 0.15, 0.95];
        let labels = [false, false, true];
        let bins = calibration_bins(&probs, &labels, 10);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), 3);
        assert!((bins[2].mean_predicted - 0.95).abs() < 1e-6);
        assert_eq!(bins[2].observed_rate, 1.0);
    }

    #[test]
    fn probability_one_lands_in_last_bin() {
        let bins = calibration_bins(&[1.0], &[true], 4);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 1);
    }
}
