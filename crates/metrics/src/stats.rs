//! Summary statistics and significance testing for repeated-trial
//! experiment results (the paper reports means of five runs; this module
//! lets the harness also report dispersion and paired significance).

/// Mean and (sample) standard deviation of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Number of measurements.
    pub n: usize,
}

/// Computes mean and sample standard deviation.
pub fn mean_std(values: &[f64]) -> MeanStd {
    let n = values.len();
    if n == 0 {
        return MeanStd { mean: 0.0, std: 0.0, n: 0 };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let std = if n < 2 {
        0.0
    } else {
        (values.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    MeanStd { mean, std, n }
}

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedTTest {
    /// The t statistic of the mean difference `a − b`.
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub dof: usize,
    /// Mean difference `mean(a) − mean(b)`.
    pub mean_diff: f64,
    /// Two-sided significance verdict at the 5 % level, via the
    /// t-distribution critical-value table below.
    pub significant_at_5pct: bool,
}

/// Two-sided 5 % critical values of Student's t for dof 1..=30.
const T_CRIT_5PCT: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Paired t-test on matched measurement vectors (e.g. per-trial bRMSE of
/// two methods on the same splits).
///
/// Returns `None` for fewer than two pairs or on length mismatch.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<PairedTTest> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let ms = mean_std(&diffs);
    let dof = diffs.len() - 1;
    let se = ms.std / (diffs.len() as f64).sqrt();
    let t = if se == 0.0 {
        if ms.mean == 0.0 {
            0.0
        } else {
            f64::INFINITY * ms.mean.signum()
        }
    } else {
        ms.mean / se
    };
    let crit = T_CRIT_5PCT[(dof - 1).min(T_CRIT_5PCT.len() - 1)];
    Some(PairedTTest { t, dof, mean_diff: ms.mean, significant_at_5pct: t.abs() > crit })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_known_values() {
        let ms = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ms.mean - 5.0).abs() < 1e-12);
        assert!((ms.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
        assert_eq!(ms.n, 8);
    }

    #[test]
    fn mean_std_degenerate() {
        assert_eq!(mean_std(&[]).n, 0);
        let one = mean_std(&[3.0]);
        assert_eq!(one.mean, 3.0);
        assert_eq!(one.std, 0.0);
    }

    #[test]
    fn paired_t_detects_consistent_difference() {
        let a = [1.00, 1.02, 0.98, 1.01, 0.99];
        let b = [1.10, 1.12, 1.09, 1.11, 1.08];
        let t = paired_t_test(&a, &b).unwrap();
        assert!(t.mean_diff < 0.0);
        assert!(t.significant_at_5pct, "t = {}", t.t);
    }

    #[test]
    fn paired_t_ignores_shared_noise() {
        // The pairing removes the large shared component.
        let a = [10.0, 20.0, 30.0, 40.0];
        let b = [10.5, 20.5, 30.5, 40.5];
        let t = paired_t_test(&a, &b).unwrap();
        assert!(t.significant_at_5pct);
        assert!((t.mean_diff + 0.5).abs() < 1e-12);
    }

    #[test]
    fn paired_t_no_difference_is_insignificant() {
        let a = [1.0, 1.2, 0.8, 1.1, 0.9, 1.05];
        let b = [1.1, 0.9, 1.05, 1.0, 1.2, 0.8];
        let t = paired_t_test(&a, &b).unwrap();
        assert!(!t.significant_at_5pct, "t = {}", t.t);
    }

    #[test]
    fn paired_t_degenerate_inputs() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_none());
        // Identical vectors: zero difference, t = 0.
        let t = paired_t_test(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.t, 0.0);
        assert!(!t.significant_at_5pct);
    }
}
