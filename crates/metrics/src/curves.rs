//! ROC and precision–recall curve points, for plotting and for threshold
//! selection diagnostics.

/// One ROC point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate (recall).
    pub tpr: f64,
    /// The score threshold this point corresponds to.
    pub threshold: f32,
}

/// One precision–recall point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall.
    pub recall: f64,
    /// Precision.
    pub precision: f64,
    /// The score threshold this point corresponds to.
    pub threshold: f32,
}

fn ranked(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx
}

/// The ROC curve, one point per distinct threshold, from (0,0) to (1,1).
///
/// # Panics
/// Panics on length mismatch.
pub fn roc_curve(scores: &[f32], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "roc_curve: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0, threshold: f32::INFINITY }];
    if n_pos == 0 || n_neg == 0 {
        points.push(RocPoint { fpr: 1.0, tpr: 1.0, threshold: f32::NEG_INFINITY });
        return points;
    }
    let order = ranked(scores);
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume the whole tied block before emitting a point.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp as f64 / n_neg as f64,
            tpr: tp as f64 / n_pos as f64,
            threshold,
        });
    }
    points
}

/// The precision–recall curve over distinct thresholds, highest first.
///
/// # Panics
/// Panics on length mismatch.
pub fn pr_curve(scores: &[f32], labels: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), labels.len(), "pr_curve: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let mut points = Vec::new();
    if n_pos == 0 {
        return points;
    }
    let order = ranked(scores);
    let (mut tp, mut predicted) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            }
            predicted += 1;
            i += 1;
        }
        points.push(PrPoint {
            recall: tp as f64 / n_pos as f64,
            precision: tp as f64 / predicted as f64,
            threshold,
        });
    }
    points
}

/// Trapezoidal area under a ROC curve produced by [`roc_curve`] — a
/// cross-check for the rank-based [`crate::auc`].
pub fn auc_from_curve(points: &[RocPoint]) -> f64 {
    points
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auc;

    #[test]
    fn roc_endpoints() {
        let scores = [0.9f32, 0.6, 0.3, 0.1];
        let labels = [true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first().unwrap().fpr, 0.0);
        assert_eq!(curve.first().unwrap().tpr, 0.0);
        assert_eq!(curve.last().unwrap().fpr, 1.0);
        assert_eq!(curve.last().unwrap().tpr, 1.0);
    }

    #[test]
    fn curve_auc_matches_rank_auc() {
        let scores = [0.9f32, 0.8, 0.8, 0.55, 0.4, 0.2, 0.1];
        let labels = [true, false, true, true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        let a1 = auc_from_curve(&curve);
        let a2 = auc(&scores, &labels);
        assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
    }

    #[test]
    fn pr_curve_starts_precise_for_perfect_top() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let curve = pr_curve(&scores, &labels);
        assert!((curve[0].precision - 1.0).abs() < 1e-9);
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pr_curve(&[0.5], &[false]).len(), 0);
        let roc = roc_curve(&[0.5, 0.4], &[true, true]);
        assert_eq!(roc.len(), 2);
    }
}
