//! Poisoning-attack robustness deltas and the Table-IV-style grid.
//!
//! A robustness sweep trains one clean model and one model per (attack
//! family, strength) cell, always evaluating on the *clean* held-out test
//! set: [`PoisoningDelta`] is a cell's before/after pair, [`RobustnessGrid`]
//! the whole sweep with deterministic CSV emission (fixed float precision,
//! so the artifact is bit-identical per seed).

/// Clean-vs-poisoned metric pair for one attack cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisoningDelta {
    /// Reliability-head average precision of the clean-trained model.
    pub ap_clean: f64,
    /// Reliability-head average precision of the poison-trained model.
    pub ap_poisoned: f64,
    /// Rating-head RMSE of the clean-trained model.
    pub rmse_clean: f64,
    /// Rating-head RMSE of the poison-trained model.
    pub rmse_poisoned: f64,
}

impl PoisoningDelta {
    /// How much average precision the attack cost (positive = damage).
    pub fn ap_degradation(&self) -> f64 {
        self.ap_clean - self.ap_poisoned
    }

    /// How much rating RMSE the attack added (positive = damage).
    pub fn rmse_inflation(&self) -> f64 {
        self.rmse_poisoned - self.rmse_clean
    }
}

/// One row of the robustness grid: an attack cell plus its deltas and the
/// detectability of the injected reviews themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// Attack family name (stable CSV value).
    pub family: String,
    /// Attack strength (injected fakes / base corpus size).
    pub strength: f64,
    /// Number of injected fake reviews.
    pub n_injected: usize,
    /// Clean-vs-poisoned metric pair.
    pub delta: PoisoningDelta,
    /// ROC-AUC of the poisoned model separating the injected fakes from the
    /// benign test reviews — how visible the campaign still is.
    pub attack_auc: f64,
}

/// A full family × strength robustness sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RobustnessGrid {
    rows: Vec<GridRow>,
}

impl RobustnessGrid {
    /// The grid's CSV header. `scripts/ci.sh` diffs emitted grids against
    /// the committed artifact, so changing this is a schema break.
    pub const CSV_HEADER: &'static str = "family,strength,n_injected,ap_clean,ap_poisoned,ap_degradation,rmse_clean,rmse_poisoned,rmse_inflation,attack_auc";

    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row (rows keep insertion order in the CSV).
    pub fn push(&mut self, row: GridRow) {
        self.rows.push(row);
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[GridRow] {
        &self.rows
    }

    /// Deterministic CSV rendering: fixed six-decimal floats, `\n` line
    /// endings, trailing newline.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                r.family,
                r.strength,
                r.n_injected,
                r.delta.ap_clean,
                r.delta.ap_poisoned,
                r.delta.ap_degradation(),
                r.delta.rmse_clean,
                r.delta.rmse_poisoned,
                r.delta.rmse_inflation(),
                r.attack_auc,
            ));
        }
        out
    }

    /// Families whose AP degradation is monotonically non-decreasing in
    /// attack strength (rows are grouped by family and sorted by strength
    /// before the check). The acceptance oracle requires at least one.
    pub fn monotone_degradation_families(&self) -> Vec<String> {
        let mut families: Vec<String> = Vec::new();
        for r in &self.rows {
            if !families.contains(&r.family) {
                families.push(r.family.clone());
            }
        }
        families
            .into_iter()
            .filter(|fam| {
                let mut cells: Vec<(f64, f64)> = self
                    .rows
                    .iter()
                    .filter(|r| &r.family == fam)
                    .map(|r| (r.strength, r.delta.ap_degradation()))
                    .collect();
                cells.sort_by(|a, b| a.0.total_cmp(&b.0));
                cells.len() >= 2
                    && cells.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(family: &str, strength: f64, ap_poisoned: f64) -> GridRow {
        GridRow {
            family: family.into(),
            strength,
            n_injected: (strength * 100.0) as usize,
            delta: PoisoningDelta {
                ap_clean: 0.9,
                ap_poisoned,
                rmse_clean: 1.0,
                rmse_poisoned: 1.1,
            },
            attack_auc: 0.8,
        }
    }

    #[test]
    fn deltas_have_damage_sign_convention() {
        let d = PoisoningDelta { ap_clean: 0.9, ap_poisoned: 0.7, rmse_clean: 1.0, rmse_poisoned: 1.3 };
        assert!((d.ap_degradation() - 0.2).abs() < 1e-12);
        assert!((d.rmse_inflation() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn csv_is_deterministic_and_schema_stable() {
        let mut g = RobustnessGrid::new();
        g.push(row("burst", 0.1, 0.85));
        g.push(row("burst", 0.2, 0.80));
        let csv = g.to_csv();
        assert_eq!(csv, g.to_csv());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(RobustnessGrid::CSV_HEADER));
        let first = lines.next().unwrap();
        assert_eq!(first.split(',').count(), RobustnessGrid::CSV_HEADER.split(',').count());
        assert!(first.starts_with("burst,0.1000,10,0.900000,0.850000,0.050000,"));
        assert!(csv.ends_with('\n'));
    }

    #[test]
    fn monotone_check_finds_the_degrading_family() {
        let mut g = RobustnessGrid::new();
        // Degradation grows with strength for burst, shrinks for mimicry.
        g.push(row("burst", 0.1, 0.85));
        g.push(row("burst", 0.2, 0.75));
        g.push(row("mimicry", 0.1, 0.70));
        g.push(row("mimicry", 0.2, 0.88));
        assert_eq!(g.monotone_degradation_families(), vec!["burst".to_string()]);
    }

    #[test]
    fn single_cell_families_do_not_count_as_monotone() {
        let mut g = RobustnessGrid::new();
        g.push(row("burst", 0.1, 0.5));
        assert!(g.monotone_degradation_families().is_empty());
    }
}
