//! Ranking metrics for reliability-score prediction: ROC-AUC, average
//! precision, and NDCG@k (paper Eq. 18–19).

/// Sorts indices by descending score, breaking ties by index for
/// determinism.
fn ranked_indices(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx
}

/// Area under the ROC curve via the Mann–Whitney statistic, with the
/// standard midrank correction for tied scores.
///
/// Returns `0.5` when either class is empty (undefined AUC).
///
/// # Panics
/// Panics on length mismatch.
pub fn auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: {} scores vs {} labels", scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Midranks over ascending scores.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Ranks are 1-based; tied block [i, j] shares the average rank.
        let midrank = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Average precision: mean of precision@rank over the ranks of positive
/// examples, ranking by descending score.
///
/// Returns `0.0` when there are no positives.
///
/// # Panics
/// Panics on length mismatch.
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "average_precision: {} scores vs {} labels", scores.len(), labels.len());
    let order = ranked_indices(scores);
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (rank, &i) in order.iter().enumerate() {
        if labels[i] {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    if hits == 0 {
        0.0
    } else {
        sum / hits as f64
    }
}

/// DCG@k with binary gains (paper Eq. 19): `Σ_{i≤k} (2^{l_i} − 1) / log₂(i+1)`.
pub fn dcg_at_k(ranked_labels: &[bool], k: usize) -> f64 {
    ranked_labels
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &l)| if l { 1.0 / ((i + 2) as f64).log2() } else { 0.0 })
        .sum()
}

/// NDCG@k (paper Eq. 18): DCG of the score-induced ranking over the ideal
/// DCG where the top-k are all benign. Following the paper ("IDCG@k is the
/// DCG for ideal ranking where all `l_i`'s are 1"), the ideal assumes `k`
/// benign reviews exist.
///
/// Returns `0.0` for `k == 0`.
///
/// # Panics
/// Panics on length mismatch.
pub fn ndcg_at_k(scores: &[f32], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "ndcg_at_k: {} scores vs {} labels", scores.len(), labels.len());
    if k == 0 {
        return 0.0;
    }
    let order = ranked_indices(scores);
    let ranked: Vec<bool> = order.iter().map(|&i| labels[i]).collect();
    let dcg = dcg_at_k(&ranked, k);
    let ideal: Vec<bool> = vec![true; k];
    let idcg = dcg_at_k(&ideal, k);
    dcg / idcg
}

/// Precision@k of a score-induced ranking.
///
/// Returns `0.0` for `k == 0` or an empty input (defined instead of the
/// 0/0 NaN the truncation would otherwise produce).
pub fn precision_at_k(scores: &[f32], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "precision_at_k: length mismatch");
    if k == 0 || scores.is_empty() {
        return 0.0;
    }
    let order = ranked_indices(scores);
    let k = k.min(order.len());
    let hits = order.iter().take(k).filter(|&&i| labels[i]).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [true, true, false, false];
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 1.0).abs() < 1e-9);
        assert!(auc(&[0.1, 0.2, 0.8, 0.9], &labels).abs() < 1e-9);
    }

    #[test]
    fn auc_random_is_half() {
        // All-equal scores: AUC must be exactly 0.5 under midrank handling.
        let labels = [true, false, true, false, true];
        assert!((auc(&[0.5; 5], &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn average_precision_known_value() {
        // Ranking: pos, neg, pos → AP = (1/1 + 2/3) / 2
        let ap = average_precision(&[0.9, 0.5, 0.4], &[true, false, true]);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_precision_no_positives() {
        assert_eq!(average_precision(&[0.3, 0.1], &[false, false]), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let scores = [0.9, 0.8, 0.1, 0.05];
        let labels = [true, true, false, false];
        assert!((ndcg_at_k(&scores, &labels, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ndcg_penalises_high_ranked_fakes() {
        let labels = [false, true, true, true];
        let good = ndcg_at_k(&[0.1, 0.9, 0.8, 0.7], &labels, 3);
        let bad = ndcg_at_k(&[0.95, 0.9, 0.8, 0.7], &labels, 3);
        assert!(good > bad);
        assert!((good - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ndcg_monotone_decreasing_in_k_for_fixed_prefix_quality() {
        // With one fake buried at the end, larger k pulls it in.
        let mut scores = vec![0.0f32; 20];
        let mut labels = vec![true; 20];
        for (i, s) in scores.iter_mut().enumerate() {
            *s = 1.0 - i as f32 * 0.01;
        }
        labels[19] = false;
        let n10 = ndcg_at_k(&scores, &labels, 10);
        let n20 = ndcg_at_k(&scores, &labels, 20);
        assert!(n10 >= n20);
    }

    #[test]
    fn dcg_discounts_by_rank() {
        let d = dcg_at_k(&[true, true], 2);
        assert!((d - (1.0 + 1.0 / 3.0f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn precision_at_k_basic() {
        let p = precision_at_k(&[0.9, 0.8, 0.1], &[true, false, true], 2);
        assert!((p - 0.5).abs() < 1e-9);
        assert_eq!(precision_at_k(&[0.9], &[true], 0), 0.0);
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let scores = [0.5, 0.5, 0.5];
        let labels = [true, false, true];
        let a = ndcg_at_k(&scores, &labels, 3);
        let b = ndcg_at_k(&scores, &labels, 3);
        assert_eq!(a, b);
    }
}
