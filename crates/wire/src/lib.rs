//! # rrre-wire
//!
//! The serving wire protocol: newline-delimited JSON, one request per line,
//! one response per line. Extracted from `rrre-serve` so that the server
//! and the resilient client ([`rrre-client`]) share one set of types
//! without the client linking the whole serving stack.
//!
//! Requests are flat maps — an `op` discriminator plus optional operand
//! fields — rather than tagged unions, so any language's JSON library can
//! speak the protocol with one object literal:
//!
//! ```text
//! {"op":"Predict","user":3,"item":7}
//! {"op":"Recommend","user":3,"k":5,"deadline_ms":50,"id":42}
//! {"op":"Explain","item":7,"k":3}
//! {"op":"Invalidate","user":3,"item":7}
//! {"op":"Health"}
//! {"op":"Stats"}
//! ```
//!
//! Responses echo the optional client-chosen `id`, carry `ok`/`error`, and
//! populate exactly one payload field per op. `serde_json` in this
//! workspace never emits raw newlines inside a document (control characters
//! are always escaped), so one encoded response is always one line.

#![warn(missing_docs)]

use rrre_core::{Explanation, Prediction, Recommendation};
use serde::{Deserialize, Serialize};

/// Hard cap on one request line's byte length. Lines past this bound are
/// answered with a structured error and discarded instead of being
/// buffered without limit — a single client cannot balloon server memory.
pub const MAX_LINE_BYTES: usize = 16 * 1024;

/// The exhaustive set of accepted request fields. `decode_request` rejects
/// anything else: a typo like `"deadine_ms"` must fail loudly instead of
/// being silently dropped and serving with no deadline at all.
const REQUEST_FIELDS: [&str; 15] = [
    "id", "op", "user", "item", "k", "deadline_ms", "seq", "rating", "text", "ts", "epoch",
    "from", "limit", "records", "peers",
];

/// Request discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Rating + reliability for one `(user, item)` pair.
    Predict,
    /// Top-`k` items for `user` (§III-B two-stage ranking).
    Recommend,
    /// Up to `k` reliable explanation reviews for `item`.
    Explain,
    /// Engine counters.
    Stats,
    /// Liveness/readiness probe. Answered synchronously from counters —
    /// never queued, never shed — so health stays observable under
    /// overload and while the circuit breaker is open.
    Health,
    /// Drop cached tower representations for `user` and/or `item` — call
    /// after an entity gains a review.
    Invalidate,
    /// Re-load the artifact from its source directory and, if it validates,
    /// atomically swap it in as the next generation. A failed load leaves
    /// the current generation serving untouched.
    Reload,
    /// Deliberately panic inside the worker (supervision/breaker drills).
    /// Refused unless the engine was built with fault injection enabled.
    Crash,
    /// Append one review to the durable ingest WAL. Idempotent via the
    /// client-supplied `seq`: a sequence id that was already accepted is
    /// acknowledged as a duplicate without being applied again, so a client
    /// may blindly resend after an ambiguous failure (the crash-between-
    /// fsync-and-ack window) without double-applying.
    IngestReview,
    /// Fold the applied WAL records into the dataset and commit a new
    /// artifact generation (then truncate the folded segments). Not
    /// idempotent: each invocation may produce a new generation.
    Compact,
    /// Leader→follower WAL shipping: a batch of ingest records at
    /// contiguous leader-log positions starting at `from`, fenced by
    /// `epoch`. Each record carries its own CRC. The follower applies the
    /// non-overlapping suffix through its seq dedup and replies with its
    /// post-apply log count in `replicated`, so a blind redelivery is
    /// position-skipped and a gap makes the leader rewind — idempotent.
    Replicate,
    /// Follower→leader catch-up: fetch up to `limit` records starting at
    /// leader-log position `from`. A pure read.
    FetchWal,
    /// Fence-and-promote: make the receiving replica the shard's ingest
    /// leader under the (strictly higher) `epoch`, shipping to the `peers`
    /// follower addresses. Not idempotent: a resend with the same epoch is
    /// refused as stale.
    Promote,
}

impl Op {
    /// Whether retrying this op after an ambiguous transport failure is
    /// safe — i.e. a duplicate execution has no observable side effect.
    /// Reads (`Predict`/`Recommend`/`Explain`/`Stats`/`Health`) and cache
    /// eviction (`Invalidate` — evicting twice converges to the same
    /// state) are idempotent, and so is `IngestReview` — its `seq` id
    /// dedups replays server-side. `Replicate` is position- and seq-deduped
    /// by the follower and `FetchWal` is a pure read, so both resend
    /// safely. `Reload` bumps the generation, `Crash` burns a worker,
    /// `Compact` commits a new generation and `Promote` fences a new
    /// leader term, so none of those may be blindly resent.
    pub fn is_idempotent(self) -> bool {
        !matches!(self, Op::Reload | Op::Crash | Op::Compact | Op::Promote)
    }
}

/// One request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// What to do.
    pub op: Op,
    /// Target user (`Predict`, `Recommend`, `Invalidate`).
    pub user: Option<u32>,
    /// Target item (`Predict`, `Explain`, `Invalidate`).
    pub item: Option<u32>,
    /// Result count (`Recommend`, `Explain`).
    pub k: Option<usize>,
    /// Per-request deadline, measured from enqueue. A request still queued
    /// when it expires is answered with an error instead of being served.
    pub deadline_ms: Option<u64>,
    /// Client-supplied ingest sequence id (`IngestReview`). Must be unique
    /// per review and reused verbatim on retries — the server dedups on it.
    pub seq: Option<u64>,
    /// Star rating of the ingested review (`IngestReview`, `1.0..=5.0`).
    pub rating: Option<f32>,
    /// Review text of the ingested review (`IngestReview`).
    pub text: Option<String>,
    /// Publication timestamp of the ingested review (`IngestReview`).
    pub ts: Option<i64>,
    /// Replication epoch (leader term) this request was issued under
    /// (`Replicate`, `Promote`; optional fence on `IngestReview`). A
    /// replica whose persisted epoch is higher refuses with `StaleEpoch`.
    pub epoch: Option<u64>,
    /// Leader-log position of the first record in the batch (`Replicate`)
    /// or of the first record requested (`FetchWal`).
    pub from: Option<u64>,
    /// Maximum records to return (`FetchWal`).
    pub limit: Option<u64>,
    /// The shipped record batch (`Replicate`), contiguous from `from`.
    pub records: Option<Vec<ReplRecordDto>>,
    /// Follower addresses the promoted leader ships to (`Promote`).
    pub peers: Option<Vec<String>>,
}

impl Request {
    fn bare(op: Op) -> Self {
        Self {
            id: None,
            op,
            user: None,
            item: None,
            k: None,
            deadline_ms: None,
            seq: None,
            rating: None,
            text: None,
            ts: None,
            epoch: None,
            from: None,
            limit: None,
            records: None,
            peers: None,
        }
    }

    /// A `Predict` request.
    pub fn predict(user: u32, item: u32) -> Self {
        Self { user: Some(user), item: Some(item), ..Self::bare(Op::Predict) }
    }

    /// A `Recommend` request.
    pub fn recommend(user: u32, k: usize) -> Self {
        Self { user: Some(user), k: Some(k), ..Self::bare(Op::Recommend) }
    }

    /// An `Explain` request.
    pub fn explain(item: u32, k: usize) -> Self {
        Self { item: Some(item), k: Some(k), ..Self::bare(Op::Explain) }
    }

    /// A `Stats` request.
    pub fn stats() -> Self {
        Self::bare(Op::Stats)
    }

    /// A `Health` request.
    pub fn health() -> Self {
        Self::bare(Op::Health)
    }

    /// A `Reload` request.
    pub fn reload() -> Self {
        Self::bare(Op::Reload)
    }

    /// An `Invalidate` request for a user and/or an item.
    pub fn invalidate(user: Option<u32>, item: Option<u32>) -> Self {
        Self { user, item, ..Self::bare(Op::Invalidate) }
    }

    /// An `IngestReview` request. The `seq` is the client's durable
    /// sequence id for this review; resend with the *same* seq after any
    /// ambiguous failure.
    pub fn ingest_review(
        seq: u64,
        user: u32,
        item: u32,
        rating: f32,
        text: impl Into<String>,
        ts: i64,
    ) -> Self {
        Self {
            seq: Some(seq),
            user: Some(user),
            item: Some(item),
            rating: Some(rating),
            text: Some(text.into()),
            ts: Some(ts),
            ..Self::bare(Op::IngestReview)
        }
    }

    /// A `Compact` request.
    pub fn compact() -> Self {
        Self::bare(Op::Compact)
    }

    /// A `Replicate` request: ship `records` at contiguous leader-log
    /// positions starting at `from`, fenced by `epoch`. An empty batch is
    /// the position probe a freshly promoted leader uses to learn how far
    /// along each follower is.
    pub fn replicate(epoch: u64, from: u64, records: Vec<ReplRecordDto>) -> Self {
        Self {
            epoch: Some(epoch),
            from: Some(from),
            records: Some(records),
            ..Self::bare(Op::Replicate)
        }
    }

    /// A `FetchWal` catch-up request for log positions `[from, from+limit)`,
    /// fenced by the requester's `epoch`: a replica serving a lower term
    /// refuses rather than hand out records a fenced leader never committed.
    pub fn fetch_wal(epoch: u64, from: u64, limit: u64) -> Self {
        Self {
            epoch: Some(epoch),
            from: Some(from),
            limit: Some(limit),
            ..Self::bare(Op::FetchWal)
        }
    }

    /// A `Promote` request: fence a new leader term `epoch` on the
    /// receiving replica, shipping to `peers`.
    pub fn promote(epoch: u64, peers: Vec<String>) -> Self {
        Self { epoch: Some(epoch), peers: Some(peers), ..Self::bare(Op::Promote) }
    }

    /// Returns the request with a correlation id attached.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// Returns the request with a deadline attached.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// `Predict` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionDto {
    /// Predicted rating `r̂ ∈ [1, 5]`.
    pub rating: f32,
    /// Predicted reliability `l̂ ∈ [0, 1]`.
    pub reliability: f32,
}

impl From<Prediction> for PredictionDto {
    fn from(p: Prediction) -> Self {
        Self { rating: p.rating, reliability: p.reliability }
    }
}

/// One `Recommend` result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommendationDto {
    /// Recommended item id.
    pub item: u32,
    /// Item display name.
    pub item_name: String,
    /// Predicted rating.
    pub rating: f32,
    /// Predicted reliability.
    pub reliability: f32,
}

impl From<Recommendation> for RecommendationDto {
    fn from(r: Recommendation) -> Self {
        Self { item: r.item.0, item_name: r.item_name, rating: r.rating, reliability: r.reliability }
    }
}

/// One `Explain` result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplanationDto {
    /// Index of the review in the dataset.
    pub review_idx: usize,
    /// Authoring user id.
    pub user: u32,
    /// Author display name.
    pub user_name: String,
    /// Review text.
    pub text: String,
    /// Predicted rating of the pair.
    pub rating: f32,
    /// Predicted reliability of the review.
    pub reliability: f32,
    /// Whether the §IV-F pipeline filters this review for low reliability.
    pub filtered: bool,
}

impl From<Explanation> for ExplanationDto {
    fn from(e: Explanation) -> Self {
        Self {
            review_idx: e.review_idx,
            user: e.user.0,
            user_name: e.user_name,
            text: e.text,
            rating: e.rating,
            reliability: e.reliability,
            filtered: e.filtered,
        }
    }
}

/// `Health` payload: the liveness/readiness split.
///
/// *Liveness* is implied by the response arriving at all — the process is
/// up, the socket accepts, the protocol parses. *Readiness* is the
/// operational claim: the engine is willing and able to serve traffic
/// right now. A replica that is draining for shutdown or sitting behind an
/// open circuit breaker is alive but **not** ready, and load balancers /
/// resilient clients should drain traffic away from it until it recovers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthDto {
    /// The process answered — always `true` in a response you received.
    pub live: bool,
    /// Accepting traffic: not draining, breaker closed, a validated
    /// generation loaded. A failed reload does *not* clear readiness —
    /// the previous generation keeps serving unimpaired.
    pub ready: bool,
    /// The server has begun draining for shutdown.
    pub draining: bool,
    /// The panic circuit breaker is currently open.
    pub breaker_open: bool,
    /// Artifact generation currently serving.
    pub generation: u64,
}

/// `IngestReview` payload: the durability acknowledgement.
///
/// `ok: true` on the enclosing response means the review is **on disk and
/// fsynced** (or was already — `duplicate`). The ack is sent only after the
/// WAL write is durable, so a client that never sees it may safely resend
/// the same `seq`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestDto {
    /// The sequence id this ack covers (echo of the request's `seq`).
    pub seq: u64,
    /// `true` when this seq was already durably accepted — the review was
    /// *not* applied a second time.
    pub duplicate: bool,
}

/// `Compact` payload: what one compaction run folded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionDto {
    /// WAL records folded into the new artifact generation.
    pub folded: u64,
    /// The artifact generation now serving (post-reload).
    pub generation: u64,
}

/// One shipped WAL record (`Replicate` batches, `FetchWal` replies). The
/// same payload the leader's WAL frames on disk, plus a per-record CRC so
/// a relaying hop or a buggy batcher cannot silently hand a follower a
/// mangled review: the follower recomputes [`ReplRecordDto::checksum`]
/// over the payload fields and refuses the batch on mismatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplRecordDto {
    /// Client-supplied idempotency sequence id.
    pub seq: u64,
    /// Dense user id.
    pub user: u32,
    /// Dense item id.
    pub item: u32,
    /// Star rating in `[1, 5]`.
    pub rating: f32,
    /// Review timestamp.
    pub ts: i64,
    /// Review text.
    pub text: String,
    /// CRC-32 over the payload fields (see [`ReplRecordDto::checksum`]).
    pub crc: u32,
}

/// CRC-32 (IEEE 802.3, reflected polynomial), bitwise — the same function
/// the serve WAL frames records with, duplicated here so the wire crate
/// stays dependency-free.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl ReplRecordDto {
    /// The record's integrity checksum: CRC-32 over a fixed little-endian
    /// concatenation of the payload fields (`seq ‖ user ‖ item ‖
    /// rating-bits ‖ ts ‖ text`). Field order and widths are part of the
    /// wire contract — both ends must compute the identical value.
    pub fn checksum(&self) -> u32 {
        let mut buf = Vec::with_capacity(28 + self.text.len());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.user.to_le_bytes());
        buf.extend_from_slice(&self.item.to_le_bytes());
        buf.extend_from_slice(&self.rating.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.ts.to_le_bytes());
        buf.extend_from_slice(self.text.as_bytes());
        crc32(&buf)
    }

    /// Builds a record with its `crc` stamped.
    pub fn sealed(seq: u64, user: u32, item: u32, rating: f32, ts: i64, text: String) -> Self {
        let mut rec = Self { seq, user, item, rating, ts, text, crc: 0 };
        rec.crc = rec.checksum();
        rec
    }

    /// Whether the stamped `crc` matches the payload.
    pub fn verify(&self) -> bool {
        self.crc == self.checksum()
    }
}

/// Machine-readable classification of a refused request, so clients can
/// implement retry policy without parsing error strings: `Overloaded` and
/// `Unavailable` are retryable after backoff, the rest are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The request itself is malformed or references unknown entities.
    BadRequest,
    /// Shed before processing: the submission queue was full.
    Overloaded,
    /// The circuit breaker is open (or the server is at its connection
    /// cap); the engine is protecting itself.
    Unavailable,
    /// The worker failed while processing this request (e.g. a caught
    /// panic); the request may or may not be safe to retry.
    Internal,
    /// The request's deadline passed while it was queued.
    DeadlineExceeded,
    /// The request reached a replica that does not own the target entity
    /// under the current shard map. The response's `shard` field names the
    /// owning shard and `map_version` the map the verdict was made under —
    /// a client seeing a version ahead of its own should refresh its
    /// topology. Retrying the *same* replica set cannot succeed, so this
    /// is not in the retryable set; re-routing is the client's job.
    WrongShard,
    /// The request carried a replication epoch older than the replica's
    /// persisted one: the sender is a fenced-off stale leader (or a relay
    /// of one). The response's `epoch` names the current term. Never
    /// blindly retryable — the sender must stop acting as leader.
    StaleEpoch,
    /// An ingest-path request reached a replica that is not the shard's
    /// current leader (a follower, or a leader that deposed itself after
    /// being fenced). The response's `leader` field carries the last known
    /// leader address when the replica has one; re-routing there is the
    /// client's job.
    NotLeader,
}

/// The parameters a consistent-hash shard map is derived from. This is the
/// *entire* map: shard assignment is a pure function of `(seed, vnodes,
/// shards)` (see `rrre-shard`), so carrying these four scalars in the
/// artifact manifest pins every entity's owner bit-for-bit across
/// processes, replicas and generations. `version` is bumped whenever the
/// topology changes so stale clients can be told apart from current ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Monotonic topology version, carried on `WrongShard` errors.
    pub version: u64,
    /// Number of shards the entity space is partitioned into.
    pub shards: u32,
    /// Virtual nodes per shard on the hash ring — more vnodes, smoother
    /// balance and smaller remap variance.
    pub vnodes: u32,
    /// Seed of the ring/placement hash.
    pub seed: u64,
}

// Manual serde: this workspace's JSON layer carries numbers as f64, which
// silently rounds integers above 2^53 — fatal for `seed`, whose every bit
// decides entity placement. The seed travels as a hex *string* instead,
// so the spec round-trips bit-for-bit. (`version` stays numeric: it is a
// small monotonic counter, not arbitrary bits.)
impl Serialize for ShardSpec {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("version".into(), self.version.to_content()),
            ("shards".into(), self.shards.to_content()),
            ("vnodes".into(), self.vnodes.to_content()),
            ("seed".into(), serde::Content::Str(format!("{:#018x}", self.seed))),
        ])
    }
}

impl Deserialize for ShardSpec {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let seed_content = serde::content_field(content, "seed")?;
        let seed = match seed_content {
            serde::Content::Str(s) => {
                let digits = s.strip_prefix("0x").unwrap_or(s);
                u64::from_str_radix(digits, 16)
                    .map_err(|e| serde::DeError::msg(format!("bad shard seed `{s}`: {e}")))?
            }
            // Tolerate numeric seeds (hand-written specs); exact below 2^53.
            other => u64::from_content(other)?,
        };
        Ok(Self {
            version: u64::from_content(serde::content_field(content, "version")?)?,
            shards: u32::from_content(serde::content_field(content, "shards")?)?,
            vnodes: u32::from_content(serde::content_field(content, "vnodes")?)?,
            seed,
        })
    }
}

impl ShardSpec {
    /// The degenerate single-shard map: every entity owned by shard 0 —
    /// the whole-model serving mode every pre-sharding artifact used.
    pub fn single() -> Self {
        Self { version: 1, shards: 1, vnodes: 64, seed: 0x5A4D_A9C7 }
    }

    /// A map over `shards` shards with the default vnode count and seed.
    pub fn with_shards(shards: u32) -> Self {
        Self { shards, ..Self::single() }
    }

    /// Structural validation (used on artifact load and topology parse).
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shard spec declares zero shards".into());
        }
        if self.vnodes == 0 {
            return Err("shard spec declares zero vnodes per shard".into());
        }
        Ok(())
    }
}

/// One response line. Exactly one payload field is populated on success;
/// all are `null` on error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Correlation id echoed from the request (absent only when the line
    /// was too mangled to recover an `id` from).
    pub id: Option<u64>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Error description when `ok` is false.
    pub error: Option<String>,
    /// Error classification when `ok` is false (absent on legacy paths
    /// that predate the taxonomy).
    pub kind: Option<ErrorKind>,
    /// Artifact generation that served this request (success paths only).
    pub generation: Option<u64>,
    /// `Predict` payload.
    pub prediction: Option<PredictionDto>,
    /// `Recommend` payload.
    pub recommendations: Option<Vec<RecommendationDto>>,
    /// `Explain` payload.
    pub explanations: Option<Vec<ExplanationDto>>,
    /// `Stats` payload.
    pub stats: Option<StatsSnapshot>,
    /// `Health` payload.
    pub health: Option<HealthDto>,
    /// `Invalidate` payload: number of cache entries evicted.
    pub evicted: Option<u64>,
    /// Shard that produced this response (set by sharded engines), or —
    /// on a `WrongShard` error — the shard that *owns* the entity.
    pub shard: Option<u32>,
    /// Shard-map version the `shard` verdict was made under.
    pub map_version: Option<u64>,
    /// `true` when this is a *partial* scatter-gather answer: one or more
    /// shards were unreachable, so the result covers only the surviving
    /// shards' slice of the entity space. Every row present is still
    /// exactly what the full computation would score it — degraded answers
    /// are incomplete, never wrong.
    pub degraded: Option<bool>,
    /// The shard ids a degraded answer is missing.
    pub missing_shards: Option<Vec<u32>>,
    /// `IngestReview` payload: the durability acknowledgement.
    pub ingest: Option<IngestDto>,
    /// `Compact` payload.
    pub compaction: Option<CompactionDto>,
    /// Replication epoch at the responding replica (`Promote` acks,
    /// `StaleEpoch` refusals, replication-aware `Stats`).
    pub epoch: Option<u64>,
    /// Last known leader address, on `NotLeader` refusals — the
    /// follow-the-leader redirect hint.
    pub leader: Option<String>,
    /// The responder's replication-log record count: on a `Replicate` ack,
    /// how far the follower's durable log now extends (the leader rewinds
    /// its shipping cursor to this on a gap); on `FetchWal`, the serving
    /// log's total length (how far behind the fetcher still is).
    pub replicated: Option<u64>,
    /// `FetchWal` payload: the requested record range.
    pub records: Option<Vec<ReplRecordDto>>,
}

impl Response {
    /// An empty success response (payload to be filled by the caller).
    pub fn ok(id: Option<u64>) -> Self {
        Self {
            id,
            ok: true,
            error: None,
            kind: None,
            generation: None,
            prediction: None,
            recommendations: None,
            explanations: None,
            stats: None,
            health: None,
            evicted: None,
            shard: None,
            map_version: None,
            degraded: None,
            missing_shards: None,
            ingest: None,
            compaction: None,
            epoch: None,
            leader: None,
            replicated: None,
            records: None,
        }
    }

    /// An error response (no machine-readable kind; prefer the dedicated
    /// constructors on new code paths).
    pub fn error(id: Option<u64>, message: impl Into<String>) -> Self {
        Self { ok: false, error: Some(message.into()), ..Self::ok(id) }
    }

    /// An error response with an explicit [`ErrorKind`].
    pub fn error_kind(id: Option<u64>, kind: ErrorKind, message: impl Into<String>) -> Self {
        Self { kind: Some(kind), ..Self::error(id, message) }
    }

    /// The structured shed response for a full submission queue.
    pub fn overloaded(id: Option<u64>) -> Self {
        Self::error_kind(id, ErrorKind::Overloaded, "overloaded: submission queue is full, retry with backoff")
    }

    /// The structured refusal for an open circuit breaker or a saturated
    /// connection cap.
    pub fn unavailable(id: Option<u64>, why: impl Into<String>) -> Self {
        Self::error_kind(id, ErrorKind::Unavailable, why)
    }

    /// The structured reply for a worker-side failure.
    pub fn internal(id: Option<u64>, why: impl Into<String>) -> Self {
        Self::error_kind(id, ErrorKind::Internal, why)
    }

    /// The structured refusal for a request routed to a replica that does
    /// not own its target entity: names the owning shard and the map
    /// version the verdict was made under.
    pub fn wrong_shard(id: Option<u64>, owner: u32, map_version: u64) -> Self {
        let mut resp = Self::error_kind(
            id,
            ErrorKind::WrongShard,
            format!("entity is owned by shard {owner} (shard map version {map_version})"),
        );
        resp.shard = Some(owner);
        resp.map_version = Some(map_version);
        resp
    }

    /// The structured refusal for replication traffic carrying a fenced
    /// (older) epoch: names the replica's current term so the stale sender
    /// can see exactly how far behind its view is.
    pub fn stale_epoch(id: Option<u64>, got: u64, current: u64) -> Self {
        let mut resp = Self::error_kind(
            id,
            ErrorKind::StaleEpoch,
            format!("epoch {got} is stale: this replica is fenced at epoch {current}"),
        );
        resp.epoch = Some(current);
        resp
    }

    /// The structured refusal for ingest-path traffic at a replica that is
    /// not the shard's current leader, carrying the redirect hint when the
    /// replica knows one.
    pub fn not_leader(id: Option<u64>, leader: Option<String>) -> Self {
        let mut resp = Self::error_kind(
            id,
            ErrorKind::NotLeader,
            match &leader {
                Some(addr) => format!("not the ingest leader; current leader is {addr}"),
                None => "not the ingest leader and no leader is known".to_string(),
            },
        );
        resp.leader = leader;
        resp
    }

    /// Whether a client may safely resubmit after this error. Only the
    /// load-protection refusals qualify; `BadRequest` will fail again,
    /// `Internal`/`DeadlineExceeded` need the caller's judgment, and
    /// `NotLeader`/`WrongShard` need re-routing, not resending.
    pub fn is_retryable_error(&self) -> bool {
        matches!(self.kind, Some(ErrorKind::Overloaded | ErrorKind::Unavailable))
    }
}

/// Wire-serialisable snapshot of the engine's counters, returned by the
/// `Stats` request.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests processed so far.
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Micro-batches drained.
    pub batches: u64,
    /// Mean jobs per drained batch.
    pub mean_batch: f64,
    /// Largest batch drained.
    pub max_batch: u64,
    /// UserNet cache hits.
    pub user_cache_hits: u64,
    /// UserNet cache misses.
    pub user_cache_misses: u64,
    /// ItemNet cache hits.
    pub item_cache_hits: u64,
    /// ItemNet cache misses.
    pub item_cache_misses: u64,
    /// Hits over all lookups, both caches combined.
    pub cache_hit_rate: f64,
    /// Tower forward passes executed (== total cache misses).
    pub tower_evals: u64,
    /// Requests that missed their deadline while queued.
    pub deadline_misses: u64,
    /// Requests shed at submission (queue full or breaker open).
    pub shed: u64,
    /// Hot-reload attempts.
    pub reloads: u64,
    /// Hot-reload attempts that failed (old generation kept serving).
    pub reload_failures: u64,
    /// Worker panics caught and recovered by the supervisor.
    pub worker_panics: u64,
    /// Artifact generation currently serving (starts at 1, +1 per
    /// successful reload).
    pub generation: u64,
    /// Whether the panic circuit breaker is currently open.
    pub breaker_open: bool,
    /// Whether the server has begun draining for shutdown.
    pub draining: bool,
    /// Readiness: not draining and breaker closed (see [`HealthDto`]).
    pub ready: bool,
    /// Median enqueue-to-reply latency (µs, power-of-two resolution).
    pub p50_latency_us: u64,
    /// 99th-percentile enqueue-to-reply latency (µs).
    pub p99_latency_us: u64,
    /// Shard this engine serves (`None` = whole-model, owns everything).
    pub shard_id: Option<u32>,
    /// Requests refused with `WrongShard` — traffic a stale or misrouting
    /// client aimed at a replica that does not own the entity.
    pub cross_shard_rejects: u64,
    /// Shard-scoped `Recommend` requests served — this replica's side of a
    /// scatter-gather fan-out (always 0 on whole-model engines).
    pub scatter_fanout: u64,
    /// Partial answers produced. Engines themselves never degrade (they
    /// either own the entity or refuse), so this is 0 on a replica's own
    /// snapshot; the scatter-gather client fills it in merged snapshots.
    pub degraded_responses: u64,
    /// Connections currently open on the TCP front end (a gauge, not a
    /// monotonic counter; 0 on engines served without a front end).
    pub open_conns: u64,
    /// Requests currently submitted by the front end and not yet answered —
    /// the fleet-wide pipelining depth at snapshot time (a gauge).
    pub pipelined_inflight: u64,
    /// `writev` calls that flushed two or more response frames in one
    /// syscall — how often pipelining actually coalesced writes.
    pub writev_batches: u64,
    /// Read events that left an incomplete frame buffered — slow-loris
    /// and mid-frame chunk boundaries the incremental decoder absorbed.
    pub frames_partial: u64,
    /// Reviews durably accepted through `IngestReview` (first-time acks;
    /// duplicates are counted separately).
    pub ingested: u64,
    /// `IngestReview` requests acknowledged as duplicates of an already
    /// accepted sequence id (exactly-once dedup at work).
    pub ingest_duplicates: u64,
    /// Bytes currently held in un-truncated WAL segments.
    pub wal_bytes: u64,
    /// Incremental tower refreshes published (each drains a batch of WAL
    /// records into the serving generation without a reload).
    pub refreshes: u64,
    /// Compactions committed (WAL folded into a new artifact generation).
    pub compactions: u64,
    /// WAL recovery events: torn/corrupt tail records truncated at
    /// startup. Mid-log corruption is *not* counted here — it fails the
    /// engine closed instead of being silently skipped.
    pub wal_recoveries: u64,
    /// Replication epoch (leader term) this replica is fenced at (0 when
    /// replication is not configured). Fleet merges take the max.
    pub epoch: u64,
    /// Records durably applied through the replication log on this replica
    /// (leader appends plus follower-applied shipments).
    pub replicated_seq: u64,
    /// Leader only: log records not yet acked by the slowest live
    /// follower (0 on followers and unreplicated engines).
    pub replication_lag: u64,
    /// Requests refused with `StaleEpoch` — fenced stale-leader traffic
    /// this replica turned away.
    pub stale_epoch_rejections: u64,
}

/// Encodes a response as one protocol line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    serde_json::to_string(resp).expect("Response serialisation cannot fail")
}

/// Best-effort correlation-id recovery from a request line that failed
/// full decoding. If the line parses as a JSON object with an integral
/// `id`, that id is returned so the error response can still be matched to
/// its request under pipelining; anything less intact yields `None`.
pub fn extract_id(line: &str) -> Option<u64> {
    let value: serde_json::Value = serde_json::from_str(line.trim()).ok()?;
    value.get("id")?.as_u64()
}

/// Decodes one request line.
///
/// Rejects, with a structured message: lines over [`MAX_LINE_BYTES`],
/// non-object documents, unknown fields, and anything `Request`'s own
/// deserializer refuses (missing/mistyped `op`, wrong value types).
pub fn decode_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.len() > MAX_LINE_BYTES {
        return Err(format!("request line exceeds {MAX_LINE_BYTES} bytes ({} bytes)", line.len()));
    }
    let value: serde_json::Value = serde_json::from_str(line).map_err(|e| format!("bad request: {e}"))?;
    let serde_json::Value::Map(fields) = &value else {
        return Err("bad request: expected a JSON object".into());
    };
    for (key, _) in fields {
        if !REQUEST_FIELDS.contains(&key.as_str()) {
            return Err(format!("bad request: unknown field `{key}`"));
        }
    }
    serde_json::from_value(&value).map_err(|e| format!("bad request: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_lines_parse() {
        let r = decode_request(r#"{"op":"Predict","user":3,"item":7}"#).unwrap();
        assert_eq!(r.op, Op::Predict);
        assert_eq!((r.user, r.item), (Some(3), Some(7)));
        assert_eq!(r.id, None);
        assert_eq!(r.deadline_ms, None);

        let r = decode_request(r#"{"op":"Stats"}"#).unwrap();
        assert_eq!(r.op, Op::Stats);

        let r = decode_request(r#"{"op":"Health"}"#).unwrap();
        assert_eq!(r.op, Op::Health);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let err = decode_request(r#"{"op":"Frobnicate"}"#).unwrap_err();
        assert!(err.contains("Frobnicate"), "unhelpful error: {err}");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(decode_request("{not json").is_err());
        assert!(decode_request("").is_err());
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        let err = decode_request(r#"{"op":"Predict","user":3,"item":7,"deadine_ms":50}"#).unwrap_err();
        assert!(err.contains("deadine_ms"), "unhelpful error: {err}");
    }

    #[test]
    fn non_object_documents_are_rejected() {
        assert!(decode_request("[1,2,3]").unwrap_err().contains("object"));
        assert!(decode_request("42").unwrap_err().contains("object"));
        assert!(decode_request(r#""Predict""#).unwrap_err().contains("object"));
    }

    #[test]
    fn oversized_lines_are_rejected_with_the_limit_in_the_message() {
        let line = format!(r#"{{"op":"Stats{}"}}"#, " ".repeat(MAX_LINE_BYTES));
        let err = decode_request(&line).unwrap_err();
        assert!(err.contains(&MAX_LINE_BYTES.to_string()), "unhelpful error: {err}");
    }

    #[test]
    fn request_roundtrips() {
        let r = Request::recommend(5, 10).with_id(99);
        let line = serde_json::to_string(&r).unwrap();
        assert!(!line.contains('\n'), "protocol lines must be single-line");
        let back = decode_request(&line).unwrap();
        assert_eq!(back.op, Op::Recommend);
        assert_eq!((back.user, back.k, back.id), (Some(5), Some(10), Some(99)));
    }

    #[test]
    fn response_roundtrips_with_payload() {
        let mut resp = Response::ok(Some(7));
        resp.prediction = Some(PredictionDto { rating: 4.25, reliability: 0.5 });
        let line = encode_response(&resp);
        assert!(!line.contains('\n'));
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.ok);
        assert_eq!(back.id, Some(7));
        assert_eq!(back.prediction.unwrap(), PredictionDto { rating: 4.25, reliability: 0.5 });
    }

    #[test]
    fn error_responses_carry_the_message() {
        let resp = Response::error(None, "deadline exceeded");
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("deadline exceeded"));
        assert!(back.prediction.is_none());
    }

    #[test]
    fn extract_id_recovers_ids_from_undecodable_lines() {
        // Unknown field: decode fails, but the id is recoverable.
        assert!(decode_request(r#"{"op":"Predict","id":42,"speed":"max"}"#).is_err());
        assert_eq!(extract_id(r#"{"op":"Predict","id":42,"speed":"max"}"#), Some(42));
        // Unknown op: same.
        assert_eq!(extract_id(r#"{"op":"Frobnicate","id":7}"#), Some(7));
        // Too mangled, non-object, or non-integral id: nothing to echo.
        assert_eq!(extract_id("{not json"), None);
        assert_eq!(extract_id("[1,2,3]"), None);
        assert_eq!(extract_id(r#"{"id":"forty-two","op":"Stats"}"#), None);
        assert_eq!(extract_id(r#"{"id":1.5,"op":"Stats"}"#), None);
    }

    #[test]
    fn idempotency_classification_protects_side_effects() {
        for op in [
            Op::Predict,
            Op::Recommend,
            Op::Explain,
            Op::Stats,
            Op::Health,
            Op::Invalidate,
            // Ingest is seq-deduped server-side, so a blind resend is safe —
            // that is the whole point of the client-supplied sequence id.
            Op::IngestReview,
            // Replication shipping is position- and seq-deduped by the
            // follower; catch-up fetches are pure reads.
            Op::Replicate,
            Op::FetchWal,
        ] {
            assert!(op.is_idempotent(), "{op:?} must be retryable");
        }
        for op in [Op::Reload, Op::Crash, Op::Compact, Op::Promote] {
            assert!(!op.is_idempotent(), "{op:?} must never be blindly retried");
        }
    }

    #[test]
    fn ingest_request_roundtrips_with_all_operands() {
        let r = Request::ingest_review(42, 3, 7, 4.0, "solid coffee", 1234).with_id(9);
        let line = serde_json::to_string(&r).unwrap();
        assert!(!line.contains('\n'));
        let back = decode_request(&line).unwrap();
        assert_eq!(back.op, Op::IngestReview);
        assert_eq!((back.seq, back.user, back.item), (Some(42), Some(3), Some(7)));
        assert_eq!(back.rating, Some(4.0));
        assert_eq!(back.text.as_deref(), Some("solid coffee"));
        assert_eq!(back.ts, Some(1234));
        assert_eq!(back.id, Some(9));
    }

    #[test]
    fn ingest_and_compaction_payloads_roundtrip() {
        let mut resp = Response::ok(Some(1));
        resp.ingest = Some(IngestDto { seq: 17, duplicate: true });
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert_eq!(back.ingest, Some(IngestDto { seq: 17, duplicate: true }));

        let mut resp = Response::ok(Some(2));
        resp.compaction = Some(CompactionDto { folded: 128, generation: 3 });
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert_eq!(back.compaction, Some(CompactionDto { folded: 128, generation: 3 }));
    }

    #[test]
    fn replicate_request_roundtrips_and_crc_catches_mutation() {
        let rec = ReplRecordDto::sealed(41, 3, 7, 4.5, 900, "fine grinder".into());
        assert!(rec.verify());
        let r = Request::replicate(2, 17, vec![rec.clone()]).with_id(5);
        let line = serde_json::to_string(&r).unwrap();
        assert!(!line.contains('\n'));
        let back = decode_request(&line).unwrap();
        assert_eq!(back.op, Op::Replicate);
        assert_eq!((back.epoch, back.from, back.id), (Some(2), Some(17), Some(5)));
        let shipped = &back.records.unwrap()[0];
        assert_eq!(shipped, &rec);
        assert!(shipped.verify());
        // Any payload mutation after sealing fails verification.
        let mut mangled = rec.clone();
        mangled.rating = 1.0;
        assert!(!mangled.verify());
        let mut mangled = rec;
        mangled.text.push('!');
        assert!(!mangled.verify());
    }

    #[test]
    fn fetch_wal_and_promote_roundtrip() {
        let r = Request::fetch_wal(5, 128, 16);
        let back = decode_request(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back.op, Op::FetchWal);
        assert_eq!(back.epoch, Some(5));
        assert_eq!((back.from, back.limit), (Some(128), Some(16)));

        let r = Request::promote(3, vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()]);
        let back = decode_request(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back.op, Op::Promote);
        assert_eq!(back.epoch, Some(3));
        assert_eq!(back.peers.as_deref().map(|p| p.len()), Some(2));
    }

    #[test]
    fn stale_epoch_carries_the_current_term_and_is_not_retryable() {
        let resp = Response::stale_epoch(Some(4), 2, 5);
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert!(!back.ok);
        assert_eq!(back.kind, Some(ErrorKind::StaleEpoch));
        assert_eq!(back.epoch, Some(5));
        // A fenced leader must stop, not retry into the new term's quorum.
        assert!(!back.is_retryable_error());
    }

    #[test]
    fn not_leader_carries_the_redirect_hint() {
        let resp = Response::not_leader(Some(8), Some("127.0.0.1:9000".into()));
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert!(!back.ok);
        assert_eq!(back.kind, Some(ErrorKind::NotLeader));
        assert_eq!(back.leader.as_deref(), Some("127.0.0.1:9000"));
        // Blind resend to the same replica cannot succeed; the redirect is
        // the client's job (it is handled specially, not via this flag).
        assert!(!back.is_retryable_error());

        let hintless = Response::not_leader(None, None);
        assert!(hintless.leader.is_none());
        assert!(hintless.error.unwrap().contains("no leader is known"));
    }

    #[test]
    fn replicate_ack_payload_roundtrips() {
        let mut resp = Response::ok(Some(2));
        resp.replicated = Some(640);
        resp.epoch = Some(3);
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert_eq!(back.replicated, Some(640));
        assert_eq!(back.epoch, Some(3));
        let plain: Response = serde_json::from_str(&encode_response(&Response::ok(None))).unwrap();
        assert_eq!(plain.replicated, None);
        assert_eq!(plain.records, None);
    }

    #[test]
    fn wrong_shard_carries_owner_and_map_version() {
        let resp = Response::wrong_shard(Some(9), 2, 7);
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert!(!back.ok);
        assert_eq!(back.kind, Some(ErrorKind::WrongShard));
        assert_eq!(back.shard, Some(2));
        assert_eq!(back.map_version, Some(7));
        assert_eq!(back.id, Some(9));
        // Mis-routing is not a transient server condition: re-sending to
        // the same replica set cannot succeed, so it must not be blindly
        // retryable — re-routing is the client's job.
        assert!(!back.is_retryable_error());
    }

    #[test]
    fn degraded_flags_roundtrip() {
        let mut resp = Response::ok(Some(1));
        resp.degraded = Some(true);
        resp.missing_shards = Some(vec![1, 2]);
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        assert_eq!(back.degraded, Some(true));
        assert_eq!(back.missing_shards.as_deref(), Some(&[1u32, 2][..]));
        // Absent on ordinary responses.
        let plain: Response = serde_json::from_str(&encode_response(&Response::ok(None))).unwrap();
        assert_eq!(plain.degraded, None);
        assert_eq!(plain.missing_shards, None);
    }

    #[test]
    fn shard_spec_validates_and_roundtrips() {
        let spec = ShardSpec::with_shards(3);
        assert!(spec.validate().is_ok());
        assert_eq!(ShardSpec::single().shards, 1);
        assert!(ShardSpec { shards: 0, ..spec }.validate().is_err());
        assert!(ShardSpec { vnodes: 0, ..spec }.validate().is_err());
        let line = serde_json::to_string(&spec).unwrap();
        let back: ShardSpec = serde_json::from_str(&line).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn health_payload_roundtrips() {
        let mut resp = Response::ok(Some(3));
        resp.health = Some(HealthDto {
            live: true,
            ready: false,
            draining: true,
            breaker_open: false,
            generation: 4,
        });
        let back: Response = serde_json::from_str(&encode_response(&resp)).unwrap();
        let h = back.health.unwrap();
        assert!(h.live && !h.ready && h.draining && !h.breaker_open);
        assert_eq!(h.generation, 4);
    }
}
