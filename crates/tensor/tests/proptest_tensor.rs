//! Property-based tests of the tensor algebra and the autograd engine.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use rrre_tensor::gradcheck::{check_gradients, GradCheck};
use rrre_tensor::{init, Params, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_associative(
        a in tensor_strategy(2, 3),
        b in tensor_strategy(3, 4),
        c in tensor_strategy(4, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-3), "{left:?} vs {right:?}");
    }

    #[test]
    fn transpose_reverses_matmul(a in tensor_strategy(3, 4), b in tensor_strategy(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn add_commutes_and_sub_inverts(a in tensor_strategy(3, 3), b in tensor_strategy(3, 3)) {
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
        prop_assert!(a.add(&b).sub(&b).approx_eq(&a, 1e-4));
    }

    #[test]
    fn scale_distributes(a in tensor_strategy(2, 5), alpha in -2.0f32..2.0, beta in -2.0f32..2.0) {
        let lhs = a.scale(alpha + beta);
        let rhs = a.scale(alpha).add(&a.scale(beta));
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn sum_rows_then_sum_matches_total(a in tensor_strategy(4, 3)) {
        prop_assert!((a.sum_rows().sum() - a.sum()).abs() < 1e-4);
        prop_assert!((a.sum_cols().sum() - a.sum()).abs() < 1e-4);
    }

    #[test]
    fn gather_rows_preserves_content(a in tensor_strategy(5, 2), idx in prop::collection::vec(0usize..5, 1..8)) {
        let g = a.gather_rows(&idx);
        for (row, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(row), a.row(i));
        }
    }
}

/// Builds a random small network on the tape and checks all gradients
/// numerically. This fuzzes the *composition* of ops, not just each op.
fn random_network_gradcheck(seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = Params::new();
    let in_dim = 2 + (seed % 3) as usize;
    let hidden = 2 + (seed % 4) as usize;
    let w1 = params.register("w1", init::xavier_uniform(&mut rng, in_dim, hidden));
    let b1 = params.register("b1", init::normal(&mut rng, 1, hidden, 0.0, 0.1));
    let w2 = params.register("w2", init::xavier_uniform(&mut rng, hidden, 1));
    let x = init::normal(&mut rng, 3, in_dim, 0.0, 1.0);
    // Smooth activations only: central differences at a ReLU kink measure
    // the subgradient average (≈0.5) while the analytic side commits to one
    // branch, so random sweeps would flag mathematically-correct gradients.
    // ReLU has its own deterministic gradcheck in `nn::conv`.
    let variant = seed % 3;

    let mismatches = check_gradients(&mut params, GradCheck::default(), move |p, tape| {
        let xv = tape.constant(x.clone());
        let w1v = tape.param(p, w1);
        let b1v = tape.param(p, b1);
        let w2v = tape.param(p, w2);
        let h = tape.affine(xv, w1v, b1v);
        let h = match variant {
            0 => tape.tanh(h),
            1 => tape.sigmoid(h),
            _ => tape.softmax_rows(h),
        };
        let out = tape.matmul(h, w2v);
        let sq = tape.square(out);
        tape.mean_all(sq)
    });
    mismatches.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_networks_pass_gradcheck(seed in 0u64..10_000) {
        prop_assert_eq!(random_network_gradcheck(seed), 0);
    }
}

/// The committed `.proptest-regressions` sibling of this file must be
/// found and honoured: its recorded case replays before any novel case on
/// every run of the properties above.
#[test]
fn committed_regression_file_is_discovered_and_replayed() {
    let path = proptest::regressions::locate(file!(), env!("CARGO_MANIFEST_DIR"))
        .expect("regression file must be locatable from file!() + CARGO_MANIFEST_DIR");
    assert!(path.is_file(), "expected committed file at {}", path.display());
    assert!(path.ends_with("proptest_tensor.proptest-regressions"), "{}", path.display());

    let text = std::fs::read_to_string(&path).unwrap();
    let states = proptest::regressions::parse(&text);
    assert_eq!(states.len(), 1, "the committed file records one case: {text}");

    // Run one of this file's properties through the same entry point the
    // macro uses and observe the recorded state sampling first.
    let recorded = states[0];
    let mut first_state = None;
    proptest::run_property_with_source(
        "proptest_tensor::committed_regression_probe",
        file!(),
        env!("CARGO_MANIFEST_DIR"),
        &ProptestConfig::with_cases(2),
        |rng| {
            if first_state.is_none() {
                first_state = Some(rng.state());
            }
            prop_assert_eq!(random_network_gradcheck(rng.next_u64() % 10_000), 0);
            Ok(())
        },
    );
    assert_eq!(first_state, Some(recorded), "the recorded case must replay first");
}
