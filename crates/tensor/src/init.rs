//! Weight initialisation schemes.
//!
//! All initialisers are deterministic given the supplied RNG, which the whole
//! workspace threads explicitly (seeded `StdRng`) so every experiment is
//! reproducible run-to-run.

use crate::Tensor;
use rand::Rng;

/// Samples every element i.i.d. uniform in `[lo, hi)`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform: empty interval [{lo}, {hi})");
    let mut t = Tensor::zeros(rows, cols);
    for x in t.as_mut_slice() {
        *x = rng.gen_range(lo..hi);
    }
    t
}

/// Samples every element i.i.d. from `N(mean, std²)` via Box–Muller.
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, mean: f32, std: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for x in t.as_mut_slice() {
        *x = mean + std * standard_normal(rng);
    }
    t
}

/// A single draw from the standard normal distribution (Box–Muller).
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (std::f32::consts::TAU * u2).cos();
    }
}

/// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// The default for the dense and attention weights of the RRRE towers.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, fan_in, fan_out, -a, a)
}

/// He/Kaiming normal: `N(0, 2/fan_in)`, used ahead of ReLU non-linearities
/// (the DeepCoNN convolution stack).
pub fn he_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    normal(rng, fan_in, fan_out, 0.0, (2.0 / fan_in as f32).sqrt())
}

/// Small-scale normal used for embedding tables (`N(0, scale²)`).
pub fn embedding(rng: &mut impl Rng, vocab: usize, dim: usize, scale: f32) -> Tensor {
    normal(rng, vocab, dim, 0.0, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&mut rng, 20, 20, -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = normal(&mut rng, 100, 100, 1.0, 2.0);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = xavier_uniform(&mut rng, 4, 4, );
        let big = xavier_uniform(&mut rng, 400, 400);
        assert!(small.as_slice().iter().map(|x| x.abs()).fold(0.0, f32::max)
            > big.as_slice().iter().map(|x| x.abs()).fold(0.0, f32::max));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert!(normal(&mut a, 3, 3, 0.0, 1.0).approx_eq(&normal(&mut b, 3, 3, 0.0, 1.0), 0.0));
    }
}
