//! First-order optimisers over a [`Params`] store.

use crate::{Params, Tensor};

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "Sgd: non-positive learning rate {lr}");
        assert!((0.0..1.0).contains(&momentum), "Sgd: momentum {momentum} outside [0, 1)");
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Applies one update from the accumulated gradients, then leaves the
    /// gradients untouched (call [`Params::zero_grads`] afterwards).
    pub fn step(&mut self, params: &mut Params) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .ids()
                .map(|id| {
                    let (r, c) = params.get(id).shape();
                    Tensor::zeros(r, c)
                })
                .collect();
        }
        for (i, id) in params.ids().enumerate().collect::<Vec<_>>() {
            let grad = params.grad(id).clone();
            let v = &mut self.velocity[i];
            if self.momentum > 0.0 {
                v.map_inplace(|x| x * self.momentum);
                v.axpy(1.0, &grad);
                params.get_mut(id).axpy(-self.lr, &v.clone());
            } else {
                params.get_mut(id).axpy(-self.lr, &grad);
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabiliser.
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with the canonical `β₁ = 0.9, β₂ = 0.999`.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates an Adam optimiser with explicit decay rates.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "Adam: non-positive learning rate {lr}");
        Self { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The full optimiser state `(t, m, v)` for checkpointing. `m`/`v` are
    /// empty until the first [`Adam::step`] (they initialise lazily).
    pub fn state(&self) -> (u64, &[Tensor], &[Tensor]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores state captured by [`Adam::state`], so a resumed training
    /// run continues with bit-identical updates. `m` and `v` must have the
    /// same length (one moment pair per parameter, in registration order).
    pub fn restore(&mut self, t: u64, m: Vec<Tensor>, v: Vec<Tensor>) -> Result<(), String> {
        if m.len() != v.len() {
            return Err(format!("Adam state moment count mismatch: {} m vs {} v", m.len(), v.len()));
        }
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Applies one Adam update from the accumulated gradients.
    pub fn step(&mut self, params: &mut Params) {
        if self.m.len() != params.len() {
            let zeros = |p: &Params| {
                p.ids()
                    .map(|id| {
                        let (r, c) = p.get(id).shape();
                        Tensor::zeros(r, c)
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros(params);
            self.v = zeros(params);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in params.ids().enumerate().collect::<Vec<_>>() {
            let grad = params.grad(id).clone();
            let m = &mut self.m[i];
            m.map_inplace(|x| x * self.beta1);
            m.axpy(1.0 - self.beta1, &grad);
            let v = &mut self.v[i];
            let g_sq = grad.map(|x| x * x);
            v.map_inplace(|x| x * self.beta2);
            v.axpy(1.0 - self.beta2, &g_sq);

            let m_hat = self.m[i].scale(1.0 / bc1);
            let v_hat = self.v[i].scale(1.0 / bc2);
            let update = m_hat.zip_map(&v_hat, |mh, vh| mh / (vh.sqrt() + self.eps));
            params.get_mut(id).axpy(-self.lr, &update);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tape, Tensor};

    /// Minimises `(x - 3)²` and checks convergence.
    fn optimise(mut step: impl FnMut(&mut Params), params: &mut Params, iters: usize) -> f32 {
        let id = params.ids().next().unwrap();
        for _ in 0..iters {
            params.zero_grads();
            let mut tape = Tape::new();
            let x = tape.param(params, id);
            let t = tape.constant(Tensor::scalar(3.0));
            let d = tape.sub(x, t);
            let sq = tape.square(d);
            let loss = tape.sum_all(sq);
            tape.backward(loss, params);
            step(params);
        }
        params.get(id).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = Params::new();
        params.register("x", Tensor::scalar(-5.0));
        let mut opt = Sgd::new(0.1, 0.0);
        let x = optimise(|p| opt.step(p), &mut params, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain_on_ravine() {
        let run = |momentum: f32| {
            let mut params = Params::new();
            params.register("x", Tensor::scalar(-5.0));
            let mut opt = Sgd::new(0.02, momentum);
            let x = optimise(|p| opt.step(p), &mut params, 40);
            (x - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = Params::new();
        params.register("x", Tensor::scalar(-5.0));
        let mut opt = Adam::new(0.3);
        let x = optimise(|p| opt.step(p), &mut params, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_step_counter_advances() {
        let mut params = Params::new();
        params.register("x", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut params);
        opt.step(&mut params);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        // Two optimisers over identical params: one runs straight through,
        // the other is checkpointed and restored mid-run. Trajectories must
        // match exactly.
        let build = || {
            let mut p = Params::new();
            p.register("x", Tensor::scalar(-5.0));
            p
        };
        let mut pa = build();
        let mut opt_a = Adam::new(0.3);
        let _ = optimise(|p| opt_a.step(p), &mut pa, 10);

        let mut pb = build();
        let mut opt_b = Adam::new(0.3);
        let _ = optimise(|p| opt_b.step(p), &mut pb, 5);
        let (t, m, v) = opt_b.state();
        let (t, m, v) = (t, m.to_vec(), v.to_vec());
        let mut opt_c = Adam::new(0.3);
        opt_c.restore(t, m, v).unwrap();
        let _ = optimise(|p| opt_c.step(p), &mut pb, 5);

        let id = pa.ids().next().unwrap();
        assert_eq!(pa.get(id).item().to_bits(), pb.get(id).item().to_bits());
    }

    #[test]
    fn adam_restore_rejects_mismatched_moments() {
        let mut opt = Adam::new(0.1);
        assert!(opt.restore(3, vec![Tensor::zeros(1, 1)], vec![]).is_err());
    }
}
