//! Shape-manipulating ops: concatenation, slicing, gathering, unfolding.

use crate::tape::{Op, Tape, Var};
use crate::Tensor;

impl Tape {
    /// Horizontal concatenation.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Tensor::concat_cols(&tensors);
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Vertical concatenation.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the column counts differ.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Tensor::concat_rows(&tensors);
        self.push(value, Op::ConcatRows(parts.to_vec()))
    }

    /// Copies columns `start..end` into a new node.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let value = self.value(a).slice_cols(start, end);
        self.push(value, Op::SliceCols(a, start, end))
    }

    /// Gathers the listed rows of `table` (an embedding lookup when `table`
    /// is a parameter). Duplicate indices accumulate gradient correctly.
    pub fn gather_rows(&mut self, table: Var, indices: &[usize]) -> Var {
        let value = self.value(table).gather_rows(indices);
        self.push(value, Op::GatherRows { table, indices: indices.to_vec() })
    }

    /// Sliding-window unfold turning `[T, d]` into `[T-width+1, width*d]`,
    /// the im2col step of a 1-D convolution over time.
    ///
    /// # Panics
    /// Panics if `width` is zero or exceeds the number of rows.
    pub fn im2col(&mut self, x: Var, width: usize) -> Var {
        let src = self.value(x);
        let (t, d) = src.shape();
        assert!(width >= 1 && width <= t, "im2col: width {width} invalid for {t} timesteps");
        let windows = t + 1 - width;
        let mut value = Tensor::zeros(windows, width * d);
        for w in 0..windows {
            for off in 0..width {
                let dst_start = off * d;
                value.row_mut(w)[dst_start..dst_start + d].copy_from_slice(src.row(w + off));
            }
        }
        self.push(value, Op::Im2Col { x, width })
    }

    /// Max-over-time pooling: column-wise maximum over rows, `[T, f] -> [1, f]`.
    pub fn max_over_rows(&mut self, x: Var) -> Var {
        let src = self.value(x);
        let (t, f) = src.shape();
        assert!(t > 0, "max_over_rows: empty input");
        let mut value = Tensor::full(1, f, f32::NEG_INFINITY);
        let mut argmax = vec![0usize; f];
        for r in 0..t {
            for (c, &x_val) in src.row(r).iter().enumerate() {
                if x_val > value.get(0, c) {
                    value.set(0, c, x_val);
                    argmax[c] = r;
                }
            }
        }
        self.push(value, Op::MaxOverRows { x, argmax })
    }
}

#[cfg(test)]
mod tests {
    use crate::{Params, Tape, Tensor};

    #[test]
    fn concat_slice_roundtrip_grad() {
        let mut params = Params::new();
        let a_id = params.register("a", Tensor::ones(1, 2));
        let b_id = params.register("b", Tensor::ones(1, 3));
        let mut tape = Tape::new();
        let a = tape.param(&params, a_id);
        let b = tape.param(&params, b_id);
        let cat = tape.concat_cols(&[a, b]);
        assert_eq!(tape.shape(cat), (1, 5));
        let right = tape.slice_cols(cat, 2, 5);
        let loss = tape.sum_all(right);
        tape.backward(loss, &mut params);
        assert!(params.grad(a_id).approx_eq(&Tensor::zeros(1, 2), 1e-6));
        assert!(params.grad(b_id).approx_eq(&Tensor::ones(1, 3), 1e-6));
    }

    #[test]
    fn gather_rows_accumulates_duplicates() {
        let mut params = Params::new();
        let t_id = params.register("table", Tensor::ones(3, 2));
        let mut tape = Tape::new();
        let t = tape.param(&params, t_id);
        let g = tape.gather_rows(t, &[1, 1, 2]);
        let loss = tape.sum_all(g);
        tape.backward(loss, &mut params);
        let expected = Tensor::from_vec(3, 2, vec![0.0, 0.0, 2.0, 2.0, 1.0, 1.0]);
        assert!(params.grad(t_id).approx_eq(&expected, 1e-6));
    }

    #[test]
    fn im2col_layout() {
        let mut tape = Tape::new();
        // 3 timesteps of dim 2: [[1,2],[3,4],[5,6]], width 2
        let x = tape.constant(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let u = tape.im2col(x, 2);
        assert_eq!(tape.shape(u), (2, 4));
        assert_eq!(tape.value(u).row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(tape.value(u).row(1), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn max_over_rows_routes_gradient_to_argmax() {
        let mut params = Params::new();
        let x_id = params.register("x", Tensor::from_vec(3, 2, vec![1.0, 9.0, 5.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new();
        let x = tape.param(&params, x_id);
        let m = tape.max_over_rows(x);
        assert_eq!(tape.value(m).as_slice(), &[5.0, 9.0]);
        let loss = tape.sum_all(m);
        tape.backward(loss, &mut params);
        let expected = Tensor::from_vec(3, 2, vec![0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert!(params.grad(x_id).approx_eq(&expected, 1e-6));
    }
}
