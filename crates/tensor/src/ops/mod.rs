//! Forward builders for every differentiable operation.
//!
//! Each method records one [`crate::tape::Op`] node on the tape and returns a
//! [`crate::Var`] handle. Shape validation happens eagerly here so that a
//! malformed graph fails at construction with the offending op named, not
//! deep inside the backward sweep.

mod activation;
mod linalg;
mod loss_ops;
mod reduce;
mod structural;
