//! Arithmetic and linear-algebra ops.

use crate::tape::{Op, Tape, Var};

impl Tape {
    /// Element-wise sum of two same-shaped nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Adds a `1 × c` row vector to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, row: Var) -> Var {
        let value = self.value(a).add_row_broadcast(self.value(row));
        self.push(value, Op::AddRowBroadcast(a, row))
    }

    /// Multiplies every row `r` of `a` by the scalar `col[r]` (`col` is `r × 1`).
    pub fn mul_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        let av = self.value(a);
        let cv = self.value(col);
        assert_eq!(cv.cols(), 1, "mul_col_broadcast: rhs must be a column vector");
        assert_eq!(cv.rows(), av.rows(), "mul_col_broadcast: {} rows vs {} weights", av.rows(), cv.rows());
        let mut value = av.clone();
        for r in 0..value.rows() {
            let s = cv.get(r, 0);
            for x in value.row_mut(r) {
                *x *= s;
            }
        }
        self.push(value, Op::MulColBroadcast(a, col))
    }

    /// Scalar multiple `alpha * a`.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.value(a).scale(alpha);
        self.push(value, Op::Scale(a, alpha))
    }

    /// Negation, recorded as a scale by `-1`.
    pub fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.value(a).map(|x| x + alpha);
        self.push(value, Op::AddScalar(a))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul(a, b))
    }

    /// Materialised transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        self.push(value, Op::Transpose(a))
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x * x);
        self.push(value, Op::Square(a))
    }

    /// Affine map `x · w + b` with `b` broadcast over rows — the fundamental
    /// dense-layer primitive.
    pub fn affine(&mut self, x: Var, w: Var, b: Var) -> Var {
        let xw = self.matmul(x, w);
        self.add_row_broadcast(xw, b)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Params, Tape, Tensor};

    #[test]
    fn add_and_matmul_forward() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.constant(Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let s = tape.add(a, b);
        assert_eq!(tape.value(s).as_slice(), &[4.0, 6.0]);

        let w = tape.constant(Tensor::from_vec(2, 1, vec![1.0, -1.0]));
        let p = tape.matmul(s, w);
        assert_eq!(tape.value(p).item(), -2.0);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1
        let mut params = Params::new();
        let a_id = params.register("a", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b_id = params.register("b", Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let mut tape = Tape::new();
        let a = tape.param(&params, a_id);
        let b = tape.param(&params, b_id);
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        tape.backward(loss, &mut params);
        let ones = Tensor::ones(2, 2);
        assert!(params.grad(a_id).approx_eq(&ones.matmul_nt(params.get(b_id)), 1e-5));
        assert!(params.grad(b_id).approx_eq(&params.get(a_id).matmul_tn(&ones), 1e-5));
    }

    #[test]
    fn mul_col_broadcast_weights_rows() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let w = tape.constant(Tensor::col_vector(&[2.0, 0.5]));
        let out = tape.mul_col_broadcast(a, w);
        assert_eq!(tape.value(out).as_slice(), &[2.0, 4.0, 1.5, 2.0]);
    }

    #[test]
    fn gradient_accumulates_on_reuse() {
        // loss = sum(x + x) => dx = 2
        let mut params = Params::new();
        let x_id = params.register("x", Tensor::ones(1, 3));
        let mut tape = Tape::new();
        let x = tape.param(&params, x_id);
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut params);
        assert!(params.grad(x_id).approx_eq(&Tensor::full(1, 3, 2.0), 1e-6));
    }
}
