//! Fused loss ops that need custom numerics.

use crate::tape::{Op, Tape, Var};
use crate::Tensor;

impl Tape {
    /// Numerically stable mean softmax cross-entropy over the rows of
    /// `logits` (`n × C`), against integer class `targets`.
    ///
    /// With `weights = Some(w)`, each row's loss is multiplied by `w[r]`
    /// before the mean — this is exactly how the reliability ground truth
    /// gates the rating loss in the paper's Eq. (14) sibling, and how class
    /// re-balancing is implemented.
    ///
    /// # Panics
    /// Panics if `targets` (or `weights`) length differs from the row count,
    /// or any target is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[usize], weights: Option<&[f32]>) -> Var {
        let z = self.value(logits);
        let (n, c) = z.shape();
        assert_eq!(targets.len(), n, "softmax_cross_entropy: {n} rows vs {} targets", targets.len());
        if let Some(w) = weights {
            assert_eq!(w.len(), n, "softmax_cross_entropy: {n} rows vs {} weights", w.len());
        }
        let mut total = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < c, "softmax_cross_entropy: target {t} out of {c} classes");
            let row = z.row(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_denom = row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
            let nll = -(row[t] - m - log_denom);
            total += weights.map_or(1.0, |w| w[r]) * nll;
        }
        let value = Tensor::scalar(total / n as f32);
        self.push(
            value,
            Op::SoftmaxCrossEntropy {
                logits,
                targets: targets.to_vec(),
                weights: weights.map(<[f32]>::to_vec),
            },
        )
    }

    /// Mean squared error between `pred` (any shape) and a same-shaped
    /// constant `target`, composed from primitive ops.
    pub fn mse(&mut self, pred: Var, target: &Tensor) -> Var {
        let t = self.constant(target.clone());
        let diff = self.sub(pred, t);
        let sq = self.square(diff);
        self.mean_all(sq)
    }

    /// Reliability-weighted MSE of the paper's Eq. (14):
    /// `1/N · Σ w_i (pred_i − target_i)²` where `w_i` is the reliability
    /// ground truth (or any per-example weight). `pred` must be `n × 1`.
    pub fn weighted_mse(&mut self, pred: Var, target: &[f32], weights: &[f32]) -> Var {
        let n = self.value(pred).rows();
        assert_eq!(self.value(pred).cols(), 1, "weighted_mse: pred must be a column vector");
        assert_eq!(target.len(), n, "weighted_mse: {n} preds vs {} targets", target.len());
        assert_eq!(weights.len(), n, "weighted_mse: {n} preds vs {} weights", weights.len());
        let t = self.constant(Tensor::col_vector(target));
        let w = self.constant(Tensor::col_vector(weights));
        let diff = self.sub(pred, t);
        let sq = self.square(diff);
        let weighted = self.mul(sq, w);
        let s = self.sum_all(weighted);
        self.scale(s, 1.0 / n as f32)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Params, Tape, Tensor};

    #[test]
    fn cross_entropy_of_perfect_logits_is_small() {
        let mut tape = Tape::new();
        let logits = tape.constant(Tensor::from_vec(2, 2, vec![20.0, -20.0, -20.0, 20.0]));
        let loss = tape.softmax_cross_entropy(logits, &[0, 1], None);
        assert!(tape.value(loss).item() < 1e-5);
    }

    #[test]
    fn cross_entropy_uniform_logits_is_log_c() {
        let mut tape = Tape::new();
        let logits = tape.constant(Tensor::zeros(4, 3));
        let loss = tape.softmax_cross_entropy(logits, &[0, 1, 2, 0], None);
        assert!((tape.value(loss).item() - 3.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_weights_zero_out_rows() {
        let mut tape = Tape::new();
        let logits = tape.constant(Tensor::from_vec(2, 2, vec![0.0, 0.0, 5.0, -5.0]));
        // Second row is badly wrong (target 1) but weighted 0.
        let loss = tape.softmax_cross_entropy(logits, &[0, 1], Some(&[2.0, 0.0]));
        let expected = 2.0 * 2.0f32.ln() / 2.0;
        assert!((tape.value(loss).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut params = Params::new();
        let z_id = params.register("z", Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let mut tape = Tape::new();
        let z = tape.param(&params, z_id);
        let loss = tape.softmax_cross_entropy(z, &[1], None);
        tape.backward(loss, &mut params);
        let zt = params.get(z_id).clone();
        let m = zt.max();
        let denom: f32 = zt.as_slice().iter().map(|&v| (v - m).exp()).sum();
        let p: Vec<f32> = zt.as_slice().iter().map(|&v| (v - m).exp() / denom).collect();
        let expected = Tensor::from_vec(1, 3, vec![p[0], p[1] - 1.0, p[2]]);
        assert!(params.grad(z_id).approx_eq(&expected, 1e-5));
    }

    #[test]
    fn weighted_mse_ignores_zero_weight_examples() {
        let mut tape = Tape::new();
        let pred = tape.constant(Tensor::col_vector(&[1.0, 100.0]));
        let loss = tape.weighted_mse(pred, &[2.0, 0.0], &[1.0, 0.0]);
        // Only the first example counts: (1-2)^2 / 2
        assert!((tape.value(loss).item() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn mse_matches_manual() {
        let mut tape = Tape::new();
        let pred = tape.constant(Tensor::row_vector(&[1.0, 3.0]));
        let loss = tape.mse(pred, &Tensor::row_vector(&[0.0, 0.0]));
        assert!((tape.value(loss).item() - 5.0).abs() < 1e-5);
    }
}
