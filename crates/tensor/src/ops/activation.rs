//! Non-linear activations.

use crate::tape::{Op, Tape, Var};

impl Tape {
    /// Hyperbolic tangent, applied element-wise.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Logistic sigmoid, applied element-wise.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Rectified linear unit, applied element-wise.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let src = self.value(a);
        let mut value = src.clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                denom += *x;
            }
            for x in row.iter_mut() {
                *x /= denom;
            }
        }
        self.push(value, Op::SoftmaxRows(a))
    }

    /// Inverted-dropout with keep-probability `1 - rate`, using the supplied
    /// pre-drawn `mask` of `0.0 / (1/(1-rate))` entries. Recording the mask as
    /// a constant keeps the op differentiable and the tape deterministic; the
    /// [`crate::nn::Dropout`] layer draws masks from its RNG.
    pub fn apply_mask(&mut self, a: Var, mask: Var) -> Var {
        self.mul(a, mask)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Tape, Tensor};

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = tape.softmax_rows(a);
        let v = tape.value(s);
        for r in 0..2 {
            let sum: f32 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(v.get(r, 2) > v.get(r, 1) && v.get(r, 1) > v.get(r, 0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let b = tape.constant(Tensor::from_vec(1, 3, vec![1001.0, 1002.0, 1003.0]));
        let sa = tape.softmax_rows(a);
        let sb = tape.softmax_rows(b);
        let (va, vb) = (tape.value(sa).clone(), tape.value(sb).clone());
        assert!(va.approx_eq(&vb, 1e-5));
    }

    #[test]
    fn activations_known_values() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(1, 3, vec![-1.0, 0.0, 1.0]));
        let t = tape.tanh(a);
        let s = tape.sigmoid(a);
        let r = tape.relu(a);
        assert!((tape.value(t).get(0, 0) + 0.76159).abs() < 1e-4);
        assert!((tape.value(s).get(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(tape.value(r).as_slice(), &[0.0, 0.0, 1.0]);
    }
}
