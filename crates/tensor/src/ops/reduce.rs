//! Reductions.

use crate::tape::{Op, Tape, Var};
use crate::Tensor;

impl Tape {
    /// Sum of all elements, producing a `1 × 1` node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        self.push(value, Op::SumAll(a))
    }

    /// Mean of all elements, producing a `1 × 1` node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Column-wise sum over rows, producing `1 × c`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).sum_rows();
        self.push(value, Op::SumRows(a))
    }

    /// Row-wise sum over columns, producing `r × 1`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let value = self.value(a).sum_cols();
        self.push(value, Op::SumCols(a))
    }

    /// Mean over rows, producing `1 × c` (sum_rows scaled by `1/r`).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let r = self.value(a).rows().max(1) as f32;
        let s = self.sum_rows(a);
        self.scale(s, 1.0 / r)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Params, Tape, Tensor};

    #[test]
    fn reductions_forward() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let s = tape.sum_all(a);
        let m = tape.mean_all(a);
        let sr = tape.sum_rows(a);
        let sc = tape.sum_cols(a);
        let mr = tape.mean_rows(a);
        assert_eq!(tape.value(s).item(), 21.0);
        assert!((tape.value(m).item() - 3.5).abs() < 1e-6);
        assert_eq!(tape.value(sr).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(tape.value(sc).as_slice(), &[6.0, 15.0]);
        assert_eq!(tape.value(mr).as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn mean_all_gradient_is_uniform() {
        let mut params = Params::new();
        let x_id = params.register("x", Tensor::ones(2, 2));
        let mut tape = Tape::new();
        let x = tape.param(&params, x_id);
        let loss = tape.mean_all(x);
        tape.backward(loss, &mut params);
        assert!(params.grad(x_id).approx_eq(&Tensor::full(2, 2, 0.25), 1e-6));
    }

    #[test]
    fn sum_cols_gradient_broadcasts_back() {
        let mut params = Params::new();
        let x_id = params.register("x", Tensor::ones(2, 3));
        let mut tape = Tape::new();
        let x = tape.param(&params, x_id);
        let sc = tape.sum_cols(x);
        let w = tape.constant(Tensor::col_vector(&[1.0, 10.0]));
        let weighted = tape.mul(sc, w);
        let loss = tape.sum_all(weighted);
        tape.backward(loss, &mut params);
        let expected = Tensor::from_rows(&[vec![1.0; 3], vec![10.0; 3]]);
        assert!(params.grad(x_id).approx_eq(&expected, 1e-6));
    }
}
