//! Reverse-mode automatic differentiation on an append-only tape.
//!
//! A [`Tape`] records every operation of one forward pass as a [`Node`]; the
//! resulting computation graph is a DAG ordered by construction, so the
//! backward pass is a single reverse sweep that accumulates adjoints into the
//! parents of each node. Parameters live in a [`Params`] store outside the
//! tape; [`Tape::param`] snapshots a parameter value into the graph, and
//! [`Tape::backward`] writes the resulting gradients back into the store.
//!
//! The tape is intended to be rebuilt per training step — construction is a
//! `Vec` push per op — which keeps the design free of interior mutability and
//! reference cycles.

use crate::{GradSink, ParamId, Params, Tensor};

/// Handle to a node on a [`Tape`]. Only valid for the tape that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// The recorded operation of a node, with its parent handles and any data the
/// backward pass needs.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input constant or parameter snapshot.
    Leaf { param: Option<ParamId> },
    Add(Var, Var),
    Sub(Var, Var),
    /// Element-wise product.
    Mul(Var, Var),
    /// `x + row` where `row` is `1 × c`, broadcast over the rows of `x`.
    AddRowBroadcast(Var, Var),
    /// `x * col` where `col` is `r × 1`, broadcast over the columns of `x`.
    MulColBroadcast(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatMul(Var, Var),
    Transpose(Var),
    Tanh(Var),
    Sigmoid(Var),
    Relu(Var),
    Square(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    SliceCols(Var, usize, usize),
    /// Gathers rows of `table` listed in `indices` (duplicates allowed).
    GatherRows { table: Var, indices: Vec<usize> },
    SumAll(Var),
    MeanAll(Var),
    /// Column-wise sum producing `1 × c`.
    SumRows(Var),
    /// Row-wise sum producing `r × 1`.
    SumCols(Var),
    /// Sliding-window unfold for 1-D convolution: `[T, d] -> [T-w+1, w*d]`.
    Im2Col { x: Var, width: usize },
    /// Max-over-time pooling over rows, with stored argmax per column.
    MaxOverRows { x: Var, argmax: Vec<usize> },
    /// Fused, numerically stable softmax + cross-entropy mean loss with
    /// optional per-row weights. Produces a `1 × 1` node.
    SoftmaxCrossEntropy { logits: Var, targets: Vec<usize>, weights: Option<Vec<f32>> },
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) op: Op,
}

/// Append-only computation tape. See the module docs.
#[derive(Debug, Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    /// Adjoints populated by [`Tape::backward`]; indexable for diagnostics.
    grads: Vec<Option<Tensor>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records a non-trainable input.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf { param: None })
    }

    /// Records a `1 × 1` constant.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.constant(Tensor::scalar(value))
    }

    /// Snapshots a parameter from `params` into the graph. Gradients flowing
    /// into this node are accumulated into `params.grad_mut(id)` by
    /// [`Tape::backward`].
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        self.push(params.get(id).clone(), Op::Leaf { param: Some(id) })
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The adjoint of a node after [`Tape::backward`], if it was reached.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(Option::as_ref)
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    fn accumulate(grads: &mut [Option<Tensor>], v: Var, delta: Tensor) {
        match &mut grads[v.0] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Runs the backward pass from `loss` (which must be `1 × 1`), seeding its
    /// adjoint with one, and accumulates parameter gradients into `params`.
    ///
    /// Adjoints of intermediate nodes remain inspectable through
    /// [`Tape::grad`] until the next `backward` call.
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped.
    pub fn backward(&mut self, loss: Var, params: &mut Params) {
        self.backward_into(loss, params);
    }

    /// Like [`Tape::backward`], but accumulates parameter gradients into an
    /// arbitrary [`GradSink`] — e.g. a detached [`crate::GradStore`] owned by
    /// one worker of a data-parallel training step. The sweep itself is
    /// identical to `backward`, so for a given tape the deltas written to the
    /// sink are bit-identical regardless of which sink receives them.
    pub fn backward_into(&mut self, loss: Var, sink: &mut dyn GradSink) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be 1x1, got {:?}",
            self.nodes[loss.0].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.0).rev() {
            let Some(grad) = grads[idx].take() else { continue };
            self.backward_node(idx, &grad, &mut grads, sink);
            grads[idx] = Some(grad);
        }
        self.grads = grads;
    }

    /// Propagates the adjoint `g` of node `idx` into its parents.
    fn backward_node(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>], sink: &mut dyn GradSink) {
        let node = &self.nodes[idx];
        match &node.op {
            Op::Leaf { param } => {
                if let Some(id) = param {
                    sink.accumulate_grad(*id, g);
                }
            }
            Op::Add(a, b) => {
                Self::accumulate(grads, *a, g.clone());
                Self::accumulate(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                Self::accumulate(grads, *a, g.clone());
                Self::accumulate(grads, *b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let da = g.mul(&self.nodes[b.0].value);
                let db = g.mul(&self.nodes[a.0].value);
                Self::accumulate(grads, *a, da);
                Self::accumulate(grads, *b, db);
            }
            Op::AddRowBroadcast(a, row) => {
                Self::accumulate(grads, *a, g.clone());
                Self::accumulate(grads, *row, g.sum_rows());
            }
            Op::MulColBroadcast(a, col) => {
                let av = &self.nodes[a.0].value;
                let cv = &self.nodes[col.0].value;
                // d/da = g * col (broadcast), d/dcol[r] = sum_c g[r,c]*a[r,c]
                let mut da = g.clone();
                for r in 0..da.rows() {
                    let s = cv.get(r, 0);
                    for x in da.row_mut(r) {
                        *x *= s;
                    }
                }
                Self::accumulate(grads, *a, da);
                let dcol = g.mul(av).sum_cols();
                Self::accumulate(grads, *col, dcol);
            }
            Op::Scale(a, alpha) => Self::accumulate(grads, *a, g.scale(*alpha)),
            Op::AddScalar(a) => Self::accumulate(grads, *a, g.clone()),
            Op::MatMul(a, b) => {
                let da = g.matmul_nt(&self.nodes[b.0].value);
                let db = self.nodes[a.0].value.matmul_tn(g);
                Self::accumulate(grads, *a, da);
                Self::accumulate(grads, *b, db);
            }
            Op::Transpose(a) => Self::accumulate(grads, *a, g.transpose()),
            Op::Tanh(a) => {
                // d tanh = 1 - tanh², using the stored output.
                let da = g.zip_map(&node.value, |gv, y| gv * (1.0 - y * y));
                Self::accumulate(grads, *a, da);
            }
            Op::Sigmoid(a) => {
                let da = g.zip_map(&node.value, |gv, y| gv * y * (1.0 - y));
                Self::accumulate(grads, *a, da);
            }
            Op::Relu(a) => {
                let da = g.zip_map(&self.nodes[a.0].value, |gv, x| if x > 0.0 { gv } else { 0.0 });
                Self::accumulate(grads, *a, da);
            }
            Op::Square(a) => {
                let da = g.zip_map(&self.nodes[a.0].value, |gv, x| gv * 2.0 * x);
                Self::accumulate(grads, *a, da);
            }
            Op::SoftmaxRows(a) => {
                // For each row: dx = y ⊙ (g − (g·y) 1)
                let y = &node.value;
                let mut da = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = g.row(r).iter().zip(y.row(r)).map(|(&gv, &yv)| gv * yv).sum();
                    for (o, (&gv, &yv)) in da.row_mut(r).iter_mut().zip(g.row(r).iter().zip(y.row(r))) {
                        *o = yv * (gv - dot);
                    }
                }
                Self::accumulate(grads, *a, da);
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for p in parts {
                    let c = self.nodes[p.0].value.cols();
                    Self::accumulate(grads, *p, g.slice_cols(offset, offset + c));
                    offset += c;
                }
            }
            Op::ConcatRows(parts) => {
                let mut offset = 0;
                for p in parts {
                    let r = self.nodes[p.0].value.rows();
                    let rows: Vec<usize> = (offset..offset + r).collect();
                    Self::accumulate(grads, *p, g.gather_rows(&rows));
                    offset += r;
                }
            }
            Op::SliceCols(a, start, _end) => {
                let src = &self.nodes[a.0].value;
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        da.set(r, start + c, g.get(r, c));
                    }
                }
                Self::accumulate(grads, *a, da);
            }
            Op::GatherRows { table, indices } => {
                let src = &self.nodes[table.0].value;
                let mut dt = Tensor::zeros(src.rows(), src.cols());
                for (r, &idx) in indices.iter().enumerate() {
                    for (o, &gv) in dt.row_mut(idx).iter_mut().zip(g.row(r)) {
                        *o += gv;
                    }
                }
                Self::accumulate(grads, *table, dt);
            }
            Op::SumAll(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                Self::accumulate(grads, *a, Tensor::full(r, c, g.item()));
            }
            Op::MeanAll(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let n = (r * c) as f32;
                Self::accumulate(grads, *a, Tensor::full(r, c, g.item() / n));
            }
            Op::SumRows(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let mut da = Tensor::zeros(r, c);
                for rr in 0..r {
                    da.row_mut(rr).copy_from_slice(g.row(0));
                }
                Self::accumulate(grads, *a, da);
            }
            Op::SumCols(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let mut da = Tensor::zeros(r, c);
                for rr in 0..r {
                    let gv = g.get(rr, 0);
                    for o in da.row_mut(rr) {
                        *o = gv;
                    }
                }
                Self::accumulate(grads, *a, da);
            }
            Op::Im2Col { x, width } => {
                let src = &self.nodes[x.0].value;
                let (t, d) = src.shape();
                let mut dx = Tensor::zeros(t, d);
                let windows = t + 1 - width;
                for w in 0..windows {
                    for off in 0..*width {
                        for c in 0..d {
                            let gv = g.get(w, off * d + c);
                            let cur = dx.get(w + off, c);
                            dx.set(w + off, c, cur + gv);
                        }
                    }
                }
                Self::accumulate(grads, *x, dx);
            }
            Op::MaxOverRows { x, argmax } => {
                let src = &self.nodes[x.0].value;
                let mut dx = Tensor::zeros(src.rows(), src.cols());
                for (c, &r) in argmax.iter().enumerate() {
                    dx.set(r, c, g.get(0, c));
                }
                Self::accumulate(grads, *x, dx);
            }
            Op::SoftmaxCrossEntropy { logits, targets, weights } => {
                let z = &self.nodes[logits.0].value;
                let n = z.rows() as f32;
                let gscale = g.item();
                let mut dz = Tensor::zeros(z.rows(), z.cols());
                for r in 0..z.rows() {
                    let row = z.row(r);
                    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let denom: f32 = row.iter().map(|&v| (v - m).exp()).sum();
                    let w = weights.as_ref().map_or(1.0, |ws| ws[r]);
                    for (c, o) in dz.row_mut(r).iter_mut().enumerate() {
                        let p = (row[c] - m).exp() / denom;
                        let y = if c == targets[r] { 1.0 } else { 0.0 };
                        *o = gscale * w * (p - y) / n;
                    }
                }
                Self::accumulate(grads, *logits, dz);
            }
        }
    }
}
