//! Trainable-parameter storage shared by all models in the workspace.
//!
//! Parameters live outside the autograd tape so that a fresh [`crate::Tape`]
//! can be built per training step (the tape is append-only and cheap) while
//! the long-lived weights and their gradient accumulators stay here.

use crate::Tensor;

/// Opaque handle to a parameter registered in a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index, useful for stable serialisation of checkpoints.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A store of named trainable tensors and their gradient accumulators.
#[derive(Debug, Default, Clone)]
pub struct Params {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor as a trainable parameter and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.grads.push(Tensor::zeros(r, c));
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Immutable access to a parameter value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (used by optimisers and tests).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Immutable access to the accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable access to the accumulated gradient (tape backward writes here).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over all `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// All parameter ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Resets every gradient accumulator to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            let (r, c) = g.shape();
            *g = Tensor::zeros(r, c);
        }
    }

    /// Sum of squared L2 norms of all values — the `Σ‖ε‖²` regulariser of
    /// Eq. (13)/(14) in the paper.
    pub fn l2_norm_sq(&self) -> f32 {
        self.values.iter().map(Tensor::norm_sq).sum()
    }

    /// Adds `2·gamma·value` to every gradient, i.e. the gradient of
    /// `gamma · Σ‖ε‖²`. Call once per step before the optimiser update.
    pub fn apply_l2_grad(&mut self, gamma: f32) {
        for (v, g) in self.values.iter().zip(&mut self.grads) {
            g.axpy(2.0 * gamma, v);
        }
    }

    /// Global gradient-norm clipping: if the joint L2 norm of all gradients
    /// exceeds `max_norm`, rescales them to have exactly that norm.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f32 = self.grads.iter().map(Tensor::norm_sq).sum::<f32>().sqrt();
        if total > max_norm && total > 0.0 {
            let scale = max_norm / total;
            for g in &mut self.grads {
                g.map_inplace(|x| x * scale);
            }
        }
        total
    }

    /// True if any parameter or gradient contains a NaN/inf.
    pub fn has_non_finite(&self) -> bool {
        self.values.iter().chain(&self.grads).any(Tensor::has_non_finite)
    }

    /// A detached, zeroed gradient accumulator with one slot per registered
    /// parameter. Workers fill their own store while the `Params` values are
    /// only borrowed immutably — the split-borrow that makes data-parallel
    /// backward passes possible.
    pub fn grad_store(&self) -> GradStore {
        GradStore {
            grads: self.values.iter().map(|v| Tensor::zeros(v.rows(), v.cols())).collect(),
        }
    }

    /// Adds every accumulator in `store` onto this store's gradients,
    /// parameter by parameter — the single-threaded absorption step after a
    /// parallel reduction.
    pub fn absorb(&mut self, store: &GradStore) {
        assert_eq!(self.grads.len(), store.grads.len(), "absorb: parameter count mismatch");
        for (g, s) in self.grads.iter_mut().zip(&store.grads) {
            g.add_assign(s);
        }
    }
}

/// Destination for parameter gradients produced by a backward pass.
///
/// [`Params`] is the classic sink (gradients land next to the weights);
/// [`GradStore`] is the detached sink used by data-parallel training, where
/// each worker accumulates into its own store before a deterministic
/// reduction.
pub trait GradSink {
    /// Adds `delta` onto the accumulator for `id`.
    fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor);
}

impl GradSink for Params {
    fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }
}

/// A gradient accumulator detached from its [`Params`] store: one zeroed
/// tensor per parameter, created by [`Params::grad_store`].
///
/// Stores are combined with [`GradStore::add_assign`]; because each
/// `add_assign` is an element-wise `a[i] += b[i]` in parameter order, a
/// reduction over stores is bit-determined entirely by the order the stores
/// are combined in — which is what the fixed-order tree reduction in
/// `rrre-core` pins down.
#[derive(Debug, Clone)]
pub struct GradStore {
    grads: Vec<Tensor>,
}

impl GradStore {
    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the store has no slots.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Immutable access to the accumulator for `id`.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable access to the accumulator for `id`.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Resets every accumulator to zero in place (shapes are kept, no
    /// reallocation — stores are meant to be reused across minibatches).
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.map_inplace(|_| 0.0);
        }
    }

    /// Adds every accumulator of `other` onto this store: the pairwise
    /// reduction step. Panics if the two stores came from differently shaped
    /// `Params`.
    pub fn add_assign(&mut self, other: &GradStore) {
        assert_eq!(self.grads.len(), other.grads.len(), "add_assign: parameter count mismatch");
        for (g, o) in self.grads.iter_mut().zip(&other.grads) {
            g.add_assign(o);
        }
    }

    /// Sum of all accumulator entries — a cheap fingerprint for tests.
    pub fn sum(&self) -> f32 {
        self.grads.iter().map(Tensor::sum).sum()
    }
}

impl GradSink for GradStore {
    fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::ones(2, 3));
        let b = p.register("b", Tensor::zeros(1, 3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 9);
        assert_eq!(p.name(w), "w");
        assert_eq!(p.get(b).shape(), (1, 3));
        assert_eq!(p.grad(w).shape(), (2, 3));
    }

    #[test]
    fn zero_grads_resets() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::ones(2, 2));
        p.grad_mut(w).axpy(1.0, &Tensor::ones(2, 2));
        assert_eq!(p.grad(w).sum(), 4.0);
        p.zero_grads();
        assert_eq!(p.grad(w).sum(), 0.0);
    }

    #[test]
    fn l2_regulariser_matches_manual() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        assert!((p.l2_norm_sq() - 25.0).abs() < 1e-6);
        p.apply_l2_grad(0.5);
        // grad = 2*gamma*w = [3, 4]
        assert!(p.grad(w).approx_eq(&Tensor::from_vec(1, 2, vec![3.0, 4.0]), 1e-6));
    }

    #[test]
    fn grad_store_is_detached_and_absorbable() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let mut s = p.grad_store();
        assert_eq!(s.len(), 1);
        assert_eq!(s.grad(w).shape(), (1, 2));
        s.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![0.5, 0.25]));
        // Filling the store leaves the Params gradients untouched…
        assert_eq!(p.grad(w).sum(), 0.0);
        // …until they are explicitly absorbed.
        p.absorb(&s);
        assert!(p.grad(w).approx_eq(&Tensor::from_vec(1, 2, vec![0.5, 0.25]), 1e-6));
        s.zero();
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn grad_store_add_assign_reduces_pairwise() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(1, 2));
        let mut a = p.grad_store();
        let mut b = p.grad_store();
        a.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        b.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![10.0, 20.0]));
        a.add_assign(&b);
        assert!(a.grad(w).approx_eq(&Tensor::from_vec(1, 2, vec![11.0, 22.0]), 1e-6));
    }

    #[test]
    fn params_grad_sink_matches_grad_mut_add_assign() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(2, 2));
        let delta = Tensor::ones(2, 2);
        p.accumulate_grad(w, &delta);
        p.accumulate_grad(w, &delta);
        assert_eq!(p.grad(w).sum(), 8.0);
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(1, 2));
        *p.grad_mut(w) = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        let pre = p.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        assert!((p.grad(w).norm() - 1.0).abs() < 1e-5);
        // Below the threshold nothing changes.
        let pre2 = p.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((p.grad(w).norm() - 1.0).abs() < 1e-5);
    }
}
