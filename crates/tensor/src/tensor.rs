//! Dense, row-major, two-dimensional `f32` tensor.
//!
//! The RRRE models only ever need matrices: parameter tables, batched feature
//! matrices `[batch, features]` and per-timestep slices of sequences. Keeping
//! the storage strictly two-dimensional makes every kernel in this crate
//! simple, cache-friendly and easy to verify; sequences and sets of reviews
//! are handled as `Vec<Tensor>` (or index lists) one level up, in the layers.
//!
//! All shape mismatches are programming errors and panic with a descriptive
//! message, mirroring the convention of mainstream array libraries.

use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// A vector is represented as a single-row (`1 × n`) or single-column
/// (`n × 1`) tensor; a scalar as `1 × 1`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a zero tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// Creates a tensor of ones of the given shape.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a `1 × 1` tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Self { rows: 1, cols: 1, data: vec![value] }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: buffer of length {} cannot fill a {rows}x{cols} tensor",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a tensor from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "Tensor::from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "Tensor::from_rows: row {i} has length {}, expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Builds a single-row tensor from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Builds a single-column tensor from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// The identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "Tensor::get({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "Tensor::set({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a new single-row tensor.
    pub fn row_tensor(&self, r: usize) -> Tensor {
        Tensor::row_vector(self.row(r))
    }

    /// Column `c` copied into a `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The single value of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 × 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "Tensor::item on a {}x{} tensor", self.rows, self.cols);
        self.data[0]
    }

    /// Reinterprets the buffer under a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(self.len(), rows * cols, "Tensor::reshape: {}x{} -> {rows}x{cols}", self.rows, self.cols);
        Tensor { rows, cols, data: self.data.clone() }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip_map");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| alpha * x)
    }

    /// Adds `row` (a `1 × cols` tensor) to every row.
    ///
    /// # Panics
    /// Panics if `row` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be a single row");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: {} vs {} columns", self.cols, row.cols);
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// Uses the cache-friendly i-k-j loop order; adequate for the model sizes
    /// in this workspace (dozens to a few hundred columns).
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} . {}x{} inner dimensions disagree",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
            let _ = k;
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} . ({}x{})^T inner dimensions disagree",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})^T . {}x{} inner dimensions disagree",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for p in 0..self.rows {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum, producing a `1 × cols` tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Row-wise sum, producing a `rows × 1` tensor.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Maximum element (`f32::NEG_INFINITY` if empty).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`f32::INFINITY` if empty).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch {} vs {}", self.len(), other.len());
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>()
    }

    /// Horizontal concatenation of tensors with equal row counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols: need at least one part");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row counts differ ({} vs {rows})", p.rows);
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Vertical concatenation of tensors with equal column counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows: need at least one part");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column counts differ ({} vs {cols})", p.cols);
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// Copies a contiguous range of columns into a new tensor.
    ///
    /// # Panics
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "slice_cols: {start}..{end} out of 0..{}", self.cols);
        let mut out = Tensor::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Gathers the listed rows into a new tensor (duplicates allowed).
    ///
    /// # Panics
    /// Panics on any out-of-range index.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (r, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows: index {idx} out of 0..{}", self.rows);
            out.row_mut(r).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Whether every pairwise difference is at most `tol` in absolute value.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 10.min(self.cols);
            for c in 0..max_cols {
                write!(f, "{:>9.4}", self.get(r, c))?;
                if c + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::eye(2);
        assert!(a.matmul(&i).approx_eq(&a, 1e-6));
        assert!(i.matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Tensor::from_vec(4, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
        let c = Tensor::from_vec(2, 4, vec![1.0; 8]);
        assert!(a.matmul_tn(&c).approx_eq(&a.transpose().matmul(&c), 1e-5));
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::row_vector(&[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&b).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.sum(), 21.0);
        assert!((t.mean() - 3.5).abs() < 1e-6);
        assert_eq!(t.sum_rows().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_cols().as_slice(), &[6.0, 15.0]);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), 1.0);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 1, vec![9.0, 10.0]);
        let cat = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), (2, 3));
        assert!(cat.slice_cols(0, 2).approx_eq(&a, 0.0));
        assert!(cat.slice_cols(2, 3).approx_eq(&b, 0.0));

        let v = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(3), a.row(1));
    }

    #[test]
    fn gather_rows_duplicates() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(2, 2);
        let b = Tensor::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[7.0; 4]);
        assert_eq!(a.scale(0.5).as_slice(), &[3.5; 4]);
    }

    #[test]
    fn norms_and_dot() {
        let a = Tensor::from_vec(1, 3, vec![3.0, 0.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!((a.norm_sq() - 25.0).abs() < 1e-6);
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        assert!((a.dot(&b) - 15.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Tensor::ones(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}
