//! Trainable lookup table.

use crate::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// An embedding table mapping integer ids to dense rows.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `vocab × dim` table initialised `N(0, 0.1²)`.
    pub fn new(params: &mut Params, rng: &mut impl Rng, name: &str, vocab: usize, dim: usize) -> Self {
        let table = params.register(format!("{name}.table"), init::embedding(rng, vocab, dim, 0.1));
        Self { table, vocab, dim }
    }

    /// Wraps an externally initialised table (e.g. pretrained word vectors).
    pub fn from_table(params: &mut Params, name: &str, table: Tensor) -> Self {
        let (vocab, dim) = table.shape();
        let table = params.register(format!("{name}.table"), table);
        Self { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Handle of the underlying table parameter.
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Looks up `ids`, producing an `[ids.len(), dim]` node. Duplicate ids
    /// accumulate gradient into the same row.
    ///
    /// # Panics
    /// Panics if any id is out of vocabulary.
    pub fn forward(&self, tape: &mut Tape, params: &Params, ids: &[usize]) -> Var {
        for &id in ids {
            assert!(id < self.vocab, "Embedding::forward: id {id} out of vocab {}", self.vocab);
        }
        let table = tape.param(params, self.table);
        tape.gather_rows(table, ids)
    }

    /// Tape-free lookup for inference paths.
    pub fn infer(&self, params: &Params, ids: &[usize]) -> Tensor {
        params.get(self.table).gather_rows(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_ok;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn lookup_returns_rows() {
        let mut params = Params::new();
        let table = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let emb = Embedding::from_table(&mut params, "e", table);
        let mut tape = Tape::new();
        let out = emb.forward(&mut tape, &params, &[2, 0]);
        assert_eq!(tape.value(out).as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        assert!(emb.infer(&params, &[2, 0]).approx_eq(tape.value(out), 0.0));
    }

    #[test]
    fn duplicate_ids_gradcheck() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, &mut rng, "e", 5, 3);
        assert_gradients_ok(&mut params, move |p, tape| {
            let out = emb.forward(tape, p, &[1, 1, 4]);
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, &mut rng, "e", 5, 3);
        let mut tape = Tape::new();
        let _ = emb.forward(&mut tape, &params, &[5]);
    }
}
