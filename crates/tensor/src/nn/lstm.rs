//! LSTM and bidirectional LSTM sequence encoders (paper §III-C).

use crate::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// Single-direction LSTM with fused gate weights.
///
/// Gate layout along the `4h` axis is `[input | forget | cell | output]`.
/// The forget-gate bias is initialised to one, the standard remedy for
/// vanishing memory early in training.
#[derive(Debug, Clone)]
pub struct Lstm {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

/// Splits fused gate pre-activations into `(i, f, g, o)` column ranges.
fn gate_ranges(h: usize) -> [(usize, usize); 4] {
    [(0, h), (h, 2 * h), (2 * h, 3 * h), (3 * h, 4 * h)]
}

impl Lstm {
    /// Registers LSTM weights under `name.*`.
    pub fn new(params: &mut Params, rng: &mut impl Rng, name: &str, input_dim: usize, hidden_dim: usize) -> Self {
        let wx = params.register(format!("{name}.wx"), init::xavier_uniform(rng, input_dim, 4 * hidden_dim));
        let wh = params.register(format!("{name}.wh"), init::xavier_uniform(rng, hidden_dim, 4 * hidden_dim));
        let mut bias = Tensor::zeros(1, 4 * hidden_dim);
        for c in hidden_dim..2 * hidden_dim {
            bias.set(0, c, 1.0);
        }
        let b = params.register(format!("{name}.b"), bias);
        Self { wx, wh, b, input_dim, hidden_dim }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// The handles of this cell's three parameters.
    pub fn param_ids(&self) -> [crate::ParamId; 3] {
        [self.wx, self.wh, self.b]
    }

    /// One differentiable step: consumes `x_t` (`[n, input]`) and the previous
    /// `(h, c)` (`[n, hidden]` each), returning the next `(h, c)`.
    pub fn step(&self, tape: &mut Tape, params: &Params, x_t: Var, h: Var, c: Var) -> (Var, Var) {
        let wx = tape.param(params, self.wx);
        let wh = tape.param(params, self.wh);
        let b = tape.param(params, self.b);
        let xw = tape.matmul(x_t, wx);
        let hw = tape.matmul(h, wh);
        let pre = tape.add(xw, hw);
        let pre = tape.add_row_broadcast(pre, b);
        let hd = self.hidden_dim;
        let [ri, rf, rg, ro] = gate_ranges(hd);
        let i_pre = tape.slice_cols(pre, ri.0, ri.1);
        let f_pre = tape.slice_cols(pre, rf.0, rf.1);
        let g_pre = tape.slice_cols(pre, rg.0, rg.1);
        let o_pre = tape.slice_cols(pre, ro.0, ro.1);
        let i = tape.sigmoid(i_pre);
        let f = tape.sigmoid(f_pre);
        let g = tape.tanh(g_pre);
        let o = tape.sigmoid(o_pre);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_next = tape.add(fc, ig);
        let c_act = tape.tanh(c_next);
        let h_next = tape.mul(o, c_act);
        (h_next, c_next)
    }

    /// Runs the LSTM over a sequence given as one `[T, input]` node and
    /// returns the final hidden state (`[1, hidden]`).
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn forward_final(&self, tape: &mut Tape, params: &Params, seq: Var) -> Var {
        let t_len = tape.value(seq).rows();
        assert!(t_len > 0, "Lstm::forward_final: empty sequence");
        let mut h = tape.constant(Tensor::zeros(1, self.hidden_dim));
        let mut c = tape.constant(Tensor::zeros(1, self.hidden_dim));
        for t in 0..t_len {
            let x_t = tape.gather_rows(seq, &[t]);
            let (h2, c2) = self.step(tape, params, x_t, h, c);
            h = h2;
            c = c2;
        }
        h
    }

    /// Like [`Lstm::forward_final`] but reading the sequence back-to-front.
    pub fn forward_final_rev(&self, tape: &mut Tape, params: &Params, seq: Var) -> Var {
        let t_len = tape.value(seq).rows();
        assert!(t_len > 0, "Lstm::forward_final_rev: empty sequence");
        let mut h = tape.constant(Tensor::zeros(1, self.hidden_dim));
        let mut c = tape.constant(Tensor::zeros(1, self.hidden_dim));
        for t in (0..t_len).rev() {
            let x_t = tape.gather_rows(seq, &[t]);
            let (h2, c2) = self.step(tape, params, x_t, h, c);
            h = h2;
            c = c2;
        }
        h
    }

    /// Tape-free final hidden state for the frozen-encoder fast path.
    /// `reverse` selects reading direction.
    pub fn infer_final(&self, params: &Params, seq: &Tensor, reverse: bool) -> Tensor {
        let (t_len, d) = seq.shape();
        assert_eq!(d, self.input_dim, "Lstm::infer_final: input dim {d}, expected {}", self.input_dim);
        assert!(t_len > 0, "Lstm::infer_final: empty sequence");
        let wx = params.get(self.wx);
        let wh = params.get(self.wh);
        let b = params.get(self.b);
        let hd = self.hidden_dim;
        let mut h = Tensor::zeros(1, hd);
        let mut c = Tensor::zeros(1, hd);
        let order: Vec<usize> = if reverse { (0..t_len).rev().collect() } else { (0..t_len).collect() };
        for t in order {
            let x_t = seq.gather_rows(&[t]);
            let mut pre = x_t.matmul(wx);
            pre.add_assign(&h.matmul(wh));
            pre = pre.add_row_broadcast(b);
            let p = pre.as_slice();
            let mut h_next = Tensor::zeros(1, hd);
            let mut c_next = Tensor::zeros(1, hd);
            for j in 0..hd {
                let i_g = sigmoid(p[j]);
                let f_g = sigmoid(p[hd + j]);
                let g_g = p[2 * hd + j].tanh();
                let o_g = sigmoid(p[3 * hd + j]);
                let cn = f_g * c.get(0, j) + i_g * g_g;
                c_next.set(0, j, cn);
                h_next.set(0, j, o_g * cn.tanh());
            }
            h = h_next;
            c = c_next;
        }
        h
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Bidirectional LSTM producing `rev = h⁺ ⊕ h⁻` (paper Eq. 4). The output
/// dimension is `2 × hidden`.
#[derive(Debug, Clone)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

impl BiLstm {
    /// Registers both directions under `name.fwd.*` / `name.bwd.*`.
    pub fn new(params: &mut Params, rng: &mut impl Rng, name: &str, input_dim: usize, hidden_dim: usize) -> Self {
        Self {
            fwd: Lstm::new(params, rng, &format!("{name}.fwd"), input_dim, hidden_dim),
            bwd: Lstm::new(params, rng, &format!("{name}.bwd"), input_dim, hidden_dim),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.fwd.input_dim()
    }

    /// Output dimension (`2 × hidden`).
    pub fn output_dim(&self) -> usize {
        2 * self.fwd.hidden_dim()
    }

    /// The handles of all six parameters (both directions).
    pub fn param_ids(&self) -> Vec<crate::ParamId> {
        let mut ids = self.fwd.param_ids().to_vec();
        ids.extend(self.bwd.param_ids());
        ids
    }

    /// Differentiable encoding of a `[T, input]` sequence into `[1, 2h]`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, seq: Var) -> Var {
        let hf = self.fwd.forward_final(tape, params, seq);
        let hb = self.bwd.forward_final_rev(tape, params, seq);
        tape.concat_cols(&[hf, hb])
    }

    /// Tape-free encoding for the frozen-encoder fast path.
    pub fn infer(&self, params: &Params, seq: &Tensor) -> Tensor {
        let hf = self.fwd.infer_final(params, seq, false);
        let hb = self.bwd.infer_final(params, seq, true);
        Tensor::concat_cols(&[&hf, &hb])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_ok;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, &mut rng, "l", 3, 4);
        let seq = init::normal(&mut rng, 5, 3, 0.0, 1.0);
        let mut tape = Tape::new();
        let sv = tape.constant(seq.clone());
        let h = lstm.forward_final(&mut tape, &params, sv);
        assert_eq!(tape.shape(h), (1, 4));
        assert!(tape.value(h).approx_eq(&lstm.infer_final(&params, &seq, false), 1e-5));
    }

    #[test]
    fn bilstm_concatenates_directions() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = Params::new();
        let bi = BiLstm::new(&mut params, &mut rng, "bi", 3, 2);
        let seq = init::normal(&mut rng, 4, 3, 0.0, 1.0);
        let mut tape = Tape::new();
        let sv = tape.constant(seq.clone());
        let h = bi.forward(&mut tape, &params, sv);
        assert_eq!(tape.shape(h), (1, 4));
        assert!(tape.value(h).approx_eq(&bi.infer(&params, &seq), 1e-5));
    }

    #[test]
    fn order_sensitivity() {
        // An LSTM must distinguish a sequence from its reverse.
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, &mut rng, "l", 2, 3);
        let seq = init::normal(&mut rng, 4, 2, 0.0, 1.0);
        let h_fwd = lstm.infer_final(&params, &seq, false);
        let h_rev = lstm.infer_final(&params, &seq, true);
        assert!(!h_fwd.approx_eq(&h_rev, 1e-3));
    }

    #[test]
    fn lstm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, &mut rng, "l", 2, 3);
        let seq = init::normal(&mut rng, 3, 2, 0.0, 1.0);
        assert_gradients_ok(&mut params, move |p, tape| {
            let sv = tape.constant(seq.clone());
            let h = lstm.forward_final(tape, p, sv);
            let sq = tape.square(h);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn bilstm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = Params::new();
        let bi = BiLstm::new(&mut params, &mut rng, "bi", 2, 2);
        let seq = init::normal(&mut rng, 3, 2, 0.0, 1.0);
        assert_gradients_ok(&mut params, move |p, tape| {
            let sv = tape.constant(seq.clone());
            let h = bi.forward(tape, p, sv);
            let sq = tape.square(h);
            tape.sum_all(sq)
        });
    }
}
