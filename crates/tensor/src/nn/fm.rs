//! Factorization-machine output layer — the `FM(·)` of the paper's Eq. (12),
//! as introduced by Rendle (2010) and used by NARRE/DeepCoNN for the final
//! rating from the concatenated user–item representation.

use crate::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// Second-order factorization machine over an `[n, d]` feature matrix:
///
/// `ŷ = w₀ + x·w + ½ Σ_f [(x·V)_f² − (x²·V²)_f]`
///
/// which equals the pairwise-interaction form `Σ_{i<j} ⟨v_i, v_j⟩ x_i x_j`
/// plus bias and linear terms, computed in `O(n·d·f)`.
#[derive(Debug, Clone)]
pub struct FactorizationMachine {
    w0: ParamId,
    w: ParamId,
    v: ParamId,
    input_dim: usize,
    factors: usize,
}

impl FactorizationMachine {
    /// Registers FM weights under `name.*` with small-normal factor matrix.
    pub fn new(params: &mut Params, rng: &mut impl Rng, name: &str, input_dim: usize, factors: usize) -> Self {
        Self {
            w0: params.register(format!("{name}.w0"), Tensor::zeros(1, 1)),
            w: params.register(format!("{name}.w"), init::normal(rng, input_dim, 1, 0.0, 0.01)),
            v: params.register(format!("{name}.v"), init::normal(rng, input_dim, factors, 0.0, 0.05)),
            input_dim,
            factors,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of interaction factors.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Predicts one score per row: `[n, d] -> [n, 1]`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        let (n, d) = tape.shape(x);
        assert_eq!(d, self.input_dim, "FactorizationMachine::forward: input dim {d}, expected {}", self.input_dim);
        let w0 = tape.param(params, self.w0);
        let w = tape.param(params, self.w);
        let v = tape.param(params, self.v);

        // Linear part: x·w + w0, with w0 broadcast over the n rows via ones·w0.
        let lin = tape.matmul(x, w);
        let ones = tape.constant(Tensor::ones(n, 1));
        let w0_rows = tape.matmul(ones, w0);
        let lin = tape.add(lin, w0_rows);

        // Interaction part: ½ Σ_f [(xV)² − (x²)(V²)]
        let xv = tape.matmul(x, v);
        let xv_sq = tape.square(xv);
        let x_sq = tape.square(x);
        let v_sq = tape.square(v);
        let x2v2 = tape.matmul(x_sq, v_sq);
        let diff = tape.sub(xv_sq, x2v2);
        let inter_sum = tape.sum_cols(diff);
        let inter = tape.scale(inter_sum, 0.5);

        tape.add(lin, inter)
    }

    /// Tape-free prediction for inference paths.
    pub fn infer(&self, params: &Params, x: &Tensor) -> Tensor {
        let w0 = params.get(self.w0).item();
        let lin = x.matmul(params.get(self.w)).map(|v| v + w0);
        let xv = x.matmul(params.get(self.v)).map(|v| v * v);
        let x2v2 = x.map(|v| v * v).matmul(&params.get(self.v).map(|v| v * v));
        let inter = xv.sub(&x2v2).sum_cols().scale(0.5);
        lin.add(&inter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_ok;
    use rand::{rngs::StdRng, SeedableRng};

    /// Brute-force FM for cross-checking the `O(ndf)` identity.
    fn fm_naive(params: &Params, fm: &FactorizationMachine, x: &Tensor) -> Vec<f32> {
        let w0 = params.get(fm.w0).item();
        let w = params.get(fm.w);
        let v = params.get(fm.v);
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                let mut y = w0;
                for (i, &xi) in row.iter().enumerate() {
                    y += w.get(i, 0) * xi;
                }
                for i in 0..row.len() {
                    for j in i + 1..row.len() {
                        let mut dot = 0.0;
                        for f in 0..fm.factors {
                            dot += v.get(i, f) * v.get(j, f);
                        }
                        y += dot * row[i] * row[j];
                    }
                }
                y
            })
            .collect()
    }

    #[test]
    fn fast_identity_matches_naive_pairwise_form() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut params = Params::new();
        let fm = FactorizationMachine::new(&mut params, &mut rng, "fm", 6, 3);
        let x = init::normal(&mut rng, 4, 6, 0.0, 1.0);
        let fast = fm.infer(&params, &x);
        let naive = fm_naive(&params, &fm, &x);
        for (r, &n) in naive.iter().enumerate() {
            assert!((fast.get(r, 0) - n).abs() < 1e-4, "row {r}: {} vs {n}", fast.get(r, 0));
        }
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(52);
        let mut params = Params::new();
        let fm = FactorizationMachine::new(&mut params, &mut rng, "fm", 5, 2);
        let x = init::normal(&mut rng, 3, 5, 0.0, 1.0);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = fm.forward(&mut tape, &params, xv);
        assert_eq!(tape.shape(y), (3, 1));
        assert!(tape.value(y).approx_eq(&fm.infer(&params, &x), 1e-4));
    }

    #[test]
    fn fm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut params = Params::new();
        let fm = FactorizationMachine::new(&mut params, &mut rng, "fm", 4, 2);
        let x = init::normal(&mut rng, 3, 4, 0.0, 1.0);
        let targets = Tensor::col_vector(&[1.0, -0.5, 2.0]);
        assert_gradients_ok(&mut params, move |p, tape| {
            let xv = tape.constant(x.clone());
            let y = fm.forward(tape, p, xv);
            tape.mse(y, &targets)
        });
    }
}
