//! Gated recurrent unit, the sequence model of the DER baseline.

use crate::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// GRU with fused `[update | reset]` gate weights and a separate candidate
/// projection.
#[derive(Debug, Clone)]
pub struct Gru {
    wx_zr: ParamId,
    wh_zr: ParamId,
    b_zr: ParamId,
    wx_n: ParamId,
    wh_n: ParamId,
    b_n: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl Gru {
    /// Registers GRU weights under `name.*`.
    pub fn new(params: &mut Params, rng: &mut impl Rng, name: &str, input_dim: usize, hidden_dim: usize) -> Self {
        Self {
            wx_zr: params.register(format!("{name}.wx_zr"), init::xavier_uniform(rng, input_dim, 2 * hidden_dim)),
            wh_zr: params.register(format!("{name}.wh_zr"), init::xavier_uniform(rng, hidden_dim, 2 * hidden_dim)),
            b_zr: params.register(format!("{name}.b_zr"), Tensor::zeros(1, 2 * hidden_dim)),
            wx_n: params.register(format!("{name}.wx_n"), init::xavier_uniform(rng, input_dim, hidden_dim)),
            wh_n: params.register(format!("{name}.wh_n"), init::xavier_uniform(rng, hidden_dim, hidden_dim)),
            b_n: params.register(format!("{name}.b_n"), Tensor::zeros(1, hidden_dim)),
            input_dim,
            hidden_dim,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One differentiable step: `x_t` is `[n, input]`, `h` is `[n, hidden]`.
    pub fn step(&self, tape: &mut Tape, params: &Params, x_t: Var, h: Var) -> Var {
        let hd = self.hidden_dim;
        let wx_zr = tape.param(params, self.wx_zr);
        let wh_zr = tape.param(params, self.wh_zr);
        let b_zr = tape.param(params, self.b_zr);
        let xz = tape.matmul(x_t, wx_zr);
        let hz = tape.matmul(h, wh_zr);
        let zr_pre = tape.add(xz, hz);
        let zr_pre = tape.add_row_broadcast(zr_pre, b_zr);
        let z_pre = tape.slice_cols(zr_pre, 0, hd);
        let r_pre = tape.slice_cols(zr_pre, hd, 2 * hd);
        let z = tape.sigmoid(z_pre);
        let r = tape.sigmoid(r_pre);

        let wx_n = tape.param(params, self.wx_n);
        let wh_n = tape.param(params, self.wh_n);
        let b_n = tape.param(params, self.b_n);
        let rh = tape.mul(r, h);
        let xn = tape.matmul(x_t, wx_n);
        let hn = tape.matmul(rh, wh_n);
        let n_pre = tape.add(xn, hn);
        let n_pre = tape.add_row_broadcast(n_pre, b_n);
        let n = tape.tanh(n_pre);

        // h' = (1 − z) ⊙ n + z ⊙ h
        let zn = tape.mul(z, n);
        let n_minus_zn = tape.sub(n, zn);
        let zh = tape.mul(z, h);
        tape.add(n_minus_zn, zh)
    }

    /// Runs over a `[T, input]` sequence node, returning the final hidden
    /// state (`[1, hidden]`).
    pub fn forward_final(&self, tape: &mut Tape, params: &Params, seq: Var) -> Var {
        let t_len = tape.value(seq).rows();
        assert!(t_len > 0, "Gru::forward_final: empty sequence");
        let mut h = tape.constant(Tensor::zeros(1, self.hidden_dim));
        for t in 0..t_len {
            let x_t = tape.gather_rows(seq, &[t]);
            h = self.step(tape, params, x_t, h);
        }
        h
    }

    /// Tape-free final hidden state.
    pub fn infer_final(&self, params: &Params, seq: &Tensor) -> Tensor {
        let (t_len, d) = seq.shape();
        assert_eq!(d, self.input_dim, "Gru::infer_final: input dim {d}, expected {}", self.input_dim);
        let hd = self.hidden_dim;
        let mut h = Tensor::zeros(1, hd);
        for t in 0..t_len {
            let x_t = seq.gather_rows(&[t]);
            let mut zr = x_t.matmul(params.get(self.wx_zr));
            zr.add_assign(&h.matmul(params.get(self.wh_zr)));
            zr = zr.add_row_broadcast(params.get(self.b_zr));
            let z: Vec<f32> = (0..hd).map(|j| sigmoid(zr.get(0, j))).collect();
            let r: Vec<f32> = (0..hd).map(|j| sigmoid(zr.get(0, hd + j))).collect();
            let rh = Tensor::from_vec(1, hd, (0..hd).map(|j| r[j] * h.get(0, j)).collect());
            let mut n = x_t.matmul(params.get(self.wx_n));
            n.add_assign(&rh.matmul(params.get(self.wh_n)));
            n = n.add_row_broadcast(params.get(self.b_n));
            let mut h_next = Tensor::zeros(1, hd);
            for (j, (&zj, slot)) in z.iter().zip(h_next.row_mut(0).iter_mut()).enumerate() {
                let nj = n.get(0, j).tanh();
                *slot = (1.0 - zj) * nj + zj * h.get(0, j);
            }
            h = h_next;
        }
        h
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_ok;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut params = Params::new();
        let gru = Gru::new(&mut params, &mut rng, "g", 3, 4);
        let seq = init::normal(&mut rng, 5, 3, 0.0, 1.0);
        let mut tape = Tape::new();
        let sv = tape.constant(seq.clone());
        let h = gru.forward_final(&mut tape, &params, sv);
        assert_eq!(tape.shape(h), (1, 4));
        assert!(tape.value(h).approx_eq(&gru.infer_final(&params, &seq), 1e-5));
    }

    #[test]
    fn gru_gradcheck() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut params = Params::new();
        let gru = Gru::new(&mut params, &mut rng, "g", 2, 3);
        let seq = init::normal(&mut rng, 3, 2, 0.0, 1.0);
        assert_gradients_ok(&mut params, move |p, tape| {
            let sv = tape.constant(seq.clone());
            let h = gru.forward_final(tape, p, sv);
            let sq = tape.square(h);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn zero_update_gate_bias_mixes_state() {
        // With a single step from h=0 the output must lie in (-1, 1) strictly.
        let mut rng = StdRng::seed_from_u64(15);
        let mut params = Params::new();
        let gru = Gru::new(&mut params, &mut rng, "g", 2, 2);
        let seq = Tensor::from_vec(1, 2, vec![0.5, -0.5]);
        let h = gru.infer_final(&params, &seq);
        assert!(h.as_slice().iter().all(|&x| x.abs() < 1.0));
    }
}
