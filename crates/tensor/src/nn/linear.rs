//! Fully connected layer.

use crate::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// Dense affine layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialised `in_dim × out_dim` weight and zero bias
    /// under `name.w` / `name.b`.
    pub fn new(params: &mut Params, rng: &mut impl Rng, name: &str, in_dim: usize, out_dim: usize) -> Self {
        let w = params.register(format!("{name}.w"), init::xavier_uniform(rng, in_dim, out_dim));
        let b = params.register(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Handle of the weight matrix.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Handle of the bias row.
    pub fn bias(&self) -> ParamId {
        self.b
    }

    /// Applies the layer to a `[n, in_dim]` node, producing `[n, out_dim]`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        assert_eq!(
            tape.value(x).cols(),
            self.in_dim,
            "Linear::forward: input has {} features, layer expects {}",
            tape.value(x).cols(),
            self.in_dim
        );
        let w = tape.param(params, self.w);
        let b = tape.param(params, self.b);
        tape.affine(x, w, b)
    }

    /// Tape-free forward for inference paths.
    pub fn infer(&self, params: &Params, x: &Tensor) -> Tensor {
        x.matmul(params.get(self.w)).add_row_broadcast(params.get(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_ok;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_shape_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let layer = Linear::new(&mut params, &mut rng, "fc", 4, 3);
        let x = init::normal(&mut rng, 5, 4, 0.0, 1.0);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = layer.forward(&mut tape, &params, xv);
        assert_eq!(tape.shape(y), (5, 3));
        assert!(tape.value(y).approx_eq(&layer.infer(&params, &x), 1e-5));
    }

    #[test]
    fn gradients_pass_numeric_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let layer = Linear::new(&mut params, &mut rng, "fc", 3, 2);
        let x = init::normal(&mut rng, 4, 3, 0.0, 1.0);
        assert_gradients_ok(&mut params, move |p, tape| {
            let xv = tape.constant(x.clone());
            let y = layer.forward(tape, p, xv);
            let sq = tape.square(y);
            tape.mean_all(sq)
        });
    }
}
