//! Additive (fraud-)attention pooling — paper §III-D, Eq. (5)–(7).
//!
//! Scores each of `m` review embeddings against a context vector (the
//! concatenated user- and item-ID embeddings), softmaxes the scores into
//! weights `α`, and returns the weighted sum of the review embeddings.
//!
//! The paper writes separate context projections `W_u e_u + W_i e_i`; this
//! layer takes the context pre-concatenated and uses the block matrix
//! `W_ctx = [W_u; W_i]`, which is algebraically identical.

use crate::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// Additive attention pooling over the rows of an `[m, k]` matrix.
#[derive(Debug, Clone)]
pub struct AttentionPool {
    w_rev: ParamId,
    w_ctx: ParamId,
    b1: ParamId,
    h: ParamId,
    b2: ParamId,
    item_dim: usize,
    ctx_dim: usize,
    attn_dim: usize,
}

/// Large negative logit used to exclude zero-padded positions from the
/// softmax; chosen well inside `f32` range so `exp` underflows cleanly.
const MASK_LOGIT: f32 = -1.0e9;

impl AttentionPool {
    /// Registers attention weights under `name.*`.
    ///
    /// * `item_dim` — dimension of each pooled row (the review embedding).
    /// * `ctx_dim` — dimension of the context vector.
    /// * `attn_dim` — hidden size of the score MLP.
    pub fn new(
        params: &mut Params,
        rng: &mut impl Rng,
        name: &str,
        item_dim: usize,
        ctx_dim: usize,
        attn_dim: usize,
    ) -> Self {
        Self {
            w_rev: params.register(format!("{name}.w_rev"), init::xavier_uniform(rng, item_dim, attn_dim)),
            w_ctx: params.register(format!("{name}.w_ctx"), init::xavier_uniform(rng, ctx_dim, attn_dim)),
            b1: params.register(format!("{name}.b1"), Tensor::zeros(1, attn_dim)),
            h: params.register(format!("{name}.h"), init::xavier_uniform(rng, attn_dim, 1)),
            b2: params.register(format!("{name}.b2"), Tensor::zeros(1, 1)),
            item_dim,
            ctx_dim,
            attn_dim,
        }
    }

    /// Dimension of each pooled row.
    pub fn item_dim(&self) -> usize {
        self.item_dim
    }

    /// Dimension of the context vector.
    pub fn ctx_dim(&self) -> usize {
        self.ctx_dim
    }

    /// Hidden size of the score MLP.
    pub fn attn_dim(&self) -> usize {
        self.attn_dim
    }

    /// Raw attention logits `α*` (`[m, 1]`) for rows `items` (`[m, k]`)
    /// against context. Eq. (5).
    ///
    /// `context` is either `[1, ctx_dim]` (one shared context broadcast over
    /// all rows — RRRE's target user/item IDs) or `[m, ctx_dim]` (a per-row
    /// context — NARRE attends with the ID embedding of each review's own
    /// counterpart entity).
    fn logits(&self, tape: &mut Tape, params: &Params, items: Var, context: Var) -> Var {
        let m = tape.value(items).rows();
        assert_eq!(tape.value(items).cols(), self.item_dim, "AttentionPool: item dim mismatch");
        let ctx_shape = tape.value(context).shape();
        assert!(
            ctx_shape == (1, self.ctx_dim) || ctx_shape == (m, self.ctx_dim),
            "AttentionPool: context must be [1, {}] or [{m}, {}], got {ctx_shape:?}",
            self.ctx_dim,
            self.ctx_dim
        );
        let w_rev = tape.param(params, self.w_rev);
        let w_ctx = tape.param(params, self.w_ctx);
        let b1 = tape.param(params, self.b1);
        let h = tape.param(params, self.h);
        let b2 = tape.param(params, self.b2);

        let proj_items = tape.matmul(items, w_rev);
        let proj_ctx = tape.matmul(context, w_ctx);
        let pre = if ctx_shape.0 == 1 {
            let ctx_plus_b1 = tape.add(proj_ctx, b1);
            tape.add_row_broadcast(proj_items, ctx_plus_b1)
        } else {
            let summed = tape.add(proj_items, proj_ctx);
            tape.add_row_broadcast(summed, b1)
        };
        let act = tape.tanh(pre);
        let scores = tape.matmul(act, h);
        tape.add_row_broadcast(scores, b2)
    }

    /// Attention weights `α` (`[m, 1]`, Eq. 6). Positions where
    /// `mask[j] == false` (zero padding) are excluded from the softmax.
    ///
    /// # Panics
    /// Panics if a mask is supplied with the wrong length or masks out every
    /// position.
    pub fn weights(
        &self,
        tape: &mut Tape,
        params: &Params,
        items: Var,
        context: Var,
        mask: Option<&[bool]>,
    ) -> Var {
        let m = tape.value(items).rows();
        let mut logits = self.logits(tape, params, items, context);
        if let Some(mask) = mask {
            assert_eq!(mask.len(), m, "AttentionPool: mask of {} for {m} rows", mask.len());
            assert!(mask.iter().any(|&b| b), "AttentionPool: all positions masked");
            let penalty = Tensor::col_vector(
                &mask.iter().map(|&b| if b { 0.0 } else { MASK_LOGIT }).collect::<Vec<_>>(),
            );
            let penalty = tape.constant(penalty);
            logits = tape.add(logits, penalty);
        }
        let row = tape.transpose(logits);
        let soft = tape.softmax_rows(row);
        tape.transpose(soft)
    }

    /// Full pooling: weighted sum of the rows (`[1, k]`, Eq. 7).
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        items: Var,
        context: Var,
        mask: Option<&[bool]>,
    ) -> Var {
        let alpha = self.weights(tape, params, items, context, mask);
        let weighted = tape.mul_col_broadcast(items, alpha);
        tape.sum_rows(weighted)
    }

    /// Tape-free attention weights for inference/explanation paths. Accepts
    /// the same `[1, ctx]` or `[m, ctx]` context shapes as the tape forward.
    pub fn infer_weights(&self, params: &Params, items: &Tensor, context: &Tensor, mask: Option<&[bool]>) -> Vec<f32> {
        let proj_ctx = context.matmul(params.get(self.w_ctx));
        let proj_items = items.matmul(params.get(self.w_rev));
        let pre = if proj_ctx.rows() == 1 {
            proj_items.add_row_broadcast(&proj_ctx.add(params.get(self.b1)))
        } else {
            proj_items.add(&proj_ctx).add_row_broadcast(params.get(self.b1))
        };
        let proj = pre.map(f32::tanh);
        let mut scores: Vec<f32> = proj
            .matmul(params.get(self.h))
            .map(|x| x + params.get(self.b2).item())
            .into_vec();
        if let Some(mask) = mask {
            for (s, &keep) in scores.iter_mut().zip(mask) {
                if !keep {
                    *s = MASK_LOGIT;
                }
            }
        }
        let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for s in &mut scores {
            *s = (*s - m).exp();
            denom += *s;
        }
        for s in &mut scores {
            *s /= denom;
        }
        scores
    }

    /// Tape-free pooled output.
    pub fn infer(&self, params: &Params, items: &Tensor, context: &Tensor, mask: Option<&[bool]>) -> Tensor {
        let alpha = self.infer_weights(params, items, context, mask);
        let mut out = Tensor::zeros(1, items.cols());
        for (r, &a) in alpha.iter().enumerate() {
            for (o, &x) in out.row_mut(0).iter_mut().zip(items.row(r)) {
                *o += a * x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_ok;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(seed: u64) -> (Params, AttentionPool, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let attn = AttentionPool::new(&mut params, &mut rng, "a", 4, 3, 5);
        let items = init::normal(&mut rng, 6, 4, 0.0, 1.0);
        let ctx = init::normal(&mut rng, 1, 3, 0.0, 1.0);
        (params, attn, items, ctx)
    }

    #[test]
    fn weights_sum_to_one() {
        let (params, attn, items, ctx) = setup(41);
        let mut tape = Tape::new();
        let iv = tape.constant(items.clone());
        let cv = tape.constant(ctx.clone());
        let w = attn.weights(&mut tape, &params, iv, cv, None);
        assert_eq!(tape.shape(w), (6, 1));
        assert!((tape.value(w).sum() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn masked_positions_get_zero_weight() {
        let (params, attn, items, ctx) = setup(42);
        let mask = [true, false, true, false, true, true];
        let w = attn.infer_weights(&params, &items, &ctx, Some(&mask));
        assert!(w[1] < 1e-12 && w[3] < 1e-12);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn forward_and_infer_agree() {
        let (params, attn, items, ctx) = setup(43);
        let mask = [true, true, false, true, true, false];
        let mut tape = Tape::new();
        let iv = tape.constant(items.clone());
        let cv = tape.constant(ctx.clone());
        let out = attn.forward(&mut tape, &params, iv, cv, Some(&mask));
        assert_eq!(tape.shape(out), (1, 4));
        assert!(tape.value(out).approx_eq(&attn.infer(&params, &items, &ctx, Some(&mask)), 1e-4));
    }

    #[test]
    fn pooled_output_is_convex_combination() {
        // With a single unmasked row, the output must equal that row.
        let (params, attn, items, ctx) = setup(44);
        let mask = [false, false, true, false, false, false];
        let out = attn.infer(&params, &items, &ctx, Some(&mask));
        assert!(out.approx_eq(&items.row_tensor(2), 1e-4));
    }

    #[test]
    fn per_row_context_matches_tape_and_infer() {
        let (params, attn, items, _) = setup(46);
        let mut rng = StdRng::seed_from_u64(47);
        let ctx_rows = init::normal(&mut rng, 6, 3, 0.0, 1.0);
        let mut tape = Tape::new();
        let iv = tape.constant(items.clone());
        let cv = tape.constant(ctx_rows.clone());
        let w = attn.weights(&mut tape, &params, iv, cv, None);
        let inferred = attn.infer_weights(&params, &items, &ctx_rows, None);
        for (r, &iw) in inferred.iter().enumerate() {
            assert!((tape.value(w).get(r, 0) - iw).abs() < 1e-5);
        }
        assert!((inferred.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn per_row_context_gradcheck() {
        let mut rng = StdRng::seed_from_u64(48);
        let mut params = Params::new();
        let attn = AttentionPool::new(&mut params, &mut rng, "a", 3, 2, 4);
        let items = init::normal(&mut rng, 4, 3, 0.0, 1.0);
        let ctx = init::normal(&mut rng, 4, 2, 0.0, 1.0);
        assert_gradients_ok(&mut params, move |p, tape| {
            let iv = tape.constant(items.clone());
            let cv = tape.constant(ctx.clone());
            let out = attn.forward(tape, p, iv, cv, None);
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn attention_gradcheck() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut params = Params::new();
        let attn = AttentionPool::new(&mut params, &mut rng, "a", 3, 2, 4);
        let items = init::normal(&mut rng, 4, 3, 0.0, 1.0);
        let ctx = init::normal(&mut rng, 1, 2, 0.0, 1.0);
        let mask = [true, true, false, true];
        assert_gradients_ok(&mut params, move |p, tape| {
            let iv = tape.constant(items.clone());
            let cv = tape.constant(ctx.clone());
            let out = attn.forward(tape, p, iv, cv, Some(&mask));
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
    }
}
