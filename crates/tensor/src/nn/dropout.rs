//! Inverted dropout.

use crate::{Params, Tape, Tensor, Var};
use rand::Rng;

/// Inverted dropout: at train time each element is zeroed with probability
/// `rate` and survivors are scaled by `1/(1-rate)`, so evaluation needs no
/// rescaling and is the identity.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    rate: f32,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    /// Panics unless `0 ≤ rate < 1`.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "Dropout: rate {rate} outside [0, 1)");
        Self { rate }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Applies dropout. `train = false` (or `rate == 0`) is the identity.
    /// The mask is drawn from `rng` and recorded as a constant, so the tape
    /// stays a pure function of its recorded values.
    pub fn forward(&self, tape: &mut Tape, _params: &Params, x: Var, rng: &mut impl Rng, train: bool) -> Var {
        if !train || self.rate == 0.0 {
            return x;
        }
        let (r, c) = tape.shape(x);
        let keep = 1.0 - self.rate;
        let mut mask = Tensor::zeros(r, c);
        for m in mask.as_mut_slice() {
            if rng.gen::<f32>() >= self.rate {
                *m = 1.0 / keep;
            }
        }
        let mask = tape.constant(mask);
        tape.apply_mask(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = StdRng::seed_from_u64(31);
        let params = Params::new();
        let drop = Dropout::new(0.5);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(3, 3));
        let y = drop.forward(&mut tape, &params, x, &mut rng, false);
        assert!(tape.value(y).approx_eq(&Tensor::ones(3, 3), 0.0));
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(32);
        let params = Params::new();
        let drop = Dropout::new(0.3);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(100, 100));
        let y = drop.forward(&mut tape, &params, x, &mut rng, true);
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_rate_panics() {
        let _ = Dropout::new(1.0);
    }
}
