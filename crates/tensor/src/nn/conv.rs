//! 1-D convolution over time with max pooling — the text encoder of the
//! DeepCoNN baseline (Kim-style CNN for sentence classification).

use crate::{init, ParamId, Params, Tape, Tensor, Var};
use rand::Rng;

/// `filters` convolution kernels of window `width` over a `[T, d]` word
/// sequence, ReLU, then max-over-time pooling to `[1, filters]`.
#[derive(Debug, Clone)]
pub struct Conv1dMaxPool {
    w: ParamId,
    b: ParamId,
    width: usize,
    input_dim: usize,
    filters: usize,
}

impl Conv1dMaxPool {
    /// Registers He-initialised kernels under `name.*`.
    pub fn new(
        params: &mut Params,
        rng: &mut impl Rng,
        name: &str,
        input_dim: usize,
        width: usize,
        filters: usize,
    ) -> Self {
        assert!(width >= 1, "Conv1dMaxPool: window width must be positive");
        let w = params.register(format!("{name}.w"), init::he_normal(rng, width * input_dim, filters));
        let b = params.register(format!("{name}.b"), Tensor::zeros(1, filters));
        Self { w, b, width, input_dim, filters }
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Convolution window width (in timesteps).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Applies the layer to a `[T, input_dim]` node; `T` must be at least the
    /// window width. Output is `[1, filters]`.
    pub fn forward(&self, tape: &mut Tape, params: &Params, seq: Var) -> Var {
        let (t, d) = tape.shape(seq);
        assert_eq!(d, self.input_dim, "Conv1dMaxPool::forward: input dim {d}, expected {}", self.input_dim);
        assert!(t >= self.width, "Conv1dMaxPool::forward: sequence of {t} shorter than window {}", self.width);
        let unfolded = tape.im2col(seq, self.width);
        let w = tape.param(params, self.w);
        let b = tape.param(params, self.b);
        let conv = tape.affine(unfolded, w, b);
        let act = tape.relu(conv);
        tape.max_over_rows(act)
    }

    /// Tape-free forward for inference paths.
    pub fn infer(&self, params: &Params, seq: &Tensor) -> Tensor {
        let (t, d) = seq.shape();
        assert_eq!(d, self.input_dim, "Conv1dMaxPool::infer: input dim {d}, expected {}", self.input_dim);
        assert!(t >= self.width, "Conv1dMaxPool::infer: sequence of {t} shorter than window {}", self.width);
        let windows = t + 1 - self.width;
        let mut unfolded = Tensor::zeros(windows, self.width * d);
        for w_i in 0..windows {
            for off in 0..self.width {
                let start = off * d;
                unfolded.row_mut(w_i)[start..start + d].copy_from_slice(seq.row(w_i + off));
            }
        }
        let conv = unfolded
            .matmul(params.get(self.w))
            .add_row_broadcast(params.get(self.b))
            .map(|x| x.max(0.0));
        let mut out = Tensor::full(1, self.filters, f32::NEG_INFINITY);
        for r in 0..conv.rows() {
            for (c, &v) in conv.row(r).iter().enumerate() {
                if v > out.get(0, c) {
                    out.set(0, c, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_ok;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut params = Params::new();
        let conv = Conv1dMaxPool::new(&mut params, &mut rng, "c", 3, 2, 5);
        let seq = init::normal(&mut rng, 7, 3, 0.0, 1.0);
        let mut tape = Tape::new();
        let sv = tape.constant(seq.clone());
        let out = conv.forward(&mut tape, &params, sv);
        assert_eq!(tape.shape(out), (1, 5));
        assert!(tape.value(out).approx_eq(&conv.infer(&params, &seq), 1e-5));
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut params = Params::new();
        let conv = Conv1dMaxPool::new(&mut params, &mut rng, "c", 2, 2, 3);
        let seq = init::normal(&mut rng, 5, 2, 0.0, 1.0);
        assert_gradients_ok(&mut params, move |p, tape| {
            let sv = tape.constant(seq.clone());
            let out = conv.forward(tape, p, sv);
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn pooling_is_translation_insensitive_for_isolated_peak() {
        // A strong pattern should yield the same pooled value wherever it
        // appears in the (zero) sequence.
        let mut rng = StdRng::seed_from_u64(23);
        let mut params = Params::new();
        let conv = Conv1dMaxPool::new(&mut params, &mut rng, "c", 2, 1, 4);
        let mut a = Tensor::zeros(6, 2);
        a.set(1, 0, 3.0);
        let mut b = Tensor::zeros(6, 2);
        b.set(4, 0, 3.0);
        assert!(conv.infer(&params, &a).approx_eq(&conv.infer(&params, &b), 1e-5));
    }
}
