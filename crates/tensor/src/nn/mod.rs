//! Neural-network layers built on the autograd tape.
//!
//! Layers register their weights in a shared [`crate::Params`] store at
//! construction and are stateless afterwards: `forward` records ops on a
//! caller-supplied [`crate::Tape`]. Layers that sit on hot inference paths
//! (the review encoders) additionally expose tape-free `infer` methods.

mod attention;
mod conv;
mod dropout;
mod embedding;
mod fm;
mod gru;
mod linear;
mod lstm;

pub use attention::AttentionPool;
pub use conv::Conv1dMaxPool;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use fm::FactorizationMachine;
pub use gru::Gru;
pub use linear::Linear;
pub use lstm::{BiLstm, Lstm};
