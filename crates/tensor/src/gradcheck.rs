//! Numerical gradient checking.
//!
//! Every differentiable op and layer in this workspace is validated against
//! central finite differences. The checker perturbs each scalar weight of
//! each parameter, rebuilds the forward pass through the user's closure, and
//! compares the analytic gradient from [`Tape::backward`] with
//! `(f(θ+ε) − f(θ−ε)) / 2ε` under a mixed absolute/relative tolerance
//! appropriate for `f32`.

use crate::{Params, Tape, Var};

/// Configuration for [`check_gradients`].
#[derive(Debug, Clone, Copy)]
pub struct GradCheck {
    /// Finite-difference step.
    pub epsilon: f32,
    /// Absolute tolerance floor.
    pub atol: f32,
    /// Relative tolerance against `max(|analytic|, |numeric|)`.
    pub rtol: f32,
}

impl Default for GradCheck {
    fn default() -> Self {
        Self { epsilon: 1e-2, atol: 2e-3, rtol: 2e-2 }
    }
}

/// A single gradient-check failure.
#[derive(Debug, Clone)]
pub struct GradMismatch {
    /// Name of the offending parameter.
    pub param: String,
    /// Flat index of the offending scalar within the parameter.
    pub index: usize,
    /// Analytic gradient from the tape.
    pub analytic: f32,
    /// Central-difference estimate.
    pub numeric: f32,
}

/// Checks the analytic gradients of every parameter in `params` for the loss
/// built by `build` (which must return a `1 × 1` loss node).
///
/// Returns all mismatches; an empty `Vec` means the check passed. `build`
/// must be a pure function of the parameter values (draw any randomness —
/// e.g. dropout masks — outside and capture it).
pub fn check_gradients(
    params: &mut Params,
    cfg: GradCheck,
    mut build: impl FnMut(&Params, &mut Tape) -> Var,
) -> Vec<GradMismatch> {
    // Analytic pass.
    params.zero_grads();
    let mut tape = Tape::new();
    let loss = build(params, &mut tape);
    tape.backward(loss, params);
    let analytic: Vec<Vec<f32>> = params.ids().map(|id| params.grad(id).as_slice().to_vec()).collect();

    let mut mismatches = Vec::new();
    let ids: Vec<_> = params.ids().collect();
    // Indexed loops are intentional: the body mutates `params` in place per
    // scalar, which rules out holding iterator borrows.
    #[allow(clippy::needless_range_loop)]
    for (pi, id) in ids.iter().enumerate() {
        let n = params.get(*id).len();
        for i in 0..n {
            let orig = params.get(*id).as_slice()[i];

            params.get_mut(*id).as_mut_slice()[i] = orig + cfg.epsilon;
            let mut t_plus = Tape::new();
            let l_plus = build(params, &mut t_plus);
            let f_plus = t_plus.value(l_plus).item();

            params.get_mut(*id).as_mut_slice()[i] = orig - cfg.epsilon;
            let mut t_minus = Tape::new();
            let l_minus = build(params, &mut t_minus);
            let f_minus = t_minus.value(l_minus).item();

            params.get_mut(*id).as_mut_slice()[i] = orig;

            let numeric = (f_plus - f_minus) / (2.0 * cfg.epsilon);
            let a = analytic[pi][i];
            let tol = cfg.atol + cfg.rtol * a.abs().max(numeric.abs());
            if (a - numeric).abs() > tol {
                mismatches.push(GradMismatch {
                    param: params.name(*id).to_string(),
                    index: i,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    mismatches
}

/// Asserts that [`check_gradients`] finds no mismatches, with a readable
/// panic message listing the first few offenders. Test helper.
pub fn assert_gradients_ok(params: &mut Params, build: impl FnMut(&Params, &mut Tape) -> Var) {
    let mismatches = check_gradients(params, GradCheck::default(), build);
    if !mismatches.is_empty() {
        let preview: Vec<String> = mismatches
            .iter()
            .take(5)
            .map(|m| {
                format!(
                    "{}[{}]: analytic {:.6} vs numeric {:.6}",
                    m.param, m.index, m.analytic, m.numeric
                )
            })
            .collect();
        panic!(
            "gradient check failed at {} scalar(s):\n  {}",
            mismatches.len(),
            preview.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Tensor};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn quadratic_bowl_passes() {
        let mut params = Params::new();
        params.register("x", Tensor::from_vec(1, 3, vec![0.3, -0.7, 1.2]));
        assert_gradients_ok(&mut params, |p, tape| {
            let x = tape.param(p, crate::ParamId(0));
            let sq = tape.square(x);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn detects_a_wrong_gradient() {
        // A build function whose value ignores the parameter but whose graph
        // pretends to use it would be caught; emulate by comparing tanh vs
        // identity — the checker must flag the discrepancy when we lie about
        // the forward (here: grad of x for loss sum(tanh(x)) vs numeric of
        // sum(x)). We construct the lie by toggling behaviour on a counter.
        let mut params = Params::new();
        params.register("x", Tensor::from_vec(1, 2, vec![0.9, -0.4]));
        let mut calls = 0usize;
        let mismatches = check_gradients(&mut params, GradCheck::default(), |p, tape| {
            let x = tape.param(p, crate::ParamId(0));
            calls += 1;
            if calls == 1 {
                // analytic pass sees tanh
                let t = tape.tanh(x);
                tape.sum_all(t)
            } else {
                // numeric passes see identity
                tape.sum_all(x)
            }
        });
        assert!(!mismatches.is_empty());
    }

    #[test]
    fn composite_network_passes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = Params::new();
        let w1 = params.register("w1", init::xavier_uniform(&mut rng, 4, 6));
        let b1 = params.register("b1", Tensor::zeros(1, 6));
        let w2 = params.register("w2", init::xavier_uniform(&mut rng, 6, 2));
        let b2 = params.register("b2", Tensor::zeros(1, 2));
        let x = init::normal(&mut rng, 3, 4, 0.0, 1.0);
        let targets = vec![0usize, 1, 0];
        assert_gradients_ok(&mut params, move |p, tape| {
            let xv = tape.constant(x.clone());
            let w1v = tape.param(p, w1);
            let b1v = tape.param(p, b1);
            let w2v = tape.param(p, w2);
            let b2v = tape.param(p, b2);
            let h = tape.affine(xv, w1v, b1v);
            let h = tape.tanh(h);
            let z = tape.affine(h, w2v, b2v);
            tape.softmax_cross_entropy(z, &targets, None)
        });
    }
}
