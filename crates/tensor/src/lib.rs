//! # rrre-tensor
//!
//! The deep-learning substrate of the RRRE reproduction: dense `f32`
//! matrices, reverse-mode automatic differentiation on an append-only tape,
//! the neural layers the paper's models are assembled from (Linear,
//! Embedding, LSTM/BiLSTM, GRU, 1-D CNN, additive attention, factorization
//! machine, dropout), losses, and first-order optimisers.
//!
//! Everything is implemented from scratch on `std` + `rand`; correctness of
//! every differentiable op and layer is enforced by numerical gradient
//! checking (see [`gradcheck`]).
//!
//! ## Quick example
//!
//! ```
//! use rrre_tensor::{nn::Linear, optim::Adam, Params, Tape, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let layer = Linear::new(&mut params, &mut rng, "fc", 2, 1);
//! let mut opt = Adam::new(0.05);
//!
//! // Learn y = x0 + x1.
//! let x = Tensor::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5], vec![0.0, 3.0]]);
//! let y = Tensor::col_vector(&[3.0, -0.5, 3.0]);
//! for _ in 0..400 {
//!     params.zero_grads();
//!     let mut tape = Tape::new();
//!     let xv = tape.constant(x.clone());
//!     let pred = layer.forward(&mut tape, &params, xv);
//!     let loss = tape.mse(pred, &y);
//!     tape.backward(loss, &mut params);
//!     opt.step(&mut params);
//! }
//! let mut tape = Tape::new();
//! let xv = tape.constant(x.clone());
//! let pred = layer.forward(&mut tape, &params, xv);
//! assert!(tape.value(pred).approx_eq(&y, 0.05));
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod nn;
pub mod optim;
mod ops;
mod params;
mod serialize;
mod tape;
mod tensor;

pub use params::{GradSink, GradStore, ParamId, Params};
pub use tape::{Tape, Var};
pub use tensor::Tensor;
