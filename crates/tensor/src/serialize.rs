//! Checkpointing: binary (de)serialisation of a [`Params`] store.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic  b"RRRP"            4 bytes
//! version u32               currently 1
//! count   u32               number of parameters
//! per parameter:
//!   name_len u32, name bytes (UTF-8)
//!   rows u32, cols u32
//!   rows*cols f32 values
//! ```
//!
//! Gradients are not persisted — a checkpoint restores weights, not
//! optimiser state.

use crate::{Params, Tensor};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RRRP";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Params {
    /// Writes all parameter values to `w` in checkpoint format.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;
        write_u32(w, self.len() as u32)?;
        for (_, name, value) in self.iter() {
            write_u32(w, name.len() as u32)?;
            w.write_all(name.as_bytes())?;
            let (rows, cols) = value.shape();
            write_u32(w, rows as u32)?;
            write_u32(w, cols as u32)?;
            for &x in value.as_slice() {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reads a checkpoint into a fresh store (zeroed gradients).
    pub fn read_from(r: &mut impl Read) -> io::Result<Params> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("not an RRRP checkpoint"));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(invalid(format!("unsupported checkpoint version {version}")));
        }
        let count = read_u32(r)? as usize;
        let mut params = Params::new();
        for _ in 0..count {
            let name_len = read_u32(r)? as usize;
            if name_len > 1 << 20 {
                return Err(invalid("implausible parameter name length"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|e| invalid(e.to_string()))?;
            let rows = read_u32(r)? as usize;
            let cols = read_u32(r)? as usize;
            if rows.saturating_mul(cols) > 1 << 28 {
                return Err(invalid("implausible tensor size"));
            }
            let mut data = vec![0.0f32; rows * cols];
            let mut buf = [0u8; 4];
            for x in &mut data {
                r.read_exact(&mut buf)?;
                *x = f32::from_le_bytes(buf);
            }
            params.register(name, Tensor::from_vec(rows, cols, data));
        }
        Ok(params)
    }

    /// Saves a checkpoint file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)
    }

    /// Loads a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Params> {
        let mut r = BufReader::new(File::open(path)?);
        Self::read_from(&mut r)
    }

    /// Copies the values of `other` into this store. The parameter count,
    /// registration order, names and shapes must all match — the intended
    /// flow is: rebuild the model with the same config (same registrations),
    /// then restore its weights.
    pub fn restore_values(&mut self, other: &Params) -> Result<(), String> {
        if self.len() != other.len() {
            return Err(format!("parameter count mismatch: {} vs {}", self.len(), other.len()));
        }
        for (id, other_id) in self.ids().zip(other.ids()).collect::<Vec<_>>() {
            let (name, other_name) = (self.name(id).to_string(), other.name(other_id));
            if name != other_name {
                return Err(format!("parameter name mismatch: {name} vs {other_name}"));
            }
            if self.get(id).shape() != other.get(other_id).shape() {
                return Err(format!(
                    "shape mismatch for {name}: {:?} vs {:?}",
                    self.get(id).shape(),
                    other.get(other_id).shape()
                ));
            }
            *self.get_mut(id) = other.get(other_id).clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::{rngs::StdRng, SeedableRng};

    fn sample_params() -> Params {
        let mut rng = StdRng::seed_from_u64(77);
        let mut p = Params::new();
        p.register("layer.w", init::normal(&mut rng, 3, 4, 0.0, 1.0));
        p.register("layer.b", init::normal(&mut rng, 1, 4, 0.0, 1.0));
        p.register("emb.table", init::normal(&mut rng, 10, 2, 0.0, 0.1));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample_params();
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        let q = Params::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(q.len(), p.len());
        for (id, name, value) in p.iter() {
            assert_eq!(q.name(id), name);
            assert!(q.get(id).approx_eq(value, 0.0));
        }
    }

    #[test]
    fn file_roundtrip() {
        let p = sample_params();
        let dir = std::env::temp_dir().join("rrre-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.rrrp");
        p.save(&path).unwrap();
        let q = Params::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(q.get(crate::ParamId(2)).approx_eq(p.get(crate::ParamId(2)), 0.0));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = b"NOPE".to_vec();
        buf.extend_from_slice(&[0; 16]);
        assert!(Params::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let p = sample_params();
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(Params::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn restore_values_checks_structure() {
        let p = sample_params();
        let mut q = sample_params();
        q.restore_values(&p).unwrap();

        let mut wrong = Params::new();
        wrong.register("layer.w", Tensor::zeros(3, 4));
        assert!(q.restore_values(&wrong).is_err());

        let mut wrong_shape = sample_params();
        // Rebuild with a different shape for the last param.
        let mut r = Params::new();
        r.register("layer.w", Tensor::zeros(3, 4));
        r.register("layer.b", Tensor::zeros(1, 4));
        r.register("emb.table", Tensor::zeros(9, 2));
        assert!(wrong_shape.restore_values(&r).is_err());
    }
}
