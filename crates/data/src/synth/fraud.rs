//! Fraud injection.
//!
//! Yelp-shaped presets use *campaign fraud*: rings of fraudulent users blast
//! a target item with same-direction fakes inside a short time burst —
//! promoting bad items and demoting good ones, exactly the scenario the
//! paper's introduction and the FraudEagle assumption describe. Amazon-shaped
//! presets use *diffuse unhelpful reviews*: individually biased, off-topic,
//! low-information reviews matching that ground truth's provenance
//! (helpfulness votes rather than filter decisions).

use crate::synth::behavior::LatentWorld;
use crate::synth::config::SynthConfig;
use crate::synth::textgen::{fake_text, unhelpful_text, FraudDirection};
use crate::types::{ItemId, Label, Review, UserId};
use rand::Rng;
use std::collections::HashSet;

/// The outcome of fraud planning: fake reviews plus the set of fraudster
/// users (needed to generate their camouflage reviews).
#[derive(Debug)]
pub struct FraudOutcome {
    /// Generated fake reviews.
    pub reviews: Vec<Review>,
    /// Users designated as fraudsters.
    pub fraudsters: Vec<usize>,
}

/// Picks a campaign direction for an item: demote good items, promote bad
/// ones (the profitable strategies).
fn direction_for(quality: f32) -> FraudDirection {
    if quality >= 0.0 {
        FraudDirection::Demote
    } else {
        FraudDirection::Promote
    }
}

/// Star rating of a campaign fake: biased in the campaign direction but
/// with a deliberately subtle tail — professional fraud avoids the rating
/// statistics that would flag uniform 5s/1s, which keeps behavioural
/// detectors in the paper's 0.6–0.8 band.
fn fake_rating(direction: FraudDirection, rng: &mut impl Rng) -> f32 {
    let roll: f32 = rng.gen();
    match direction {
        FraudDirection::Promote => {
            if roll < 0.50 {
                5.0
            } else if roll < 0.90 {
                4.0
            } else {
                3.0
            }
        }
        FraudDirection::Demote => {
            if roll < 0.50 {
                1.0
            } else if roll < 0.90 {
                2.0
            } else {
                3.0
            }
        }
    }
}

/// Star rating of a diffuse unhelpful review: almost always the extreme.
fn extreme_rating(direction: FraudDirection, rng: &mut impl Rng) -> f32 {
    match direction {
        FraudDirection::Promote => {
            if rng.gen::<f32>() < 0.85 {
                5.0
            } else {
                4.0
            }
        }
        FraudDirection::Demote => {
            if rng.gen::<f32>() < 0.85 {
                1.0
            } else {
                2.0
            }
        }
    }
}

/// Generates `n_fake` fake reviews.
///
/// `taken` holds already-used `(user, item)` pairs and is extended with the
/// new ones so the driver can avoid duplicates across benign and fake
/// generation.
pub fn generate_fraud(
    cfg: &SynthConfig,
    world: &LatentWorld,
    n_fake: usize,
    taken: &mut HashSet<(usize, usize)>,
    rng: &mut impl Rng,
) -> FraudOutcome {
    // Size the fraudster pool from the configured fakes-per-fraudster rate.
    let n_fraudsters = ((n_fake as f64 / cfg.fakes_per_fraudster.max(0.1)).ceil() as usize)
        .clamp(1, cfg.n_users.saturating_sub(1).max(1));
    // Fraudsters are the tail of the user id space: ids are arbitrary labels,
    // so this is not a learnable shortcut, but it keeps them disjoint from
    // heavy benign reviewers deterministically.
    let fraudsters: Vec<usize> = (cfg.n_users - n_fraudsters..cfg.n_users).collect();

    // The quota can never exceed the number of distinct (fraudster, item)
    // pairs; clamp it so tiny scaled configs terminate.
    let n_fake = n_fake.min(fraudsters.len().saturating_mul(cfg.n_items));

    let mut reviews = Vec::with_capacity(n_fake);
    if cfg.campaign_fraud {
        // Campaign mode: bursts against extreme-quality targets. The outer
        // attempt bound guards against saturated targets near exhaustion.
        let mut campaigns = 0usize;
        let max_campaigns = n_fake * 20 + 100;
        while reviews.len() < n_fake && campaigns < max_campaigns {
            campaigns += 1;
            let item = pick_extreme_item(world, rng);
            let direction = direction_for(world.item_quality[item]);
            let size = rng.gen_range(cfg.campaign_size.0..=cfg.campaign_size.1).min(n_fake - reviews.len());
            let start = rng.gen_range(0..cfg.horizon_days.saturating_sub(20).max(1));
            let mut attempts = 0;
            let mut placed = 0;
            while placed < size && attempts < size * 20 {
                attempts += 1;
                let user = fraudsters[rng.gen_range(0..fraudsters.len())];
                if !taken.insert((user, item)) {
                    continue;
                }
                reviews.push(Review {
                    user: UserId(user as u32),
                    item: ItemId(item as u32),
                    rating: fake_rating(direction, rng),
                    label: Label::Fake,
                    timestamp: start + rng.gen_range(0..15),
                    text: fake_text(rng, direction, &world.aspect_words(item)),
                });
                placed += 1;
            }
            if placed == 0 {
                // Target saturated with this ring; try another item.
                continue;
            }
        }
    } else {
        // Diffuse mode: independent unhelpful reviews on popularity-sampled
        // items.
        let mut attempts = 0;
        while reviews.len() < n_fake && attempts < n_fake * 50 {
            attempts += 1;
            let user = fraudsters[rng.gen_range(0..fraudsters.len())];
            let item = LatentWorld::weighted_index(&world.item_popularity, rng);
            if !taken.insert((user, item)) {
                continue;
            }
            let direction = direction_for(world.item_quality[item]);
            reviews.push(Review {
                user: UserId(user as u32),
                item: ItemId(item as u32),
                // Unhelpful reviews are hot-headed rants/raves: reliably at
                // the extreme, which is exactly the consensus-deviation
                // signal REV2 exploits on the Amazon-shaped sets (paper
                // Table IV: REV2 strong on Musics/CDs, weak on Yelp).
                rating: extreme_rating(direction, rng),
                label: Label::Fake,
                // Session-like timing, same as benign users — diffuse
                // unhelpful reviewers have no burst signature.
                timestamp: world.benign_timestamp(user, cfg.horizon_days, rng),
                text: unhelpful_text(rng, direction),
            });
        }
    }

    FraudOutcome { reviews, fraudsters }
}

/// Samples an item with probability proportional to `|quality|` (extreme
/// items attract campaigns more) blended with popularity; the additive
/// constant keeps middling items in play so rating deviation alone does not
/// give fakes away.
fn pick_extreme_item(world: &LatentWorld, rng: &mut impl Rng) -> usize {
    let weights: Vec<f64> = world
        .item_quality
        .iter()
        .zip(&world.item_popularity)
        .map(|(&q, &p)| (q.abs() as f64 + 1.2) * p)
        .collect();
    LatentWorld::weighted_index(&weights, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(campaign: bool) -> (SynthConfig, LatentWorld, StdRng) {
        let mut cfg = if campaign {
            SynthConfig::yelp_chi().scaled(0.1)
        } else {
            SynthConfig::musics().scaled(0.1)
        };
        cfg.campaign_fraud = campaign;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let world = LatentWorld::generate(&cfg, &mut rng);
        (cfg, world, rng)
    }

    #[test]
    fn quota_met_and_all_fake_labelled() {
        let (cfg, world, mut rng) = setup(true);
        let mut taken = HashSet::new();
        let out = generate_fraud(&cfg, &world, 80, &mut taken, &mut rng);
        assert_eq!(out.reviews.len(), 80);
        assert!(out.reviews.iter().all(|r| r.label == Label::Fake));
        assert_eq!(taken.len(), 80);
    }

    #[test]
    fn fake_ratings_stay_on_their_side_of_neutral() {
        let (cfg, world, mut rng) = setup(true);
        let mut taken = HashSet::new();
        let out = generate_fraud(&cfg, &world, 60, &mut taken, &mut rng);
        for r in &out.reviews {
            let q = world.item_quality[r.item.index()];
            if q >= 0.0 {
                assert!(r.rating <= 3.0, "demote rating {}", r.rating);
            } else {
                assert!(r.rating >= 3.0, "promote rating {}", r.rating);
            }
        }
    }

    #[test]
    fn campaign_fakes_oppose_item_quality_on_average() {
        let (cfg, world, mut rng) = setup(true);
        let mut taken = HashSet::new();
        let out = generate_fraud(&cfg, &world, 60, &mut taken, &mut rng);
        let (mut promo, mut promo_n, mut demo, mut demo_n) = (0.0f32, 0usize, 0.0f32, 0usize);
        for r in &out.reviews {
            if world.item_quality[r.item.index()] >= 0.0 {
                demo += r.rating;
                demo_n += 1;
            } else {
                promo += r.rating;
                promo_n += 1;
            }
        }
        if demo_n > 0 {
            assert!(demo / demo_n as f32 <= 2.5, "demote mean {}", demo / demo_n as f32);
        }
        if promo_n > 0 {
            assert!(promo / promo_n as f32 >= 3.5, "promote mean {}", promo / promo_n as f32);
        }
        assert!(demo_n + promo_n > 0);
    }

    #[test]
    fn no_duplicate_pairs() {
        let (cfg, world, mut rng) = setup(false);
        let mut taken = HashSet::new();
        let out = generate_fraud(&cfg, &world, 100, &mut taken, &mut rng);
        let pairs: HashSet<(u32, u32)> = out.reviews.iter().map(|r| (r.user.0, r.item.0)).collect();
        assert_eq!(pairs.len(), out.reviews.len());
    }

    #[test]
    fn fraudsters_are_a_small_pool() {
        let (cfg, world, mut rng) = setup(true);
        let mut taken = HashSet::new();
        let out = generate_fraud(&cfg, &world, 80, &mut taken, &mut rng);
        assert!(out.fraudsters.len() < cfg.n_users / 2);
        let users: HashSet<u32> = out.reviews.iter().map(|r| r.user.0).collect();
        assert!(users.iter().all(|&u| out.fraudsters.contains(&(u as usize))));
    }
}
