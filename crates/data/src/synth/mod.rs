//! Synthetic labelled-review dataset generator.
//!
//! The real YelpChi/YelpNYC/YelpZip and Amazon Musics/CDs datasets are not
//! redistributable; this module generates datasets with the statistical
//! structure those datasets contribute to the paper's experiments — see
//! DESIGN.md §1 for the substitution argument. Entry point: [`generate`].

mod attack;
mod behavior;
mod config;
mod fraud;
mod textgen;

pub use attack::{AttackCampaign, AttackFamily, AttackReview, PoisonedDataset};
pub use behavior::{LatentWorld, LATENT_DIM};
pub use config::SynthConfig;
pub use textgen::{Domain, FraudDirection};

use crate::types::{ItemId, Label, Review, UserId};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Generates a dataset from a configuration. Deterministic in `cfg.seed`.
pub fn generate(cfg: &SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let world = LatentWorld::generate(cfg, &mut rng);

    let n_fake = ((cfg.n_reviews as f64) * cfg.fake_fraction).round() as usize;
    let n_benign = cfg.n_reviews.saturating_sub(n_fake);

    let mut taken: HashSet<(usize, usize)> = HashSet::with_capacity(cfg.n_reviews * 2);
    let fraud = fraud::generate_fraud(cfg, &world, n_fake, &mut taken, &mut rng);
    let mut reviews = fraud.reviews;

    // Camouflage: most fraudsters also post ordinary reviews, blurring pure
    // user-level separability — methods that only aggregate per-user signals
    // (graph marginals, behavioural profiles) lose precision, while a
    // review-level reader can still tell the posts apart.
    let mut benign_written = 0usize;
    for &f in &fraud.fraudsters {
        if benign_written >= n_benign {
            break;
        }
        for _ in 0..2 {
            if rng.gen::<f64>() < cfg.camouflage_rate {
                if let Some(r) = benign_review(cfg, &world, f, &mut taken, &mut rng) {
                    reviews.push(r);
                    benign_written += 1;
                }
            }
        }
    }

    // Ordinary benign reviews from the non-fraudster population.
    let n_honest_users = cfg.n_users - fraud.fraudsters.len();
    let honest_activity = &world.user_activity[..n_honest_users.max(1)];
    let mut attempts = 0usize;
    let max_attempts = n_benign * 50 + 100;
    while benign_written < n_benign && attempts < max_attempts {
        attempts += 1;
        let user = LatentWorld::weighted_index(honest_activity, &mut rng);
        if let Some(r) = benign_review(cfg, &world, user, &mut taken, &mut rng) {
            reviews.push(r);
            benign_written += 1;
        }
    }

    compact(cfg, reviews, &mut rng)
}

/// One benign review from `user` on a popularity-sampled item, or `None` if
/// the sampled pair already exists.
fn benign_review(
    cfg: &SynthConfig,
    world: &LatentWorld,
    user: usize,
    taken: &mut HashSet<(usize, usize)>,
    rng: &mut StdRng,
) -> Option<Review> {
    let item = LatentWorld::weighted_index(&world.item_popularity, rng);
    if !taken.insert((user, item)) {
        return None;
    }
    let rating = world.sample_rating(user, item, cfg.rating_noise, rng);
    Some(Review {
        user: UserId(user as u32),
        item: ItemId(item as u32),
        rating,
        label: Label::Benign,
        timestamp: world.benign_timestamp(user, cfg.horizon_days, rng),
        text: textgen::benign_text(rng, &world.aspect_words(item), rating),
    })
}

/// Remaps user/item ids to dense ranges over the entities that actually
/// appear, attaches display names, and validates into a [`Dataset`].
fn compact(cfg: &SynthConfig, mut reviews: Vec<Review>, rng: &mut StdRng) -> Dataset {
    let mut user_map: HashMap<u32, u32> = HashMap::new();
    let mut item_map: HashMap<u32, u32> = HashMap::new();
    // Sort for deterministic remapping independent of generation order.
    reviews.sort_by_key(|r| (r.timestamp, r.user.0, r.item.0));
    for r in &reviews {
        let next_u = user_map.len() as u32;
        user_map.entry(r.user.0).or_insert(next_u);
        let next_i = item_map.len() as u32;
        item_map.entry(r.item.0).or_insert(next_i);
    }
    for r in &mut reviews {
        r.user = UserId(user_map[&r.user.0]);
        r.item = ItemId(item_map[&r.item.0]);
    }
    let n_users = user_map.len();
    let n_items = item_map.len();
    let mut ds = Dataset::new(cfg.name.clone(), n_users, n_items, reviews);
    // Display names must be unique: the pools are small enough that raw
    // draws collide, so retry and fall back to a numeric suffix.
    let mut used = std::collections::HashSet::new();
    ds.item_names = (0..n_items)
        .map(|idx| {
            for _ in 0..8 {
                let name = item_name(cfg.domain, rng);
                if used.insert(name.clone()) {
                    return name;
                }
            }
            let name = format!("{} No.{}", item_name(cfg.domain, rng), idx + 2);
            used.insert(name.clone());
            name
        })
        .collect();
    ds.user_names = (0..n_users).map(|_| user_handle(rng)).collect();
    ds
}

const VENUE_ADJECTIVES: &[&str] = &[
    "Golden", "Rustic", "Smoky", "Velvet", "Copper", "Sunny", "Hidden", "Roaring", "Crimson",
    "Lucky", "Twisted", "Humble",
];
const VENUE_NOUNS: &[&str] = &[
    "Fork", "Kettle", "Lantern", "Griddle", "Oyster", "Barrel", "Spoon", "Hearth", "Parlor",
    "Tavern", "Bistro", "Canteen",
];
const BAND_FIRST: &[&str] = &[
    "Midnight", "Electric", "Paper", "Silver", "Neon", "Wandering", "Quiet", "Broken", "Violet",
    "Northern", "Crystal", "Hollow",
];
const BAND_SECOND: &[&str] = &[
    "Echoes", "Harbor", "Satellites", "Orchard", "Tides", "Lanterns", "Foxes", "Meridian",
    "Voltage", "Prairie", "Cascade", "Monument",
];

fn item_name(domain: Domain, rng: &mut StdRng) -> String {
    match domain {
        Domain::Restaurant => format!(
            "{} {}",
            VENUE_ADJECTIVES[rng.gen_range(0..VENUE_ADJECTIVES.len())],
            VENUE_NOUNS[rng.gen_range(0..VENUE_NOUNS.len())]
        ),
        Domain::Music => format!(
            "{} {}",
            BAND_FIRST[rng.gen_range(0..BAND_FIRST.len())],
            BAND_SECOND[rng.gen_range(0..BAND_SECOND.len())]
        ),
    }
}

/// Yelp-style opaque user handle (e.g. `zCvaSXHpGox`).
fn user_handle(rng: &mut StdRng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    (0..11).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::dataset_stats;

    #[test]
    fn generated_fraud_rate_close_to_target() {
        let cfg = SynthConfig::yelp_chi().scaled(0.3);
        let ds = generate(&cfg);
        let frac = ds.fake_fraction();
        assert!(
            (frac - cfg.fake_fraction).abs() < 0.02,
            "fraud rate {frac} vs target {}",
            cfg.fake_fraction
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig::musics().scaled(0.1);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.reviews[0].text, b.reviews[0].text);
        assert_eq!(a.reviews.last().unwrap().rating, b.reviews.last().unwrap().rating);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig::musics().scaled(0.1);
        let a = generate(&cfg);
        let b = generate(&cfg.clone().with_seed(99));
        assert!(a.reviews.iter().zip(&b.reviews).any(|(x, y)| x.text != y.text));
    }

    #[test]
    fn ids_are_dense_and_named() {
        let cfg = SynthConfig::yelp_chi().scaled(0.1);
        let ds = generate(&cfg);
        let stats = dataset_stats(&ds);
        assert_eq!(stats.n_users, ds.n_users, "user ids must be compacted");
        assert_eq!(stats.n_items, ds.n_items, "item ids must be compacted");
        assert_eq!(ds.item_names.len(), ds.n_items);
        assert_eq!(ds.user_names.len(), ds.n_users);
        assert_eq!(ds.user_names[0].len(), 11);
    }

    #[test]
    fn yelp_shape_items_high_degree_users_low() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.3));
        let s = dataset_stats(&ds);
        assert!(s.median_item_degree >= 10, "median item degree {}", s.median_item_degree);
        assert!(s.median_user_degree <= 4, "median user degree {}", s.median_user_degree);
    }

    #[test]
    fn amazon_shape_items_low_degree() {
        let ds = generate(&SynthConfig::musics().scaled(0.3));
        let s = dataset_stats(&ds);
        assert!(s.median_item_degree <= 5, "median item degree {}", s.median_item_degree);
    }

    #[test]
    fn fake_ratings_are_more_extreme_than_benign() {
        // Promote and demote campaigns cancel in the global mean, but fakes
        // are always extreme stars while benign ratings cluster mid-scale.
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.2));
        let extreme_rate = |label: Label| {
            let (mut n, mut e) = (0usize, 0usize);
            for r in ds.reviews.iter().filter(|r| r.label == label) {
                n += 1;
                if r.rating <= 1.0 || r.rating >= 5.0 {
                    e += 1;
                }
            }
            e as f64 / n.max(1) as f64
        };
        // Fakes now deliberately mimic ordinary rating behaviour; they are
        // only mildly more extreme (the behavioural signal the paper's
        // feature baselines sit at 0.6-0.8 AUC on).
        assert!(
            extreme_rate(Label::Fake) > extreme_rate(Label::Benign) - 0.05,
            "fake extreme rate {} vs benign {}",
            extreme_rate(Label::Fake),
            extreme_rate(Label::Benign)
        );
    }

    #[test]
    fn all_reviews_have_text() {
        let ds = generate(&SynthConfig::cds().scaled(0.1));
        assert!(ds.reviews.iter().all(|r| !r.text.is_empty()));
    }
}
