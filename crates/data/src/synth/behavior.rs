//! Latent benign world model: user preferences, item qualities, popularity
//! and activity distributions, and the true rating process.

use crate::synth::config::SynthConfig;
use crate::synth::textgen::{aspects_for, Domain};
use rand::Rng;

/// Dimension of the latent preference/factor vectors.
pub const LATENT_DIM: usize = 8;

/// The hidden ground-truth world the generator samples reviews from.
#[derive(Debug, Clone)]
pub struct LatentWorld {
    /// Per-user rating bias.
    pub user_bias: Vec<f32>,
    /// Per-user latent preference vectors.
    pub user_pref: Vec<[f32; LATENT_DIM]>,
    /// Per-user sampling weight (activity).
    pub user_activity: Vec<f64>,
    /// Per-item scalar quality (the "good/bad item" of the fraud-detection
    /// assumption the paper builds on).
    pub item_quality: Vec<f32>,
    /// Per-item latent factor vectors.
    pub item_factors: Vec<[f32; LATENT_DIM]>,
    /// Per-item sampling weight (popularity).
    pub item_popularity: Vec<f64>,
    /// Per-item aspect words (indices into the domain lexicon).
    pub item_aspects: Vec<Vec<usize>>,
    /// Per-user "session" days: benign users review in bursts too
    /// (weekend sprees), so burstiness alone cannot flag fraud.
    pub user_sessions: Vec<Vec<i64>>,
    /// Text domain.
    pub domain: Domain,
}

fn standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    }
}

impl LatentWorld {
    /// Samples a world from the configuration.
    pub fn generate(cfg: &SynthConfig, rng: &mut impl Rng) -> Self {
        let lexicon = aspects_for(cfg.domain);
        // A fat-tailed bias makes genuinely enthusiastic / grumpy benign
        // users (1- and 5-star habits) common, so rating extremity alone
        // cannot flag fraud.
        let user_bias = (0..cfg.n_users)
            .map(|_| {
                let z = standard_normal(rng);
                0.55 * z + 0.25 * z.signum() * z * z * 0.1
            })
            .collect();
        let user_pref = (0..cfg.n_users)
            .map(|_| std::array::from_fn(|_| standard_normal(rng)))
            .collect();
        let user_activity = (0..cfg.n_users)
            .map(|_| (cfg.user_activity_sigma as f32 * standard_normal(rng)).exp() as f64)
            .collect();
        let item_quality = (0..cfg.n_items).map(|_| 0.8 * standard_normal(rng)).collect();
        let item_factors = (0..cfg.n_items)
            .map(|_| std::array::from_fn(|_| standard_normal(rng)))
            .collect();
        let item_popularity = (0..cfg.n_items)
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(cfg.item_popularity_exponent))
            .collect();
        let item_aspects = (0..cfg.n_items)
            .map(|_| {
                let k = rng.gen_range(2..=3);
                let mut picked = Vec::with_capacity(k);
                while picked.len() < k {
                    let a = rng.gen_range(0..lexicon.len());
                    if !picked.contains(&a) {
                        picked.push(a);
                    }
                }
                picked
            })
            .collect();
        let user_sessions = (0..cfg.n_users)
            .map(|_| {
                let n = rng.gen_range(1..=3);
                (0..n).map(|_| rng.gen_range(0..cfg.horizon_days.max(1))).collect()
            })
            .collect();
        Self {
            user_bias,
            user_pref,
            user_activity,
            item_quality,
            item_factors,
            item_popularity,
            item_aspects,
            user_sessions,
            domain: cfg.domain,
        }
    }

    /// A benign timestamp for `user`: usually inside one of the user's
    /// session bursts, sometimes anywhere in the horizon.
    pub fn benign_timestamp(&self, user: usize, horizon: i64, rng: &mut impl Rng) -> i64 {
        let sessions = &self.user_sessions[user];
        if !sessions.is_empty() && rng.gen::<f32>() < 0.6 {
            let base = sessions[rng.gen_range(0..sessions.len())];
            (base + rng.gen_range(0..5)).min(horizon.max(1) - 1)
        } else {
            rng.gen_range(0..horizon.max(1))
        }
    }

    /// The noiseless expected rating a benign user gives an item.
    pub fn expected_rating(&self, user: usize, item: usize) -> f32 {
        let dot: f32 = self.user_pref[user]
            .iter()
            .zip(&self.item_factors[item])
            .map(|(&p, &q)| p * q)
            .sum();
        3.0 + 0.9 * self.item_quality[item] + self.user_bias[user] + 0.18 * dot
    }

    /// A noisy, clamped, integer star rating from the latent model.
    pub fn sample_rating(&self, user: usize, item: usize, noise: f32, rng: &mut impl Rng) -> f32 {
        let mu = self.expected_rating(user, item) + noise * standard_normal(rng);
        mu.round().clamp(1.0, 5.0)
    }

    /// Aspect word strings for an item.
    pub fn aspect_words(&self, item: usize) -> Vec<&'static str> {
        let lexicon = aspects_for(self.domain);
        self.item_aspects[item].iter().map(|&a| lexicon[a]).collect()
    }

    /// Samples an index from `weights` proportionally (linear scan — the
    /// pools are small enough that this is not a bottleneck).
    pub fn weighted_index(weights: &[f64], rng: &mut impl Rng) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weighted_index: zero total weight");
        let mut x = rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn world() -> LatentWorld {
        let cfg = SynthConfig::yelp_chi().scaled(0.05);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        LatentWorld::generate(&cfg, &mut rng)
    }

    #[test]
    fn shapes_match_config() {
        let w = world();
        assert_eq!(w.user_bias.len(), 150);
        assert_eq!(w.item_quality.len(), 2);
        assert!(w.item_aspects.iter().all(|a| (2..=3).contains(&a.len())));
    }

    #[test]
    fn ratings_are_valid_stars() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let r = w.sample_rating(0, 0, 0.7, &mut rng);
            assert!((1.0..=5.0).contains(&r));
            assert_eq!(r.fract(), 0.0);
        }
    }

    #[test]
    fn good_items_get_higher_ratings_on_average() {
        let cfg = SynthConfig::yelp_chi().scaled(0.2);
        let mut rng = StdRng::seed_from_u64(3);
        let w = LatentWorld::generate(&cfg, &mut rng);
        let best = (0..w.item_quality.len())
            .max_by(|&a, &b| w.item_quality[a].total_cmp(&w.item_quality[b]))
            .unwrap();
        let worst = (0..w.item_quality.len())
            .min_by(|&a, &b| w.item_quality[a].total_cmp(&w.item_quality[b]))
            .unwrap();
        let avg = |item: usize, rng: &mut StdRng| {
            (0..100).map(|u| w.sample_rating(u % w.user_bias.len(), item, 0.7, rng)).sum::<f32>() / 100.0
        };
        assert!(avg(best, &mut rng) > avg(worst, &mut rng));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..50 {
            assert_eq!(LatentWorld::weighted_index(&weights, &mut rng), 1);
        }
        let skewed = [1.0, 9.0];
        let hits = (0..2_000)
            .filter(|_| LatentWorld::weighted_index(&skewed, &mut rng) == 1)
            .count();
        assert!((1_600..=2_000).contains(&hits), "hits {hits}");
    }
}
