//! Generator configuration and the five dataset presets of the paper's
//! Table II, scaled to CPU-tractable sizes while preserving the statistics
//! the compared methods key on (fraud rate, degree shape, user/item ratio).

use crate::synth::textgen::Domain;

/// Full configuration of the synthetic dataset generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset display name.
    pub name: String,
    /// Text domain (aspect lexicon).
    pub domain: Domain,
    /// Size of the user pool (unused users are compacted away).
    pub n_users: usize,
    /// Size of the item pool.
    pub n_items: usize,
    /// Target total review count.
    pub n_reviews: usize,
    /// Target fraction of fake reviews (paper Table II column).
    pub fake_fraction: f64,
    /// Zipf exponent of item popularity (higher → more head-heavy).
    pub item_popularity_exponent: f64,
    /// Log-normal σ of user activity (higher → heavier-tailed user degrees).
    pub user_activity_sigma: f64,
    /// Standard deviation of the rating noise on top of the latent model.
    pub rating_noise: f32,
    /// Min/max fake reviews per fraud campaign (inclusive).
    pub campaign_size: (usize, usize),
    /// Probability that a fraudster also writes one benign camouflage review.
    pub camouflage_rate: f64,
    /// Mean fake reviews per fraudulent user. Low values create singleton
    /// "hit-and-run" fraudsters whose fairness graph methods cannot
    /// estimate — the paper's explanation for REV2's weakness on Yelp.
    pub fakes_per_fraudster: f64,
    /// Whether fakes are orchestrated campaigns (Yelp) or diffuse unhelpful
    /// reviews (Amazon's helpfulness-vote ground truth).
    pub campaign_fraud: bool,
    /// Time horizon in days; benign reviews are spread over it.
    pub horizon_days: i64,
    /// Master RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// YelpChi-shaped preset: very few, high-degree items; many low-degree
    /// users; 13.23 % fakes from bursty campaigns.
    pub fn yelp_chi() -> Self {
        Self {
            name: "YelpChi-sim".into(),
            domain: Domain::Restaurant,
            n_users: 3_000,
            n_items: 40,
            n_reviews: 6_000,
            fake_fraction: 0.1323,
            item_popularity_exponent: 0.7,
            user_activity_sigma: 0.9,
            rating_noise: 0.8,
            campaign_size: (8, 20),
            camouflage_rate: 0.35,
            fakes_per_fraudster: 1.4,
            campaign_fraud: true,
            horizon_days: 1_000,
            seed: 0xC41,
        }
    }

    /// YelpNYC-shaped preset: larger, 10.27 % fakes.
    pub fn yelp_nyc() -> Self {
        Self {
            name: "YelpNYC-sim".into(),
            n_users: 6_500,
            n_items: 110,
            n_reviews: 12_000,
            fake_fraction: 0.1027,
            seed: 0x117C,
            ..Self::yelp_chi()
        }
    }

    /// YelpZip-shaped preset: the largest Yelp set, 13.22 % fakes.
    pub fn yelp_zip() -> Self {
        Self {
            name: "YelpZip-sim".into(),
            n_users: 9_000,
            n_items: 260,
            n_reviews: 17_000,
            fake_fraction: 0.1322,
            seed: 0x21B,
            ..Self::yelp_chi()
        }
    }

    /// Amazon Musics-shaped preset: more items than the Yelp sets have users
    /// per item — item degree is low (the paper blames this for DER/REV2
    /// weakness); 24.93 % negative class from diffuse unhelpful reviews.
    pub fn musics() -> Self {
        Self {
            name: "Musics-sim".into(),
            domain: Domain::Music,
            n_users: 1_500,
            n_items: 2_300,
            n_reviews: 6_500,
            fake_fraction: 0.2493,
            item_popularity_exponent: 0.4,
            user_activity_sigma: 0.7,
            rating_noise: 0.8,
            campaign_size: (2, 5),
            camouflage_rate: 0.2,
            fakes_per_fraudster: 2.6,
            campaign_fraud: false,
            horizon_days: 1_500,
            seed: 0x305C,
        }
    }

    /// Amazon CDs-shaped preset: 22.39 % negative class.
    pub fn cds() -> Self {
        Self {
            name: "CDs-sim".into(),
            n_users: 2_100,
            n_items: 2_500,
            n_reviews: 4_800,
            fake_fraction: 0.2239,
            seed: 0xCD5,
            ..Self::musics()
        }
    }

    /// All five presets in the paper's Table II order.
    pub fn all_presets() -> Vec<Self> {
        vec![Self::yelp_chi(), Self::yelp_nyc(), Self::yelp_zip(), Self::musics(), Self::cds()]
    }

    /// Scales user/item/review counts by `factor` (minimum 1 each); used for
    /// smoke-test and benchmark sizes.
    ///
    /// # Panics
    /// Panics on a non-positive factor.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "SynthConfig::scaled: non-positive factor {factor}");
        let scale = |x: usize| ((x as f64 * factor).round() as usize).max(1);
        self.n_users = scale(self.n_users);
        self.n_items = scale(self.n_items);
        self.n_reviews = scale(self.n_reviews);
        self
    }

    /// Replaces the RNG seed (for repeated trials).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_fraud_rates() {
        assert!((SynthConfig::yelp_chi().fake_fraction - 0.1323).abs() < 1e-9);
        assert!((SynthConfig::yelp_nyc().fake_fraction - 0.1027).abs() < 1e-9);
        assert!((SynthConfig::yelp_zip().fake_fraction - 0.1322).abs() < 1e-9);
        assert!((SynthConfig::musics().fake_fraction - 0.2493).abs() < 1e-9);
        assert!((SynthConfig::cds().fake_fraction - 0.2239).abs() < 1e-9);
    }

    #[test]
    fn yelp_is_user_heavy_amazon_is_item_heavy() {
        for cfg in [SynthConfig::yelp_chi(), SynthConfig::yelp_nyc(), SynthConfig::yelp_zip()] {
            assert!(cfg.n_users > 10 * cfg.n_items, "{}", cfg.name);
        }
        for cfg in [SynthConfig::musics(), SynthConfig::cds()] {
            assert!(cfg.n_items > cfg.n_users, "{}", cfg.name);
        }
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let cfg = SynthConfig::yelp_chi().scaled(0.1);
        assert_eq!(cfg.n_reviews, 600);
        assert_eq!(cfg.n_items, 4);
        assert_eq!(cfg.n_users, 300);
    }

    #[test]
    fn scaling_never_hits_zero() {
        let cfg = SynthConfig::yelp_chi().scaled(1e-6);
        assert!(cfg.n_users >= 1 && cfg.n_items >= 1 && cfg.n_reviews >= 1);
    }
}
