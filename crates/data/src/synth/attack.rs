//! Adversarial fraud-campaign generator.
//!
//! [`AttackCampaign`] turns a clean base dataset into a *poisoned* one by
//! injecting a coordinated ring of sybil accounts, following the attack
//! families of the shilling-attack literature (fake-review generation that
//! shifts review-based recommenders, arXiv 2306.16526) and the opinion-fraud
//! literature (human/computer fraud with text mimicry, arXiv 2301.03025):
//!
//! * **Template mutation** — each target is blasted with instantiations of
//!   one seed template whose slots are mutated per review, the signature of
//!   cheap computer-generated fraud: high surface self-similarity inside a
//!   campaign, spam-lexicon-heavy text.
//! * **Rating ramp** — the campaign's star ratings drift from plausible
//!   mid-scale to the extreme over time (nuke/push), evading per-day rating
//!   deviation detectors that key on a sudden jump.
//! * **Burst** — every fake lands inside a tight time window on its target,
//!   the classic review-bomb shape.
//! * **Mimicry** — review length is drawn from the target corpus's empirical
//!   benign length distribution and words from a benign/spam mixture whose
//!   KL divergence from the benign unigram distribution stays under a
//!   configurable budget — statistically camouflaged opinion fraud.
//!
//! Everything is a pure function of the campaign spec: the same seed yields
//! a bit-identical poisoned corpus in any process, and disjoint seeds yield
//! disjoint fake-review uids.

use crate::synth::textgen::{
    self, aspects_for, fake_text, Domain, FraudDirection, DEMOTE_SPAM_WORDS, FILLER_WORDS,
    NEGATIVE_WORDS, POSITIVE_WORDS, PROMOTE_SPAM_WORDS,
};
use crate::types::{ItemId, Label, Review, UserId};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// An attack family from the shilling / opinion-fraud literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackFamily {
    /// Template-mutation fake text: one seed template per target, slots
    /// mutated per instantiation.
    TemplateMutation,
    /// Rating-bias ramp: stars drift from mid-scale to the extreme over the
    /// campaign (nuke/push).
    RatingRamp,
    /// Burst scheduling: all fakes inside a tight window on each target.
    Burst,
    /// Benign-statistics mimicry: length/vocab matched to the target corpus
    /// within a KL budget.
    Mimicry,
}

impl AttackFamily {
    /// All families, in grid order.
    pub const ALL: [AttackFamily; 4] = [
        AttackFamily::TemplateMutation,
        AttackFamily::RatingRamp,
        AttackFamily::Burst,
        AttackFamily::Mimicry,
    ];

    /// Stable lowercase name (CSV column / CLI value).
    pub fn name(self) -> &'static str {
        match self {
            AttackFamily::TemplateMutation => "template",
            AttackFamily::RatingRamp => "ramp",
            AttackFamily::Burst => "burst",
            AttackFamily::Mimicry => "mimicry",
        }
    }

    /// Parses a CLI value produced by [`AttackFamily::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// A seeded, fully-deterministic fraud-campaign specification.
///
/// `strength` is the injected-fake budget as a fraction of the base corpus
/// size; all other knobs shape how the budget is spent. Two campaigns with
/// the same spec produce bit-identical reviews; see the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct AttackCampaign {
    /// Attack family (text/rating/schedule shape).
    pub family: AttackFamily,
    /// Injected fakes as a fraction of the base corpus review count.
    pub strength: f64,
    /// Number of target items the budget is spread over.
    pub n_targets: usize,
    /// Fake reviews per sybil account (capped at `n_targets` so every
    /// `(sybil, item)` pair stays unique).
    pub reviews_per_sybil: usize,
    /// Burst window in days (the `Burst` family's schedule width).
    pub burst_window_days: i64,
    /// Max KL divergence (nats) between the mimicry word mixture and the
    /// benign unigram distribution.
    pub kl_budget: f64,
    /// Aspect lexicon the fake text draws from.
    pub domain: Domain,
    /// Campaign seed: the single source of randomness.
    pub seed: u64,
}

impl AttackCampaign {
    /// A campaign with the default shape knobs.
    pub fn new(family: AttackFamily, strength: f64, seed: u64) -> Self {
        Self {
            family,
            strength,
            n_targets: 6,
            reviews_per_sybil: 4,
            burst_window_days: 2,
            kl_budget: 0.25,
            domain: Domain::Restaurant,
            seed,
        }
    }

    /// The same campaign over a different aspect lexicon.
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Stable 64-bit uid of the `k`-th fake review of this campaign.
    /// Distinct `k` always yield distinct uids (splitmix64 is a bijection);
    /// campaigns with different seeds occupy pseudo-random disjoint ranges.
    pub fn review_uid(&self, k: usize) -> u64 {
        splitmix64(splitmix64(self.seed) ^ (k as u64))
    }

    /// Number of fakes a campaign of this strength injects into `base`.
    pub fn budget(&self, base: &Dataset) -> usize {
        ((base.len() as f64) * self.strength.max(0.0)).round() as usize
    }

    /// Generates the campaign's fake reviews against `base`. Deterministic
    /// in the spec; returns an empty vector when the budget rounds to zero.
    pub fn generate(&self, base: &Dataset) -> Vec<AttackReview> {
        let n_fake = self.budget(base);
        if n_fake == 0 || base.is_empty() || base.n_items == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let plan = self.plan_targets(base, &mut rng);
        let rps = self.reviews_per_sybil.clamp(1, plan.targets.len());
        let n_sybils = n_fake.div_ceil(rps);

        let mimicry = if self.family == AttackFamily::Mimicry {
            Some(MimicryProfile::fit(base, self.kl_budget))
        } else {
            None
        };

        let per_target = n_fake.div_ceil(plan.targets.len());
        let mut out = Vec::with_capacity(n_fake);
        for k in 0..n_fake {
            let t = k % plan.targets.len();
            let j = k / plan.targets.len(); // position within the target's campaign
            let target = &plan.targets[t];
            let rating = self.rating(target.direction, j, per_target, &mut rng);
            let timestamp = self.schedule(target.start_day, j, per_target, &mut rng);
            let text = match (&mimicry, self.family) {
                (Some(profile), _) => profile.text(target.direction, &mut rng),
                (None, AttackFamily::TemplateMutation) => {
                    template_text(&mut rng, target.direction, t, &target.aspects)
                }
                _ => fake_text(&mut rng, target.direction, &target.aspects),
            };
            out.push(AttackReview {
                uid: self.review_uid(k),
                sybil: (k / rps) as u32,
                item: target.item,
                rating,
                timestamp,
                text,
            });
        }
        debug_assert!(out.iter().map(|r| r.sybil).max().unwrap() < n_sybils as u32);
        out
    }

    /// Injects the campaign into `base`: sybil accounts are appended to the
    /// user id space and every fake keeps its ground-truth [`Label::Fake`].
    /// Base review indices are preserved (fakes are appended after them).
    pub fn poison(&self, base: &Dataset) -> PoisonedDataset {
        let fakes = self.generate(base);
        let n_sybils = fakes.iter().map(|f| f.sybil as usize + 1).max().unwrap_or(0);
        let sybil_base = base.n_users as u32;
        let mut reviews = base.reviews.clone();
        let mut injected = Vec::with_capacity(fakes.len());
        for f in &fakes {
            injected.push(reviews.len());
            reviews.push(Review {
                user: UserId(sybil_base + f.sybil),
                item: f.item,
                rating: f.rating,
                label: Label::Fake,
                timestamp: f.timestamp,
                text: f.text.clone(),
            });
        }
        let name = format!("{}+{}x{:.2}", base.name, self.family.name(), self.strength);
        let mut dataset = Dataset::new(name, base.n_users + n_sybils, base.n_items, reviews);
        dataset.item_names = base.item_names.clone();
        if !base.user_names.is_empty() {
            dataset.user_names = base.user_names.clone();
            dataset.user_names.extend((0..n_sybils).map(|s| format!("sybil-{s:05}")));
        }
        PoisonedDataset {
            dataset,
            injected,
            sybil_users: sybil_base..sybil_base + n_sybils as u32,
            campaign: self.clone(),
        }
    }

    /// Streams the campaign into a *fixed* id space — the serving tier's
    /// ingest path cannot mint users (embedding tables are sized at train
    /// time), so sybils squat the tail of the existing user id space and
    /// targets are drawn from the existing items. Deterministic in the spec;
    /// `count` reviews, labelled fake, day-indexed timestamps from 0.
    ///
    /// Mimicry has no reference corpus online, so its stream approximates
    /// the benign distribution from the benign lexicons instead.
    pub fn stream(&self, n_users: usize, n_items: usize, count: usize) -> Vec<Review> {
        assert!(n_users > 0 && n_items > 0, "stream needs a non-empty id space");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let aspects = aspects_for(self.domain);
        let n_targets = self.n_targets.clamp(1, n_items);
        let targets: Vec<u32> = sample_without_replacement(n_items, n_targets, &mut rng);
        let directions: Vec<FraudDirection> = (0..n_targets)
            .map(|_| if rng.gen::<bool>() { FraudDirection::Promote } else { FraudDirection::Demote })
            .collect();
        let rps = self.reviews_per_sybil.clamp(1, n_targets);
        let n_sybils = count.div_ceil(rps).min(n_users);
        let per_target = count.div_ceil(n_targets);
        let target_aspects: Vec<Vec<&str>> =
            (0..n_targets).map(|_| pick_aspects(aspects, &mut rng)).collect();
        (0..count)
            .map(|k| {
                let t = k % n_targets;
                let j = k / n_targets;
                let direction = directions[t];
                let rating = self.rating(direction, j, per_target, &mut rng);
                let timestamp = self.schedule(0, j, per_target, &mut rng);
                let text = match self.family {
                    AttackFamily::TemplateMutation => {
                        template_text(&mut rng, direction, t, &target_aspects[t])
                    }
                    AttackFamily::Mimicry => {
                        lexical_mimic_text(&mut rng, direction, &target_aspects[t])
                    }
                    _ => fake_text(&mut rng, direction, &target_aspects[t]),
                };
                Review {
                    user: UserId((n_users - 1 - (k / rps) % n_sybils) as u32),
                    item: ItemId(targets[t]),
                    rating,
                    label: Label::Fake,
                    timestamp,
                    text,
                }
            })
            .collect()
    }

    /// The spam mixing rate the mimicry family settles on for `base` under
    /// this campaign's KL budget (diagnostic; used by tests and docs).
    pub fn mimicry_mixing_rate(&self, base: &Dataset) -> f64 {
        MimicryProfile::fit(base, self.kl_budget).eps
    }

    /// Star rating of the `j`-th of `m` fakes on one target.
    fn rating(&self, direction: FraudDirection, j: usize, m: usize, rng: &mut StdRng) -> f32 {
        let extreme = |p: f32, rng: &mut StdRng| -> f32 {
            let hit = rng.gen::<f32>() < p;
            match (direction, hit) {
                (FraudDirection::Promote, true) => 5.0,
                (FraudDirection::Promote, false) => 4.0,
                (FraudDirection::Demote, true) => 1.0,
                (FraudDirection::Demote, false) => 2.0,
            }
        };
        match self.family {
            // The ramp walks the star scale from neutral to the extreme as
            // the campaign progresses.
            AttackFamily::RatingRamp => {
                let frac = if m <= 1 { 1.0 } else { j as f32 / (m - 1) as f32 };
                let step = (frac * 2.0).round(); // 0, 1 or 2 stars past neutral
                match direction {
                    FraudDirection::Promote => 3.0 + step,
                    FraudDirection::Demote => 3.0 - step,
                }
            }
            // Mimicry copies the subtle rating habit of ordinary fraud.
            AttackFamily::Mimicry => {
                let roll: f32 = rng.gen();
                let p = if roll < 0.5 { 1.0 } else { 0.0 };
                if roll < 0.9 {
                    extreme(p, rng)
                } else {
                    3.0
                }
            }
            _ => extreme(0.85, rng),
        }
    }

    /// Day-indexed timestamp of the `j`-th of `m` fakes on a target whose
    /// campaign starts at `start_day`.
    fn schedule(&self, start_day: i64, j: usize, m: usize, rng: &mut StdRng) -> i64 {
        let window = match self.family {
            AttackFamily::Burst => self.burst_window_days.max(1),
            AttackFamily::TemplateMutation => 30,
            AttackFamily::RatingRamp => 60,
            AttackFamily::Mimicry => 45,
        };
        match self.family {
            // The ramp is a *schedule*: position j maps monotonically onto
            // the window so rating and time drift together.
            AttackFamily::RatingRamp => {
                let stride = (window / m.max(1) as i64).max(1);
                start_day + j as i64 * stride + rng.gen_range(0..stride.min(3).max(1))
            }
            _ => start_day + rng.gen_range(0..window),
        }
    }

    /// Picks targets (degree-weighted, without replacement), their campaign
    /// direction (demote good items, promote bad — the profitable plays) and
    /// start day, and a small aspect lexicon per target.
    fn plan_targets(&self, base: &Dataset, rng: &mut StdRng) -> TargetPlan {
        let mut degree = vec![0usize; base.n_items];
        let mut rating_sum = vec![0f64; base.n_items];
        let (mut t_min, mut t_max) = (i64::MAX, i64::MIN);
        for r in &base.reviews {
            degree[r.item.index()] += 1;
            rating_sum[r.item.index()] += r.rating as f64;
            t_min = t_min.min(r.timestamp);
            t_max = t_max.max(r.timestamp);
        }
        let global_mean = base.reviews.iter().map(|r| r.rating as f64).sum::<f64>()
            / base.len().max(1) as f64;
        let n_targets = self.n_targets.clamp(1, base.n_items);
        let mut weights: Vec<f64> = degree.iter().map(|&d| d as f64).collect();
        let aspects = aspects_for(self.domain);
        let targets = (0..n_targets)
            .map(|_| {
                let idx = weighted_draw(&mut weights, rng);
                let mean = rating_sum[idx] / degree[idx].max(1) as f64;
                let direction = if mean >= global_mean {
                    FraudDirection::Demote
                } else {
                    FraudDirection::Promote
                };
                let span = (t_max - t_min).max(1);
                Target {
                    item: ItemId(idx as u32),
                    direction,
                    start_day: t_min + rng.gen_range(0..span),
                    aspects: pick_aspects(aspects, rng),
                }
            })
            .collect();
        TargetPlan { targets }
    }
}

/// One generated fake review, before injection into a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReview {
    /// Campaign-stable uid (see [`AttackCampaign::review_uid`]).
    pub uid: u64,
    /// Sybil account index within the campaign (`0..n_sybils`).
    pub sybil: u32,
    /// Target item (an existing item of the base dataset).
    pub item: ItemId,
    /// Fraudulent star rating.
    pub rating: f32,
    /// Day-indexed timestamp.
    pub timestamp: i64,
    /// Fake review text.
    pub text: String,
}

/// A base dataset with an injected campaign: ground truth plus the view the
/// defender actually trains on.
#[derive(Debug, Clone)]
pub struct PoisonedDataset {
    /// Base + injected reviews; injected reviews keep [`Label::Fake`]
    /// (ground truth). Base review indices are unchanged.
    pub dataset: Dataset,
    /// Indices of the injected reviews within [`PoisonedDataset::dataset`].
    pub injected: Vec<usize>,
    /// The user ids minted for the campaign's sybil accounts.
    pub sybil_users: std::ops::Range<u32>,
    /// The spec that produced this dataset.
    pub campaign: AttackCampaign,
}

impl PoisonedDataset {
    /// Number of injected fakes.
    pub fn n_injected(&self) -> usize {
        self.injected.len()
    }

    /// The label-poisoned *training view*: identical reviews, but every
    /// injected fake reads [`Label::Benign`] — the attacker has evaded the
    /// platform's filter, so the defender trains on corrupted supervision.
    /// Evaluation must use [`PoisonedDataset::dataset`] (ground truth).
    pub fn training_view(&self) -> Dataset {
        let mut view = self.dataset.clone();
        for &i in &self.injected {
            view.reviews[i].label = Label::Benign;
        }
        view
    }
}

struct Target {
    item: ItemId,
    direction: FraudDirection,
    start_day: i64,
    aspects: Vec<&'static str>,
}

struct TargetPlan {
    targets: Vec<Target>,
}

/// Benign length/vocab statistics of a corpus plus the spam mixing rate the
/// KL budget admits. Words are sampled from
/// `(1 - eps) * benign_unigram + eps * uniform(spam)` with the largest `eps`
/// whose divergence from the (smoothed) benign distribution fits the budget.
struct MimicryProfile {
    lengths: Vec<usize>,
    words: Vec<String>,
    cumulative: Vec<f64>,
    eps: f64,
}

/// Candidate spam mixing rates, largest first.
const EPS_LADDER: [f64; 12] = [0.40, 0.35, 0.30, 0.25, 0.20, 0.15, 0.10, 0.07, 0.05, 0.03, 0.02, 0.01];

/// Benign vocabulary support size for the mimicry distribution.
const MIMICRY_VOCAB: usize = 300;

impl MimicryProfile {
    fn fit(base: &Dataset, kl_budget: f64) -> Self {
        let mut counts: HashMap<String, u64> = HashMap::new();
        let mut lengths = Vec::new();
        for r in base.reviews.iter().filter(|r| r.label == Label::Benign) {
            let tokens = rrre_text::tokenize(&r.text);
            if tokens.is_empty() {
                continue;
            }
            lengths.push(tokens.len());
            for t in tokens {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        if lengths.is_empty() {
            // Degenerate base (no benign text): fall back to the lexicons.
            lengths.push(20);
            for w in FILLER_WORDS.iter().chain(POSITIVE_WORDS).chain(NEGATIVE_WORDS) {
                counts.insert((*w).to_string(), 1);
            }
        }
        // Deterministic top-K support: count desc, word asc.
        let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(MIMICRY_VOCAB);
        let benign_total: u64 = ranked.iter().map(|(_, c)| c).sum();
        let benign_probs: Vec<f64> =
            ranked.iter().map(|(_, c)| *c as f64 / benign_total as f64).collect();

        // Both spam lexicons form the attack half of the mixture; the KL is
        // computed against an add-λ smoothed benign distribution over the
        // union support (raw benign assigns spam words probability zero,
        // which would make every mixture infinitely detectable).
        let spam: Vec<&str> = PROMOTE_SPAM_WORDS
            .iter()
            .chain(DEMOTE_SPAM_WORDS)
            .copied()
            .filter(|w| !ranked.iter().any(|(b, _)| b == w))
            .collect();
        let support = ranked.len() + spam.len();
        let lambda = 0.1;
        let smoothed_total = benign_total as f64 + lambda * support as f64;
        let q: Vec<f64> = ranked
            .iter()
            .map(|(_, c)| (*c as f64 + lambda) / smoothed_total)
            .chain(spam.iter().map(|_| lambda / smoothed_total))
            .collect();
        let spam_share = 1.0 / spam.len().max(1) as f64;
        let kl_of = |eps: f64| -> f64 {
            let mut kl = 0.0;
            for (i, &qi) in q.iter().enumerate() {
                let p = if i < benign_probs.len() {
                    (1.0 - eps) * benign_probs[i]
                } else {
                    eps * spam_share
                };
                if p > 0.0 {
                    kl += p * (p / qi).ln();
                }
            }
            kl
        };
        let eps = EPS_LADDER
            .into_iter()
            .find(|&e| kl_of(e) <= kl_budget)
            .unwrap_or(EPS_LADDER[EPS_LADDER.len() - 1]);

        let mut words: Vec<String> = ranked.into_iter().map(|(w, _)| w).collect();
        let mut cumulative = Vec::with_capacity(words.len());
        let mut acc = 0.0;
        for p in &benign_probs {
            acc += p;
            cumulative.push(acc);
        }
        words.extend(spam.iter().map(|w| (*w).to_string()));
        Self { lengths, words, cumulative, eps }
    }

    /// Samples one mimicry review. The direction only gates which spam
    /// lexicon half is drawn from when a spam slot comes up.
    fn text(&self, direction: FraudDirection, rng: &mut StdRng) -> String {
        let n_benign = self.cumulative.len();
        let spam_words = &self.words[n_benign..];
        let directional: Vec<&String> = spam_words
            .iter()
            .filter(|w| {
                let w: &str = w;
                match direction {
                    FraudDirection::Promote => PROMOTE_SPAM_WORDS.contains(&w),
                    FraudDirection::Demote => DEMOTE_SPAM_WORDS.contains(&w),
                }
            })
            .collect();
        let len = self.lengths[rng.gen_range(0..self.lengths.len())];
        let mut out: Vec<&str> = Vec::with_capacity(len);
        for _ in 0..len {
            if rng.gen::<f64>() < self.eps && !directional.is_empty() {
                out.push(directional[rng.gen_range(0..directional.len())]);
            } else {
                let roll: f64 = rng.gen();
                let idx = self.cumulative.partition_point(|&c| c < roll).min(n_benign - 1);
                out.push(&self.words[idx]);
            }
        }
        out.join(" ")
    }
}

/// A text-template slot: either a fixed word or a lexicon draw.
enum Slot {
    Fixed(&'static str),
    Spam,
    Aspect,
    Sentiment,
    Filler,
}

/// Seed templates for the template-mutation family. Each target's campaign
/// sticks to one template, so instantiations share most of their surface —
/// the within-campaign self-similarity signature of computer-generated spam.
const TEMPLATES: [&[Slot]; 4] = [
    &[
        Slot::Fixed("honestly"), Slot::Fixed("the"), Slot::Aspect, Slot::Fixed("was"),
        Slot::Sentiment, Slot::Spam, Slot::Spam, Slot::Fixed("would"), Slot::Filler,
        Slot::Fixed("again"), Slot::Fixed("the"), Slot::Aspect, Slot::Sentiment,
        Slot::Spam, Slot::Fixed("overall"), Slot::Sentiment,
    ],
    &[
        Slot::Spam, Slot::Spam, Slot::Fixed("the"), Slot::Aspect, Slot::Fixed("here"),
        Slot::Fixed("was"), Slot::Sentiment, Slot::Fixed("and"), Slot::Fixed("the"),
        Slot::Aspect, Slot::Fixed("was"), Slot::Sentiment, Slot::Filler, Slot::Spam,
        Slot::Fixed("trust"), Slot::Fixed("me"), Slot::Filler, Slot::Spam,
    ],
    &[
        Slot::Fixed("came"), Slot::Fixed("here"), Slot::Fixed("last"), Slot::Fixed("week"),
        Slot::Fixed("and"), Slot::Fixed("the"), Slot::Aspect, Slot::Fixed("was"),
        Slot::Spam, Slot::Sentiment, Slot::Spam, Slot::Fixed("definitely"), Slot::Spam,
        Slot::Filler, Slot::Aspect, Slot::Sentiment, Slot::Spam,
    ],
    &[
        Slot::Fixed("the"), Slot::Aspect, Slot::Fixed("and"), Slot::Fixed("the"),
        Slot::Aspect, Slot::Fixed("were"), Slot::Sentiment, Slot::Spam, Slot::Spam,
        Slot::Fixed("everyone"), Slot::Fixed("must"), Slot::Filler, Slot::Spam,
        Slot::Sentiment, Slot::Fixed("overall"), Slot::Spam, Slot::Filler,
    ],
];

/// Instantiates the `t`-th target's template, mutating lexicon slots.
fn template_text(
    rng: &mut StdRng,
    direction: FraudDirection,
    t: usize,
    aspects: &[&str],
) -> String {
    let spam: &[&str] = match direction {
        FraudDirection::Promote => PROMOTE_SPAM_WORDS,
        FraudDirection::Demote => DEMOTE_SPAM_WORDS,
    };
    let sentiment: &[&str] = match direction {
        FraudDirection::Promote => POSITIVE_WORDS,
        FraudDirection::Demote => NEGATIVE_WORDS,
    };
    let template = TEMPLATES[t % TEMPLATES.len()];
    let words: Vec<&str> = template
        .iter()
        .map(|slot| match slot {
            Slot::Fixed(w) => *w,
            Slot::Spam => spam[rng.gen_range(0..spam.len())],
            Slot::Aspect if !aspects.is_empty() => aspects[rng.gen_range(0..aspects.len())],
            Slot::Aspect => FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())],
            Slot::Sentiment => sentiment[rng.gen_range(0..sentiment.len())],
            Slot::Filler => FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())],
        })
        .collect();
    words.join(" ")
}

/// Streaming-path mimicry without a reference corpus: benign-style text with
/// a low spam mixing rate (approximates the offline profile's lexical shape).
fn lexical_mimic_text(rng: &mut StdRng, direction: FraudDirection, aspects: &[&str]) -> String {
    let spam: &[&str] = match direction {
        FraudDirection::Promote => PROMOTE_SPAM_WORDS,
        FraudDirection::Demote => DEMOTE_SPAM_WORDS,
    };
    let base = textgen::benign_text(
        rng,
        aspects,
        match direction {
            FraudDirection::Promote => 5.0,
            FraudDirection::Demote => 1.0,
        },
    );
    base.split(' ')
        .map(|w| if rng.gen::<f64>() < 0.08 { spam[rng.gen_range(0..spam.len())] } else { w })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Picks three distinct-ish aspect words for a target.
fn pick_aspects(pool: &[&'static str], rng: &mut StdRng) -> Vec<&'static str> {
    (0..3).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

/// One weighted draw without replacement: zeroes the drawn weight.
fn weighted_draw(weights: &mut [f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // All mass spent: fall back to the first non-drawn slot deterministically.
        return weights.iter().position(|&w| w >= 0.0).unwrap_or(0);
    }
    let mut roll = rng.gen::<f64>() * total;
    let mut picked = weights.len() - 1;
    for (i, &w) in weights.iter().enumerate() {
        roll -= w;
        if roll <= 0.0 && w > 0.0 {
            picked = i;
            break;
        }
    }
    weights[picked] = 0.0;
    picked
}

/// Uniform sample of `k` distinct ids out of `0..n` (k ≤ n).
fn sample_without_replacement(n: usize, k: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

/// SplitMix64 finaliser: a bijective 64-bit mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    fn base() -> Dataset {
        generate(&SynthConfig::yelp_chi().scaled(0.05))
    }

    #[test]
    fn generate_is_deterministic() {
        let ds = base();
        let c = AttackCampaign::new(AttackFamily::Burst, 0.2, 7);
        assert_eq!(c.generate(&ds), c.generate(&ds));
    }

    #[test]
    fn budget_scales_with_strength() {
        let ds = base();
        for family in AttackFamily::ALL {
            let weak = AttackCampaign::new(family, 0.1, 3).generate(&ds);
            let strong = AttackCampaign::new(family, 0.4, 3).generate(&ds);
            assert_eq!(weak.len(), (ds.len() as f64 * 0.1).round() as usize);
            assert_eq!(strong.len(), (ds.len() as f64 * 0.4).round() as usize);
        }
    }

    #[test]
    fn poison_appends_and_labels_fake() {
        let ds = base();
        let p = AttackCampaign::new(AttackFamily::TemplateMutation, 0.15, 11).poison(&ds);
        assert_eq!(p.dataset.len(), ds.len() + p.n_injected());
        // Base reviews keep their indices and labels.
        for (i, r) in ds.reviews.iter().enumerate() {
            assert_eq!(p.dataset.reviews[i].text, r.text);
            assert_eq!(p.dataset.reviews[i].label, r.label);
        }
        for &i in &p.injected {
            assert_eq!(p.dataset.reviews[i].label, Label::Fake);
            assert!(p.sybil_users.contains(&p.dataset.reviews[i].user.0));
        }
        assert!(p.dataset.n_users > ds.n_users);
        assert_eq!(p.dataset.user_names.len(), p.dataset.n_users);
    }

    #[test]
    fn training_view_masks_only_injected_labels() {
        let ds = base();
        let p = AttackCampaign::new(AttackFamily::RatingRamp, 0.1, 5).poison(&ds);
        let view = p.training_view();
        assert_eq!(view.len(), p.dataset.len());
        for &i in &p.injected {
            assert_eq!(view.reviews[i].label, Label::Benign, "poisoned label");
            assert_eq!(view.reviews[i].text, p.dataset.reviews[i].text);
        }
        let flipped = view
            .reviews
            .iter()
            .zip(&p.dataset.reviews)
            .filter(|(a, b)| a.label != b.label)
            .count();
        assert_eq!(flipped, p.n_injected());
    }

    #[test]
    fn sybil_item_pairs_are_unique() {
        let ds = base();
        for family in AttackFamily::ALL {
            let p = AttackCampaign::new(family, 0.3, 23).poison(&ds);
            let mut pairs: Vec<(u32, u32)> = p
                .injected
                .iter()
                .map(|&i| (p.dataset.reviews[i].user.0, p.dataset.reviews[i].item.0))
                .collect();
            pairs.sort_unstable();
            let n = pairs.len();
            pairs.dedup();
            assert_eq!(pairs.len(), n, "{family:?}: duplicate (sybil, item) pair");
        }
    }

    #[test]
    fn burst_family_is_tightly_scheduled() {
        let ds = base();
        let c = AttackCampaign::new(AttackFamily::Burst, 0.2, 13);
        let fakes = c.generate(&ds);
        // Group by item: every target's campaign spans at most the window.
        let mut by_item: HashMap<u32, (i64, i64)> = HashMap::new();
        for f in &fakes {
            let e = by_item.entry(f.item.0).or_insert((i64::MAX, i64::MIN));
            e.0 = e.0.min(f.timestamp);
            e.1 = e.1.max(f.timestamp);
        }
        for (item, (lo, hi)) in by_item {
            assert!(hi - lo < c.burst_window_days, "item {item} spans {}", hi - lo);
        }
    }

    #[test]
    fn ramp_family_ratings_drift_toward_extreme() {
        let ds = base();
        let fakes = AttackCampaign::new(AttackFamily::RatingRamp, 0.3, 17).generate(&ds);
        let mut by_item: HashMap<u32, Vec<(i64, f32)>> = HashMap::new();
        for f in &fakes {
            by_item.entry(f.item.0).or_default().push((f.timestamp, f.rating));
        }
        let mut drifts = 0usize;
        let mut total = 0usize;
        for (_, mut seq) in by_item {
            if seq.len() < 4 {
                continue;
            }
            seq.sort_by_key(|&(t, _)| t);
            let early = (seq[0].1 - 3.0).abs();
            let late = (seq[seq.len() - 1].1 - 3.0).abs();
            total += 1;
            if late > early {
                drifts += 1;
            }
        }
        assert!(total > 0);
        assert!(drifts * 2 > total, "ramp drifted on only {drifts}/{total} targets");
    }

    #[test]
    fn mimicry_respects_kl_budget_via_mixing_rate() {
        let ds = base();
        let tight = AttackCampaign {
            kl_budget: 0.02,
            ..AttackCampaign::new(AttackFamily::Mimicry, 0.1, 19)
        };
        let loose = AttackCampaign {
            kl_budget: 1.0,
            ..AttackCampaign::new(AttackFamily::Mimicry, 0.1, 19)
        };
        let (e_tight, e_loose) =
            (tight.mimicry_mixing_rate(&ds), loose.mimicry_mixing_rate(&ds));
        assert!(e_tight < e_loose, "tight {e_tight} vs loose {e_loose}");
        assert!(e_tight <= 0.1, "tight budget must force a low mixing rate, got {e_tight}");
    }

    #[test]
    fn mimicry_lengths_match_benign_range() {
        let ds = base();
        let fakes = AttackCampaign::new(AttackFamily::Mimicry, 0.2, 29).generate(&ds);
        // Benign generator emits 15–40 words; mimicry resamples those lengths.
        for f in &fakes {
            let n = f.text.split(' ').count();
            assert!((15..40).contains(&n), "mimicry length {n} outside the benign range");
        }
    }

    #[test]
    fn template_family_is_self_similar_within_target() {
        let ds = base();
        let fakes = AttackCampaign::new(AttackFamily::TemplateMutation, 0.2, 31).generate(&ds);
        let mut by_item: HashMap<u32, Vec<&str>> = HashMap::new();
        for f in &fakes {
            by_item.entry(f.item.0).or_default().push(&f.text);
        }
        for (_, texts) in by_item.iter().filter(|(_, t)| t.len() >= 2) {
            // All instantiations of one target share the template length.
            let n0 = texts[0].split(' ').count();
            assert!(texts.iter().all(|t| t.split(' ').count() == n0));
        }
    }

    #[test]
    fn disjoint_seeds_yield_disjoint_uids() {
        let ds = base();
        let a = AttackCampaign::new(AttackFamily::Burst, 0.2, 1).generate(&ds);
        let b = AttackCampaign::new(AttackFamily::Burst, 0.2, 2).generate(&ds);
        let ids_a: std::collections::HashSet<u64> = a.iter().map(|r| r.uid).collect();
        assert_eq!(ids_a.len(), a.len(), "uids must be unique within a campaign");
        assert!(b.iter().all(|r| !ids_a.contains(&r.uid)));
    }

    #[test]
    fn stream_stays_inside_the_id_space() {
        let c = AttackCampaign::new(AttackFamily::Burst, 0.2, 41);
        for family in AttackFamily::ALL {
            let c = AttackCampaign { family, ..c.clone() };
            let reviews = c.stream(10, 5, 30);
            assert_eq!(reviews.len(), 30);
            for r in &reviews {
                assert!(r.user.index() < 10);
                assert!(r.item.index() < 5);
                assert!((1.0..=5.0).contains(&r.rating));
                assert_eq!(r.label, Label::Fake);
                assert!(!r.text.is_empty());
            }
            assert_eq!(reviews, c.stream(10, 5, 30), "stream must be deterministic");
        }
    }

    #[test]
    fn zero_strength_is_a_no_op() {
        let ds = base();
        let p = AttackCampaign::new(AttackFamily::Mimicry, 0.0, 43).poison(&ds);
        assert_eq!(p.n_injected(), 0);
        assert_eq!(p.dataset.len(), ds.len());
        assert_eq!(p.dataset.n_users, ds.n_users);
    }
}
