//! Review text generation.
//!
//! Benign reviews mix item-specific aspect words with sentiment words that
//! match the rating, glued by filler. Fake reviews are generated
//! *procedurally* from a distinct spam lexicon (superlatives and
//! call-to-action vocabulary) with a sprinkle of on-topic aspect words —
//! lexically detectable by a semantic model, but without the verbatim
//! template repetition that would make surface self-similarity features a
//! giveaway. This balance mirrors the paper's setting, where
//! metadata/behaviour baselines sit in the 0.6–0.8 AUC band while the
//! text-reading RRRE reaches 0.8–0.9.

use rand::Rng;

/// Review domain, selecting the aspect lexicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Domain {
    /// Yelp-like restaurant/venue reviews.
    Restaurant,
    /// Amazon-like music product reviews.
    Music,
}

/// Direction of a fraud campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FraudDirection {
    /// Unjustly promote a bad item with glowing fakes.
    Promote,
    /// Unjustly demote a good item with scathing fakes.
    Demote,
}

/// Restaurant aspect vocabulary; each item gets a few of these.
pub const RESTAURANT_ASPECTS: &[&str] = &[
    "burger", "pizza", "sushi", "noodles", "coffee", "dessert", "pancakes", "tacos", "steak",
    "seafood", "ramen", "brunch", "cocktails", "wine", "patio", "service", "staff", "ambience",
    "decor", "portions", "menu", "salad", "soup", "bbq", "sandwich", "fries", "curry", "dumplings",
    "bakery", "espresso",
];

/// Music aspect vocabulary.
pub const MUSIC_ASPECTS: &[&str] = &[
    "album", "guitar", "vocals", "drums", "melody", "lyrics", "bass", "chorus", "tempo", "harmony",
    "production", "soundtrack", "concert", "remix", "ballad", "riff", "solo", "acoustic", "synth",
    "orchestra", "jazz", "blues", "folk", "opera", "percussion", "falsetto", "verse", "hook",
    "mastering", "arrangement",
];

/// Positive sentiment vocabulary for benign reviews.
pub const POSITIVE_WORDS: &[&str] = &[
    "great", "delicious", "friendly", "wonderful", "excellent", "tasty", "cozy", "fresh", "lovely",
    "impressive", "charming", "satisfying", "delightful", "smooth", "warm", "generous", "crisp",
    "beautiful", "memorable", "pleasant",
];

/// Negative sentiment vocabulary for benign reviews.
pub const NEGATIVE_WORDS: &[&str] = &[
    "terrible", "bland", "rude", "slow", "disappointing", "stale", "overpriced", "noisy", "greasy",
    "mediocre", "boring", "dull", "cold", "soggy", "cramped", "dirty", "forgettable", "unpleasant",
    "flat", "weak",
];

/// Neutral filler vocabulary.
pub const FILLER_WORDS: &[&str] = &[
    "the", "was", "really", "very", "place", "time", "definitely", "would", "again", "visit",
    "came", "ordered", "tried", "felt", "quite", "pretty", "honestly", "overall", "maybe", "with",
    "and", "for", "had", "here", "there", "last", "week", "friends", "family", "evening",
];

/// Promotional spam vocabulary: superlatives + call-to-action. Overlaps a
/// little with benign positives ("amazing" energy) but is dominated by
/// hype/urgency words benign reviewers rarely use.
pub const PROMOTE_SPAM_WORDS: &[&str] = &[
    "best", "amazing", "incredible", "perfect", "awesome", "unbeatable", "must", "buy", "now",
    "recommend", "stars", "five", "guaranteed", "unreal", "top", "deal", "ever", "hands", "down",
    "trust", "wow", "hype", "everyone", "instantly", "life", "changing",
];

/// Demotional spam vocabulary.
pub const DEMOTE_SPAM_WORDS: &[&str] = &[
    "worst", "scam", "avoid", "horrible", "garbage", "ripoff", "awful", "zero", "never", "fraud",
    "waste", "money", "disgusting", "stay", "away", "junk", "lie", "disaster", "save", "elsewhere",
    "refund", "useless", "warning", "fake", "cheated", "furious",
];

/// Aspect lexicon for a domain.
pub fn aspects_for(domain: Domain) -> &'static [&'static str] {
    match domain {
        Domain::Restaurant => RESTAURANT_ASPECTS,
        Domain::Music => MUSIC_ASPECTS,
    }
}

/// Generates benign review text for an item with the given aspect words and
/// star rating. Length and composition vary with the rating's polarity.
pub fn benign_text(rng: &mut impl Rng, item_aspects: &[&str], rating: f32) -> String {
    debug_assert!(!item_aspects.is_empty(), "benign_text: item needs aspects");
    let len = rng.gen_range(15..40);
    let polarity_strength = ((rating - 3.0) / 2.0).clamp(-1.0, 1.0);
    let mut words: Vec<&str> = Vec::with_capacity(len);
    for _ in 0..len {
        let roll: f32 = rng.gen();
        let word = if roll < 0.25 {
            item_aspects[rng.gen_range(0..item_aspects.len())]
        } else if roll < 0.62 {
            // Sentiment word: sign follows the rating, with some mixed
            // feelings for mid ratings. The text is deliberately a strong
            // signal for the rating — the channel that lets review-reading
            // models beat ID-only matrix factorisation (paper Table III).
            let positive = rng.gen::<f32>() < 0.5 + 0.48 * polarity_strength;
            if positive {
                POSITIVE_WORDS[rng.gen_range(0..POSITIVE_WORDS.len())]
            } else {
                NEGATIVE_WORDS[rng.gen_range(0..NEGATIVE_WORDS.len())]
            }
        } else {
            FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())]
        };
        words.push(word);
    }
    words.join(" ")
}

/// Generates fake review text for a campaign direction.
///
/// Fakes *mimic* genuine reviews — on-topic aspect words, sentiment matching
/// the (fraudulent) rating direction, ordinary filler — but paid reviewers
/// leak hype/urgency vocabulary at a steady rate. The resulting text is
/// behaviourally inconspicuous (length, surface self-similarity) yet
/// lexically detectable by a semantic model that reads the words, which is
/// precisely the regime of the paper's Table IV.
pub fn fake_text(rng: &mut impl Rng, direction: FraudDirection, item_aspects: &[&str]) -> String {
    let spam: &[&str] = match direction {
        FraudDirection::Promote => PROMOTE_SPAM_WORDS,
        FraudDirection::Demote => DEMOTE_SPAM_WORDS,
    };
    let sentiment: &[&str] = match direction {
        FraudDirection::Promote => POSITIVE_WORDS,
        FraudDirection::Demote => NEGATIVE_WORDS,
    };
    let len = rng.gen_range(14..36);
    let mut words: Vec<&str> = Vec::with_capacity(len);
    for _ in 0..len {
        let roll: f32 = rng.gen();
        let word = if roll < 0.22 {
            spam[rng.gen_range(0..spam.len())]
        } else if roll < 0.45 && !item_aspects.is_empty() {
            item_aspects[rng.gen_range(0..item_aspects.len())]
        } else if roll < 0.65 {
            sentiment[rng.gen_range(0..sentiment.len())]
        } else {
            FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())]
        };
        words.push(word);
    }
    words.join(" ")
}

/// Generates low-information "unhelpful" text (the Amazon datasets' negative
/// class are unhelpful reviews rather than orchestrated spam): off-topic
/// filler with spam-flavoured sentiment, at ordinary review length so that
/// surface statistics (length) do not give the class away.
pub fn unhelpful_text(rng: &mut impl Rng, direction: FraudDirection) -> String {
    let spam: &[&str] = match direction {
        FraudDirection::Promote => PROMOTE_SPAM_WORDS,
        FraudDirection::Demote => DEMOTE_SPAM_WORDS,
    };
    let len = rng.gen_range(13..32);
    let mut words: Vec<&str> = Vec::with_capacity(len);
    for _ in 0..len {
        let roll: f32 = rng.gen();
        let word = if roll < 0.28 {
            spam[rng.gen_range(0..spam.len())]
        } else {
            FILLER_WORDS[rng.gen_range(0..FILLER_WORDS.len())]
        };
        words.push(word);
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rrre_text::similarity::jaccard;

    #[test]
    fn benign_text_mentions_item_aspects() {
        let mut rng = StdRng::seed_from_u64(1);
        let aspects = ["sushi", "ramen"];
        let text = benign_text(&mut rng, &aspects, 5.0);
        assert!(text.split(' ').any(|w| aspects.contains(&w)), "no aspect in {text:?}");
    }

    #[test]
    fn high_ratings_skew_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let aspects = ["pizza"];
        let mut pos = 0usize;
        let mut neg = 0usize;
        for _ in 0..50 {
            let text = benign_text(&mut rng, &aspects, 5.0);
            for w in text.split(' ') {
                if POSITIVE_WORDS.contains(&w) {
                    pos += 1;
                }
                if NEGATIVE_WORDS.contains(&w) {
                    neg += 1;
                }
            }
        }
        assert!(pos > 3 * neg, "pos {pos} vs neg {neg}");
    }

    #[test]
    fn low_ratings_skew_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let aspects = ["pizza"];
        let mut pos = 0usize;
        let mut neg = 0usize;
        for _ in 0..50 {
            let text = benign_text(&mut rng, &aspects, 1.0);
            for w in text.split(' ') {
                if POSITIVE_WORDS.contains(&w) {
                    pos += 1;
                }
                if NEGATIVE_WORDS.contains(&w) {
                    neg += 1;
                }
            }
        }
        assert!(neg > 3 * pos, "pos {pos} vs neg {neg}");
    }

    #[test]
    fn fake_text_is_spam_lexicon_heavy() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut spam_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..40 {
            let text = fake_text(&mut rng, FraudDirection::Promote, &["pizza"]);
            for w in text.split(' ') {
                total += 1;
                if PROMOTE_SPAM_WORDS.contains(&w) {
                    spam_hits += 1;
                }
            }
        }
        let frac = spam_hits as f64 / total as f64;
        assert!(frac > 0.15, "spam fraction {frac}");
        assert!(frac < 0.40, "spam fraction {frac} — mimicry should dominate");
    }

    #[test]
    fn fakes_are_not_verbatim_templates() {
        // Pairwise Jaccard between fakes must stay moderate — surface
        // similarity alone should not solve the detection task.
        let mut rng = StdRng::seed_from_u64(5);
        let docs: Vec<Vec<String>> = (0..20)
            .map(|_| {
                fake_text(&mut rng, FraudDirection::Demote, &["pizza", "service"])
                    .split(' ')
                    .map(str::to_string)
                    .collect()
            })
            .collect();
        // Index docs into token-id space by hashing words to usize.
        let to_ids = |d: &Vec<String>| -> Vec<usize> {
            d.iter()
                .map(|w| w.bytes().fold(0usize, |h, b| h.wrapping_mul(31).wrapping_add(b as usize)))
                .collect()
        };
        let mut total = 0.0;
        let mut count = 0;
        for i in 0..docs.len() {
            for j in i + 1..docs.len() {
                total += jaccard(&to_ids(&docs[i]), &to_ids(&docs[j]));
                count += 1;
            }
        }
        let mean = total / count as f32;
        assert!(mean < 0.45, "mean pairwise jaccard {mean} too template-like");
        assert!(mean > 0.05, "mean pairwise jaccard {mean} suspiciously low");
    }

    #[test]
    fn directions_use_disjoint_spam_lexicons() {
        let mut rng = StdRng::seed_from_u64(6);
        let promote = fake_text(&mut rng, FraudDirection::Promote, &[]);
        let demote = fake_text(&mut rng, FraudDirection::Demote, &[]);
        assert!(promote.split(' ').any(|w| PROMOTE_SPAM_WORDS.contains(&w)));
        assert!(demote.split(' ').any(|w| DEMOTE_SPAM_WORDS.contains(&w)));
    }

    #[test]
    fn unhelpful_text_has_ordinary_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let t = unhelpful_text(&mut rng, FraudDirection::Demote);
            let n = t.split(' ').count();
            assert!((13..32).contains(&n), "length {n}");
        }
    }
}
