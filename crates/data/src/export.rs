//! Tabular (CSV) export of datasets and degree-distribution summaries —
//! handy for external analysis of the synthetic data.

use crate::{Dataset, UserId};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Escapes a CSV field (quotes fields containing commas/quotes/newlines).
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders the dataset as CSV (`user,item,rating,label,timestamp,text`).
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::with_capacity(ds.len() * 64);
    out.push_str("user,item,rating,label,timestamp,text\n");
    for r in &ds.reviews {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.user.0,
            r.item.0,
            r.rating,
            if r.label.is_benign() { "benign" } else { "fake" },
            r.timestamp,
            csv_escape(&r.text)
        );
    }
    out
}

/// Writes the CSV rendering to a file.
pub fn save_csv(ds: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_csv(ds))
}

/// A degree histogram: `counts[d]` = number of entities with degree `d`
/// (entities with zero reviews excluded), truncated at `max_degree` with an
/// overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Bucket counts for degrees `1..=max_degree`.
    pub counts: Vec<usize>,
    /// Entities with degree above `max_degree`.
    pub overflow: usize,
}

impl DegreeHistogram {
    /// Total number of entities counted.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.overflow
    }
}

/// The user-degree histogram of a dataset.
pub fn user_degree_histogram(ds: &Dataset, max_degree: usize) -> DegreeHistogram {
    let index = ds.index();
    let degrees = (0..ds.n_users).map(|u| index.user_degree(UserId(u as u32)));
    histogram(degrees, max_degree)
}

/// The item-degree histogram of a dataset.
pub fn item_degree_histogram(ds: &Dataset, max_degree: usize) -> DegreeHistogram {
    let index = ds.index();
    let degrees = (0..ds.n_items).map(|i| index.item_degree(crate::ItemId(i as u32)));
    histogram(degrees, max_degree)
}

fn histogram(degrees: impl Iterator<Item = usize>, max_degree: usize) -> DegreeHistogram {
    let mut counts = vec![0usize; max_degree];
    let mut overflow = 0usize;
    for d in degrees {
        if d == 0 {
            continue;
        }
        if d <= max_degree {
            counts[d - 1] += 1;
        } else {
            overflow += 1;
        }
    }
    DegreeHistogram { counts, overflow }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use crate::{ItemId, Label, Review};

    #[test]
    fn csv_roundtrips_basic_fields() {
        let ds = Dataset::new(
            "t",
            1,
            1,
            vec![Review {
                user: UserId(0),
                item: ItemId(0),
                rating: 4.0,
                label: Label::Benign,
                timestamp: 7,
                text: "has, comma and \"quotes\"".into(),
            }],
        );
        let csv = to_csv(&ds);
        assert!(csv.starts_with("user,item,rating,label,timestamp,text\n"));
        assert!(csv.contains("0,0,4,benign,7,\"has, comma and \"\"quotes\"\"\""));
    }

    #[test]
    fn histogram_counts_all_entities() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.05));
        let h = user_degree_histogram(&ds, 10);
        assert_eq!(h.total(), ds.n_users);
        let hi = item_degree_histogram(&ds, 5);
        assert_eq!(hi.total(), ds.n_items);
        // Yelp-shaped items are high-degree: most land in overflow.
        assert!(hi.overflow > 0);
    }

    #[test]
    fn save_csv_writes_file() {
        let ds = generate(&SynthConfig::cds().scaled(0.02));
        let dir = std::env::temp_dir().join("rrre-export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        save_csv(&ds, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(content.lines().count(), ds.len() + 1);
    }
}
