//! Train/test splitting following the paper's protocol (§IV-C): 70 % train /
//! 30 % test, with every user and item keeping at least one training review
//! whenever it has more than one overall.

use crate::{Dataset, UserId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Review-index split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Indices into `dataset.reviews` used for training.
    pub train: Vec<usize>,
    /// Indices used for testing.
    pub test: Vec<usize>,
}

impl Split {
    /// Fraction of reviews in the test set.
    pub fn test_fraction(&self, total: usize) -> f64 {
        self.test.len() as f64 / total.max(1) as f64
    }
}

/// Randomly splits review indices, then repairs the split so each user and
/// item that appears at all appears in `train` at least once (moving the
/// oldest test review of any orphaned user/item into train).
///
/// # Panics
/// Panics unless `0 < test_frac < 1`.
pub fn train_test_split(ds: &Dataset, test_frac: f64, rng: &mut impl Rng) -> Split {
    assert!(
        test_frac > 0.0 && test_frac < 1.0,
        "train_test_split: test_frac {test_frac} outside (0, 1)"
    );
    let n = ds.reviews.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let n_test = ((n as f64) * test_frac).round() as usize;
    let mut is_test = vec![false; n];
    for &i in order.iter().take(n_test) {
        is_test[i] = true;
    }

    // Repair: any user/item whose every review landed in test gets its
    // earliest review pulled back into train.
    let mut user_train = vec![0usize; ds.n_users];
    let mut item_train = vec![0usize; ds.n_items];
    for (i, r) in ds.reviews.iter().enumerate() {
        if !is_test[i] {
            user_train[r.user.index()] += 1;
            item_train[r.item.index()] += 1;
        }
    }
    let index = ds.index();
    // Indexed loops are intentional: each iteration may increment *other*
    // entries of the two count vectors, so iterator borrows do not work.
    #[allow(clippy::needless_range_loop)]
    for u in 0..ds.n_users {
        if user_train[u] == 0 {
            if let Some(&earliest) = index.user_reviews(UserId(u as u32)).first() {
                if is_test[earliest] {
                    is_test[earliest] = false;
                    user_train[u] += 1;
                    item_train[ds.reviews[earliest].item.index()] += 1;
                }
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for it in 0..ds.n_items {
        if item_train[it] == 0 {
            if let Some(&earliest) = index.item_reviews(crate::ItemId(it as u32)).first() {
                if is_test[earliest] {
                    is_test[earliest] = false;
                    item_train[it] += 1;
                    user_train[ds.reviews[earliest].user.index()] += 1;
                }
            }
        }
    }

    let mut split = Split { train: Vec::new(), test: Vec::new() };
    for (i, &t) in is_test.iter().enumerate() {
        if t {
            split.test.push(i);
        } else {
            split.train.push(i);
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemId, Label, Review};
    use rand::{rngs::StdRng, SeedableRng};

    fn make_dataset(n_users: u32, n_items: u32, reviews: &[(u32, u32)]) -> Dataset {
        let reviews = reviews
            .iter()
            .enumerate()
            .map(|(i, &(u, it))| Review {
                user: UserId(u),
                item: ItemId(it),
                rating: 3.0,
                label: Label::Benign,
                timestamp: i as i64,
                text: String::new(),
            })
            .collect();
        Dataset::new("t", n_users as usize, n_items as usize, reviews)
    }

    #[test]
    fn split_sizes_approximately_respected() {
        let pairs: Vec<(u32, u32)> = (0..200).map(|i| (i % 20, i % 10)).collect();
        let ds = make_dataset(20, 10, &pairs);
        let mut rng = StdRng::seed_from_u64(1);
        let s = train_test_split(&ds, 0.3, &mut rng);
        assert_eq!(s.train.len() + s.test.len(), 200);
        let frac = s.test_fraction(200);
        assert!((0.2..=0.35).contains(&frac), "test fraction {frac}");
    }

    #[test]
    fn every_entity_kept_in_train() {
        // Heavily skewed so the repair path triggers.
        let pairs: Vec<(u32, u32)> = (0..40).map(|i| (i % 40, i % 4)).collect();
        let ds = make_dataset(40, 4, &pairs);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = train_test_split(&ds, 0.3, &mut rng);
            let mut user_seen = [false; 40];
            let mut item_seen = [false; 4];
            for &i in &s.train {
                user_seen[ds.reviews[i].user.index()] = true;
                item_seen[ds.reviews[i].item.index()] = true;
            }
            assert!(user_seen.iter().all(|&b| b), "seed {seed}: user missing from train");
            assert!(item_seen.iter().all(|&b| b), "seed {seed}: item missing from train");
        }
    }

    #[test]
    fn disjoint_and_exhaustive() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i % 10, i % 5)).collect();
        let ds = make_dataset(10, 5, &pairs);
        let mut rng = StdRng::seed_from_u64(7);
        let s = train_test_split(&ds, 0.3, &mut rng);
        let mut seen = [0u8; 100];
        for &i in s.train.iter().chain(&s.test) {
            seen[i] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_fraction_panics() {
        let ds = make_dataset(1, 1, &[(0, 0)]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = train_test_split(&ds, 1.0, &mut rng);
    }
}
