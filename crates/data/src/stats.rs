//! Dataset statistics — everything needed to print the paper's Table II and
//! to sanity-check the synthetic generator.

use crate::{Dataset, Label};

/// Summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Total reviews.
    pub n_reviews: usize,
    /// Distinct users that wrote at least one review.
    pub n_users: usize,
    /// Distinct items with at least one review.
    pub n_items: usize,
    /// Percentage of fake reviews (0–100).
    pub fake_pct: f64,
    /// Median `|W^u|` over users with at least one review.
    pub median_user_degree: usize,
    /// Median `|W^i|` over items with at least one review.
    pub median_item_degree: usize,
    /// Maximum `|W^u|`.
    pub max_user_degree: usize,
    /// Maximum `|W^i|`.
    pub max_item_degree: usize,
    /// Mean rating of benign reviews.
    pub benign_mean_rating: f64,
    /// Mean rating of fake reviews.
    pub fake_mean_rating: f64,
}

fn median(sorted: &[usize]) -> usize {
    if sorted.is_empty() {
        0
    } else {
        sorted[sorted.len() / 2]
    }
}

/// Computes [`DatasetStats`] for a dataset.
pub fn dataset_stats(ds: &Dataset) -> DatasetStats {
    let index = ds.index();
    let mut user_degrees: Vec<usize> = (0..ds.n_users)
        .map(|u| index.user_reviews(crate::UserId(u as u32)).len())
        .filter(|&d| d > 0)
        .collect();
    let mut item_degrees: Vec<usize> = (0..ds.n_items)
        .map(|i| index.item_reviews(crate::ItemId(i as u32)).len())
        .filter(|&d| d > 0)
        .collect();
    user_degrees.sort_unstable();
    item_degrees.sort_unstable();

    let (mut benign_sum, mut benign_n, mut fake_sum, mut fake_n) = (0.0f64, 0usize, 0.0f64, 0usize);
    for r in &ds.reviews {
        match r.label {
            Label::Benign => {
                benign_sum += r.rating as f64;
                benign_n += 1;
            }
            Label::Fake => {
                fake_sum += r.rating as f64;
                fake_n += 1;
            }
        }
    }

    DatasetStats {
        name: ds.name.clone(),
        n_reviews: ds.reviews.len(),
        n_users: user_degrees.len(),
        n_items: item_degrees.len(),
        fake_pct: ds.fake_fraction() * 100.0,
        median_user_degree: median(&user_degrees),
        median_item_degree: median(&item_degrees),
        max_user_degree: user_degrees.last().copied().unwrap_or(0),
        max_item_degree: item_degrees.last().copied().unwrap_or(0),
        benign_mean_rating: if benign_n > 0 { benign_sum / benign_n as f64 } else { 0.0 },
        fake_mean_rating: if fake_n > 0 { fake_sum / fake_n as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemId, Review, UserId};

    fn review(user: u32, item: u32, rating: f32, label: Label) -> Review {
        Review { user: UserId(user), item: ItemId(item), rating, label, timestamp: 0, text: String::new() }
    }

    #[test]
    fn stats_on_small_dataset() {
        let ds = Dataset::new(
            "t",
            3,
            2,
            vec![
                review(0, 0, 5.0, Label::Benign),
                review(0, 1, 4.0, Label::Benign),
                review(1, 0, 1.0, Label::Fake),
                review(2, 0, 3.0, Label::Benign),
            ],
        );
        let s = dataset_stats(&ds);
        assert_eq!(s.n_reviews, 4);
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_items, 2);
        assert!((s.fake_pct - 25.0).abs() < 1e-9);
        assert_eq!(s.median_user_degree, 1);
        assert_eq!(s.median_item_degree, 3);
        assert_eq!(s.max_user_degree, 2);
        assert_eq!(s.max_item_degree, 3);
        assert!((s.benign_mean_rating - 4.0).abs() < 1e-9);
        assert!((s.fake_mean_rating - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unused_ids_not_counted() {
        let ds = Dataset::new("t", 10, 10, vec![review(0, 0, 3.0, Label::Benign)]);
        let s = dataset_stats(&ds);
        assert_eq!(s.n_users, 1);
        assert_eq!(s.n_items, 1);
        assert_eq!(s.fake_mean_rating, 0.0);
    }
}
