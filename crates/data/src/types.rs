//! Core dataset types: users, items, labelled reviews.

use serde::{Deserialize, Serialize};

/// Dense user identifier (`0..n_users`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Dense item identifier (`0..n_items`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl UserId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Ground-truth reliability label of a review.
///
/// Matches the paper's definition: reliability is "the likelihood that a
/// review is benign"; the ground truth `l_ui` is binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// A genuine review from a normal user.
    Benign,
    /// A fake/fraudulent review (Yelp-filtered / unhelpful in the paper's
    /// datasets; campaign-generated here).
    Fake,
}

impl Label {
    /// The paper's `l_ui ∈ {0, 1}` encoding (benign = 1).
    pub fn as_f32(self) -> f32 {
        match self {
            Label::Benign => 1.0,
            Label::Fake => 0.0,
        }
    }

    /// Class index for the softmax reliability head (benign = 1, fake = 0),
    /// so that "probability of class 1" is the reliability score.
    pub fn class_index(self) -> usize {
        match self {
            Label::Benign => 1,
            Label::Fake => 0,
        }
    }

    /// Whether the review is benign.
    pub fn is_benign(self) -> bool {
        matches!(self, Label::Benign)
    }
}

/// One labelled review — the paper's tuple `t^ui = {u, i, r_ui, l_ui, w_ui}`
/// plus the publication timestamp used by the time-based sampling strategy
/// and the behavioural baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Review {
    /// Authoring user.
    pub user: UserId,
    /// Reviewed item.
    pub item: ItemId,
    /// Star rating `r_ui ∈ {1, …, 5}` stored as `f32`.
    pub rating: f32,
    /// Ground-truth reliability label `l_ui`.
    pub label: Label,
    /// Publication day (arbitrary epoch).
    pub timestamp: i64,
    /// Review text `w_ui`.
    pub text: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_encodings() {
        assert_eq!(Label::Benign.as_f32(), 1.0);
        assert_eq!(Label::Fake.as_f32(), 0.0);
        assert_eq!(Label::Benign.class_index(), 1);
        assert_eq!(Label::Fake.class_index(), 0);
        assert!(Label::Benign.is_benign());
        assert!(!Label::Fake.is_benign());
    }

    #[test]
    fn ids_index() {
        assert_eq!(UserId(7).index(), 7);
        assert_eq!(ItemId(3).index(), 3);
    }
}
