//! Loader for the Rayana–Akoglu Yelp dataset format.
//!
//! The real YelpChi/YelpNYC/YelpZip releases (obtained from the SpEagle
//! authors; not redistributable with this repository) ship as two aligned
//! text files:
//!
//! * `metadata` — one review per line:
//!   `user_id<TAB>prod_id<TAB>rating<TAB>label<TAB>date`, where `label` is
//!   `-1` for filtered (fake) and `1` for recommended (benign), and `date`
//!   is `YYYY-MM-DD`;
//! * `reviewContent` — the review text, same line order (optional; reviews
//!   without text get an empty string, which the caller should filter or
//!   tolerate).
//!
//! Anyone holding the real data can parse it with [`load_yelp`] and run the
//! entire pipeline unchanged on it.

use crate::types::{ItemId, Label, Review, UserId};
use crate::Dataset;
use std::collections::HashMap;
use std::io::{self, BufRead};

/// Days from the Unix epoch for a `YYYY-MM-DD` date (proleptic Gregorian).
/// Returns `None` for malformed dates.
fn days_since_epoch(date: &str) -> Option<i64> {
    let mut parts = date.split('-');
    let year: i64 = parts.next()?.parse().ok()?;
    let month: i64 = parts.next()?.parse().ok()?;
    let day: i64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    // Howard Hinnant's days-from-civil algorithm.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some(era * 146_097 + doe - 719_468)
}

/// A parse failure with its line number.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the `metadata` stream (and optionally the aligned `reviewContent`
/// stream) into a [`Dataset`] with dense ids.
///
/// Fields may be separated by tabs or runs of spaces. Ratings outside
/// `[1, 5]` are clamped; labels other than `-1`/`1` are errors.
pub fn load_yelp(
    name: &str,
    metadata: impl BufRead,
    review_content: Option<impl BufRead>,
) -> Result<Dataset, ParseError> {
    let mut texts: Vec<String> = Vec::new();
    if let Some(rc) = review_content {
        for line in rc.lines() {
            let line = line.map_err(|e| ParseError { line: texts.len() + 1, message: e.to_string() })?;
            texts.push(line);
        }
    }

    let mut user_map: HashMap<String, u32> = HashMap::new();
    let mut item_map: HashMap<String, u32> = HashMap::new();
    let mut user_names: Vec<String> = Vec::new();
    let mut item_names: Vec<String> = Vec::new();
    let mut reviews = Vec::new();

    for (lineno, line) in metadata.lines().enumerate() {
        let line = line.map_err(|e| ParseError { line: lineno + 1, message: e.to_string() })?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(['\t', ' ']).filter(|f| !f.is_empty()).collect();
        if fields.len() < 5 {
            return Err(ParseError {
                line: lineno + 1,
                message: format!("expected 5 fields (user prod rating label date), got {}", fields.len()),
            });
        }
        let user = *user_map.entry(fields[0].to_string()).or_insert_with(|| {
            user_names.push(fields[0].to_string());
            (user_names.len() - 1) as u32
        });
        let item = *item_map.entry(fields[1].to_string()).or_insert_with(|| {
            item_names.push(fields[1].to_string());
            (item_names.len() - 1) as u32
        });
        let rating: f32 = fields[2].parse().map_err(|_| ParseError {
            line: lineno + 1,
            message: format!("bad rating '{}'", fields[2]),
        })?;
        let label = match fields[3] {
            "-1" => Label::Fake,
            "1" => Label::Benign,
            other => {
                return Err(ParseError { line: lineno + 1, message: format!("bad label '{other}'") });
            }
        };
        let timestamp = days_since_epoch(fields[4]).ok_or_else(|| ParseError {
            line: lineno + 1,
            message: format!("bad date '{}'", fields[4]),
        })?;
        let text = texts.get(reviews.len()).cloned().unwrap_or_default();
        reviews.push(Review {
            user: UserId(user),
            item: ItemId(item),
            rating: rating.clamp(1.0, 5.0),
            label,
            timestamp,
            text,
        });
    }

    let mut ds = Dataset::new(name, user_names.len(), item_names.len(), reviews);
    ds.user_names = user_names;
    ds.item_names = item_names;
    Ok(ds)
}

/// Loads the two files from disk.
pub fn load_yelp_files(
    name: &str,
    metadata_path: impl AsRef<std::path::Path>,
    review_content_path: Option<&std::path::Path>,
) -> io::Result<Dataset> {
    let meta = io::BufReader::new(std::fs::File::open(metadata_path)?);
    let rc = match review_content_path {
        Some(p) => Some(io::BufReader::new(std::fs::File::open(p)?)),
        None => None,
    };
    load_yelp(name, meta, rc).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = "u1\tp1\t5.0\t1\t2012-06-01\n\
                        u2\tp1\t1.0\t-1\t2012-06-03\n\
                        u1\tp2\t4.0\t1\t2012-07-10\n";
    const TEXT: &str = "great place loved it\nawful scam avoid\nreally nice pasta\n";

    #[test]
    fn parses_metadata_and_text() {
        let ds = load_yelp("chi", META.as_bytes(), Some(TEXT.as_bytes())).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_users, 2);
        assert_eq!(ds.n_items, 2);
        assert_eq!(ds.reviews[0].rating, 5.0);
        assert_eq!(ds.reviews[1].label, Label::Fake);
        assert_eq!(ds.reviews[2].text, "really nice pasta");
        assert_eq!(ds.user_name(UserId(0)), "u1");
        assert_eq!(ds.item_name(ItemId(1)), "p2");
        // Dates map to increasing day numbers.
        assert!(ds.reviews[1].timestamp > ds.reviews[0].timestamp);
        assert!(ds.reviews[2].timestamp > ds.reviews[1].timestamp);
    }

    #[test]
    fn missing_text_stream_yields_empty_texts() {
        let ds = load_yelp("chi", META.as_bytes(), None::<&[u8]>).unwrap();
        assert!(ds.reviews.iter().all(|r| r.text.is_empty()));
    }

    #[test]
    fn space_separated_fields_accepted() {
        let meta = "u1 p1 3.0 1 2013-01-15\n";
        let ds = load_yelp("x", meta.as_bytes(), None::<&[u8]>).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.reviews[0].rating, 3.0);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let bad_label = "u1\tp1\t5.0\t2\t2012-06-01\n";
        let err = load_yelp("x", bad_label.as_bytes(), None::<&[u8]>).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("label"));

        let bad_date = "u1\tp1\t5.0\t1\tnot-a-date\n";
        let err = load_yelp("x", bad_date.as_bytes(), None::<&[u8]>).unwrap_err();
        assert!(err.message.contains("date"));

        let short = "u1\tp1\t5.0\n";
        let err = load_yelp("x", short.as_bytes(), None::<&[u8]>).unwrap_err();
        assert!(err.message.contains("5 fields"));
    }

    #[test]
    fn date_conversion_known_values() {
        assert_eq!(days_since_epoch("1970-01-01"), Some(0));
        assert_eq!(days_since_epoch("1970-01-02"), Some(1));
        assert_eq!(days_since_epoch("2000-03-01"), Some(11017));
        assert_eq!(days_since_epoch("2012-06-01"), Some(15492));
        assert_eq!(days_since_epoch("2012-13-01"), None);
        assert_eq!(days_since_epoch("garbage"), None);
    }
}
