//! The review dataset container and its per-user / per-item index.

use crate::types::{ItemId, Label, Review, UserId};
use serde::{Deserialize, Serialize};

/// A complete labelled review dataset with dense user/item id spaces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name (e.g. `"YelpChi-sim"`).
    pub name: String,
    /// Number of distinct users (`UserId` values are `0..n_users`).
    pub n_users: usize,
    /// Number of distinct items (`ItemId` values are `0..n_items`).
    pub n_items: usize,
    /// All reviews, in generation order.
    pub reviews: Vec<Review>,
    /// Optional display names per item (used by the case study).
    pub item_names: Vec<String>,
    /// Optional display names per user.
    pub user_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset, validating id ranges.
    ///
    /// # Panics
    /// Panics if any review references a user/item outside the declared
    /// ranges, or a rating outside `[1, 5]`.
    pub fn new(name: impl Into<String>, n_users: usize, n_items: usize, reviews: Vec<Review>) -> Self {
        for (i, r) in reviews.iter().enumerate() {
            assert!(r.user.index() < n_users, "review {i}: user {} out of {n_users}", r.user.0);
            assert!(r.item.index() < n_items, "review {i}: item {} out of {n_items}", r.item.0);
            assert!((1.0..=5.0).contains(&r.rating), "review {i}: rating {} outside [1,5]", r.rating);
        }
        Self {
            name: name.into(),
            n_users,
            n_items,
            reviews,
            item_names: Vec::new(),
            user_names: Vec::new(),
        }
    }

    /// Appends one review, validating it the way [`Dataset::new`] does —
    /// but returning an error instead of panicking, because streamed-in
    /// reviews are runtime input, not construction-time invariants. The
    /// user/item id spaces are fixed: an id outside the declared ranges is
    /// refused (the embedding tables sized off `n_users`/`n_items` cannot
    /// grow without a retrain).
    pub fn append_review(&mut self, review: Review) -> Result<usize, String> {
        if review.user.index() >= self.n_users {
            return Err(format!("user {} outside the dataset's {} users", review.user.0, self.n_users));
        }
        if review.item.index() >= self.n_items {
            return Err(format!("item {} outside the dataset's {} items", review.item.0, self.n_items));
        }
        if !(1.0..=5.0).contains(&review.rating) {
            return Err(format!("rating {} outside [1, 5]", review.rating));
        }
        self.reviews.push(review);
        Ok(self.reviews.len() - 1)
    }

    /// Number of reviews.
    pub fn len(&self) -> usize {
        self.reviews.len()
    }

    /// Whether the dataset has no reviews.
    pub fn is_empty(&self) -> bool {
        self.reviews.is_empty()
    }

    /// Fraction of reviews labelled fake.
    pub fn fake_fraction(&self) -> f64 {
        if self.reviews.is_empty() {
            return 0.0;
        }
        let fakes = self.reviews.iter().filter(|r| r.label == Label::Fake).count();
        fakes as f64 / self.reviews.len() as f64
    }

    /// Builds the per-user / per-item review index (time-sorted).
    pub fn index(&self) -> DatasetIndex {
        DatasetIndex::build(self)
    }

    /// Display name for an item (falls back to `item#<id>`).
    pub fn item_name(&self, item: ItemId) -> String {
        self.item_names
            .get(item.index())
            .cloned()
            .unwrap_or_else(|| format!("item#{}", item.0))
    }

    /// Display name for a user (falls back to `user#<id>`).
    pub fn user_name(&self, user: UserId) -> String {
        self.user_names
            .get(user.index())
            .cloned()
            .unwrap_or_else(|| format!("user#{}", user.0))
    }
}

/// Time-sorted per-user and per-item review index over a [`Dataset`].
///
/// Holds review *indices* into `dataset.reviews`, so it stays valid only for
/// the dataset it was built from.
#[derive(Debug, Clone)]
pub struct DatasetIndex {
    by_user: Vec<Vec<usize>>,
    by_item: Vec<Vec<usize>>,
}

impl DatasetIndex {
    /// Builds the index; within each user/item the review indices are sorted
    /// by ascending timestamp (ties by review index for determinism).
    pub fn build(ds: &Dataset) -> Self {
        let mut by_user: Vec<Vec<usize>> = vec![Vec::new(); ds.n_users];
        let mut by_item: Vec<Vec<usize>> = vec![Vec::new(); ds.n_items];
        for (idx, r) in ds.reviews.iter().enumerate() {
            by_user[r.user.index()].push(idx);
            by_item[r.item.index()].push(idx);
        }
        let sort_key = |indices: &mut Vec<usize>| {
            indices.sort_by_key(|&i| (ds.reviews[i].timestamp, i));
        };
        by_user.iter_mut().for_each(sort_key);
        by_item.iter_mut().for_each(sort_key);
        Self { by_user, by_item }
    }

    /// Review indices written by `user`, oldest first.
    pub fn user_reviews(&self, user: UserId) -> &[usize] {
        &self.by_user[user.index()]
    }

    /// Review indices written to `item`, oldest first.
    pub fn item_reviews(&self, item: ItemId) -> &[usize] {
        &self.by_item[item.index()]
    }

    /// The `|W^u|` degree of a user.
    pub fn user_degree(&self, user: UserId) -> usize {
        self.by_user[user.index()].len()
    }

    /// The `|W^i|` degree of an item.
    pub fn item_degree(&self, item: ItemId) -> usize {
        self.by_item[item.index()].len()
    }

    /// The latest `m` review indices of a user — the paper's time-based
    /// sampling strategy ("select the latest m reviews"). Returns fewer than
    /// `m` if the user has fewer.
    pub fn latest_user_reviews(&self, user: UserId, m: usize) -> &[usize] {
        let all = self.user_reviews(user);
        &all[all.len().saturating_sub(m)..]
    }

    /// The latest `m` review indices of an item.
    pub fn latest_item_reviews(&self, item: ItemId, m: usize) -> &[usize] {
        let all = self.item_reviews(item);
        &all[all.len().saturating_sub(m)..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn review(user: u32, item: u32, rating: f32, ts: i64, label: Label) -> Review {
        Review {
            user: UserId(user),
            item: ItemId(item),
            rating,
            label,
            timestamp: ts,
            text: String::from("text"),
        }
    }

    fn tiny() -> Dataset {
        Dataset::new(
            "tiny",
            2,
            2,
            vec![
                review(0, 0, 5.0, 10, Label::Benign),
                review(0, 1, 3.0, 5, Label::Fake),
                review(1, 1, 1.0, 20, Label::Benign),
                review(0, 0, 4.0, 1, Label::Benign),
            ],
        )
    }

    #[test]
    fn fake_fraction_counts() {
        assert!((tiny().fake_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn index_is_time_sorted() {
        let ds = tiny();
        let idx = ds.index();
        assert_eq!(idx.user_reviews(UserId(0)), &[3, 1, 0]);
        assert_eq!(idx.item_reviews(ItemId(1)), &[1, 2]);
        assert_eq!(idx.user_degree(UserId(1)), 1);
        assert_eq!(idx.item_degree(ItemId(0)), 2);
    }

    #[test]
    fn latest_reviews_takes_newest() {
        let ds = tiny();
        let idx = ds.index();
        assert_eq!(idx.latest_user_reviews(UserId(0), 2), &[1, 0]);
        assert_eq!(idx.latest_user_reviews(UserId(0), 10), &[3, 1, 0]);
        assert_eq!(idx.latest_item_reviews(ItemId(1), 1), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn invalid_user_id_rejected() {
        let _ = Dataset::new("bad", 1, 2, vec![review(1, 0, 3.0, 0, Label::Benign)]);
    }

    #[test]
    #[should_panic(expected = "rating")]
    fn invalid_rating_rejected() {
        let _ = Dataset::new("bad", 1, 1, vec![review(0, 0, 6.0, 0, Label::Benign)]);
    }

    #[test]
    fn append_review_validates_and_extends() {
        let mut ds = tiny();
        let idx = ds.append_review(review(1, 0, 2.0, 30, Label::Benign)).unwrap();
        assert_eq!(idx, 4);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.index().user_reviews(UserId(1)), &[2, 4]);
        assert!(ds.append_review(review(2, 0, 2.0, 0, Label::Benign)).is_err());
        assert!(ds.append_review(review(0, 2, 2.0, 0, Label::Benign)).is_err());
        assert!(ds.append_review(review(0, 0, 0.5, 0, Label::Benign)).is_err());
        assert_eq!(ds.len(), 5, "refused reviews must not be appended");
    }

    #[test]
    fn display_names_fall_back() {
        let ds = tiny();
        assert_eq!(ds.item_name(ItemId(1)), "item#1");
        assert_eq!(ds.user_name(UserId(0)), "user#0");
    }
}
