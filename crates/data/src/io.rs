//! Dataset persistence as JSON (pretty for small sets, compact otherwise).

use crate::Dataset;
use std::fs;
use std::io;
use std::path::Path;

/// Saves a dataset as compact JSON.
pub fn save_json(ds: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string(ds).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Loads a dataset from JSON written by [`save_json`].
pub fn load_json(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.02));
        let dir = std::env::temp_dir().join("rrre-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        save_json(&ds, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(loaded.name, ds.name);
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded.n_users, ds.n_users);
        assert_eq!(loaded.reviews[0].text, ds.reviews[0].text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_json("/nonexistent/rrre/path.json").is_err());
    }
}
