//! Encoded corpus: the shared text-preprocessing pipeline every text-based
//! model (RRRE, DeepCoNN, NARRE, DER, content features) runs on.
//!
//! Tokenizes every review, builds a vocabulary, pretrains skip-gram word
//! vectors (the paper's "textual content of reviews is pretrained as
//! vectors"), and encodes each review to a fixed-length id sequence.
//!
//! Word-vector pretraining is unsupervised and uses all review text; labels
//! and ratings never enter this stage.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrre_text::{encode_document, tokenize, train_word2vec, EncodedDoc, Vocab, Word2VecConfig, WordVectors};

/// Configuration of the text pipeline.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Fixed review length in tokens (pad/truncate).
    pub max_len: usize,
    /// Minimum corpus frequency for a word to enter the vocabulary.
    pub min_count: u64,
    /// Word2vec pretraining settings.
    pub word2vec: Word2VecConfig,
    /// Seed for the word2vec RNG.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self { max_len: 30, min_count: 2, word2vec: Word2VecConfig::default(), seed: 0x7E47 }
    }
}

/// The encoded corpus of one dataset.
#[derive(Debug, Clone)]
pub struct EncodedCorpus {
    /// Vocabulary over the dataset's review text.
    pub vocab: Vocab,
    /// Pretrained word vectors (`vocab.len() × dim`).
    pub word_vectors: WordVectors,
    /// One encoded document per review, aligned with `dataset.reviews`.
    pub docs: Vec<EncodedDoc>,
    /// Fixed document length.
    pub max_len: usize,
}

impl EncodedCorpus {
    /// Builds the pipeline over a dataset.
    pub fn build(ds: &Dataset, cfg: &CorpusConfig) -> Self {
        let tokenised: Vec<Vec<String>> = ds.reviews.iter().map(|r| tokenize(&r.text)).collect();
        let refs: Vec<&[String]> = tokenised.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, cfg.min_count);
        let id_docs: Vec<Vec<usize>> = tokenised.iter().map(|t| vocab.encode(t)).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let word_vectors = train_word2vec(&id_docs, &vocab, &cfg.word2vec, &mut rng);
        let docs = ds
            .reviews
            .iter()
            .map(|r| encode_document(&r.text, &vocab, cfg.max_len))
            .collect();
        Self { vocab, word_vectors, docs, max_len: cfg.max_len }
    }

    /// Rebuilds a corpus from a dataset plus previously trained word
    /// vectors, skipping word2vec pretraining entirely. Tokenisation,
    /// vocabulary construction and document encoding are deterministic
    /// functions of the review text, so re-running them over the same
    /// dataset reproduces the exact vocab/docs the vectors were trained
    /// against — the serving artifact only needs to persist the vector
    /// table.
    ///
    /// Fails (rather than panicking) when the stored table does not match
    /// the rebuilt vocabulary, which is the signature of a corrupted or
    /// mismatched artifact.
    pub fn from_parts(
        ds: &Dataset,
        max_len: usize,
        min_count: u64,
        word_vectors: WordVectors,
    ) -> Result<Self, String> {
        let tokenised: Vec<Vec<String>> = ds.reviews.iter().map(|r| tokenize(&r.text)).collect();
        let refs: Vec<&[String]> = tokenised.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, min_count);
        if word_vectors.len() != vocab.len() {
            return Err(format!(
                "word-vector table has {} rows but the rebuilt vocabulary has {} words; \
                 the vectors belong to a different dataset or min_count",
                word_vectors.len(),
                vocab.len()
            ));
        }
        let docs = ds
            .reviews
            .iter()
            .map(|r| encode_document(&r.text, &vocab, max_len))
            .collect();
        Ok(Self { vocab, word_vectors, docs, max_len })
    }

    /// [`EncodedCorpus::from_parts`] for datasets that have *grown* since
    /// the word vectors were trained: the vocabulary is rebuilt from only
    /// the first `vocab_reviews` reviews — the prefix the vectors were
    /// pretrained on — and every review (prefix and appended tail alike) is
    /// encoded against that pinned vocabulary, with out-of-vocabulary words
    /// dropped. This is what makes streamed-in reviews safe: new text can
    /// never reshape the vocab out from under the frozen vector table.
    pub fn from_parts_pinned(
        ds: &Dataset,
        max_len: usize,
        min_count: u64,
        word_vectors: WordVectors,
        vocab_reviews: usize,
    ) -> Result<Self, String> {
        if vocab_reviews > ds.len() {
            return Err(format!(
                "vocabulary is pinned to the first {vocab_reviews} reviews but the dataset \
                 has only {}",
                ds.len()
            ));
        }
        let tokenised: Vec<Vec<String>> =
            ds.reviews[..vocab_reviews].iter().map(|r| tokenize(&r.text)).collect();
        let refs: Vec<&[String]> = tokenised.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs, min_count);
        if word_vectors.len() != vocab.len() {
            return Err(format!(
                "word-vector table has {} rows but the pinned vocabulary has {} words; \
                 the vectors belong to a different prefix or min_count",
                word_vectors.len(),
                vocab.len()
            ));
        }
        let docs = ds
            .reviews
            .iter()
            .map(|r| encode_document(&r.text, &vocab, max_len))
            .collect();
        Ok(Self { vocab, word_vectors, docs, max_len })
    }

    /// Appends the encoded document for one more review, encoding its text
    /// against the corpus's *frozen* vocabulary (out-of-vocabulary words
    /// dropped). By construction this yields exactly the document a full
    /// [`EncodedCorpus::from_parts_pinned`] rebuild over the grown dataset
    /// would produce at this index.
    pub fn append_doc(&mut self, text: &str) -> usize {
        self.docs.push(encode_document(text, &self.vocab, self.max_len));
        self.docs.len() - 1
    }

    /// Word-embedding dimension.
    pub fn embed_dim(&self) -> usize {
        self.word_vectors.dim()
    }

    /// The mean word vector of review `idx` — the cheap fixed review
    /// representation used by feature-based baselines.
    pub fn mean_vector(&self, idx: usize) -> Vec<f32> {
        let doc = &self.docs[idx];
        rrre_text::similarity::mean_vector(&doc.ids, doc.len, self.word_vectors.as_flat(), self.embed_dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    fn tiny_corpus() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.03));
        let cfg = CorpusConfig {
            max_len: 12,
            word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
            ..Default::default()
        };
        let corpus = EncodedCorpus::build(&ds, &cfg);
        (ds, corpus)
    }

    #[test]
    fn one_doc_per_review_with_fixed_length() {
        let (ds, corpus) = tiny_corpus();
        assert_eq!(corpus.docs.len(), ds.len());
        assert!(corpus.docs.iter().all(|d| d.ids.len() == 12));
    }

    #[test]
    fn word_vectors_cover_vocab() {
        let (_, corpus) = tiny_corpus();
        assert_eq!(corpus.word_vectors.len(), corpus.vocab.len());
        assert_eq!(corpus.embed_dim(), 8);
    }

    #[test]
    fn mean_vectors_are_finite_and_nonzero_for_real_text() {
        let (_, corpus) = tiny_corpus();
        let v = corpus.mean_vector(0);
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn pinned_rebuild_matches_incremental_append() {
        let (mut ds, base) = tiny_corpus();
        let pinned = ds.len();
        // Grow the dataset with text containing both known and novel words.
        let mut r0 = ds.reviews[0].clone();
        r0.text = format!("{} zxqv-neverseen", r0.text);
        ds.reviews.push(r0);
        // Incremental: append against the frozen vocab.
        let mut grown = base.clone();
        grown.append_doc(&ds.reviews[pinned].text.clone());
        // Full rebuild with the vocab pinned to the original prefix.
        let rebuilt = EncodedCorpus::from_parts_pinned(
            &ds,
            base.max_len,
            2,
            base.word_vectors.clone(),
            pinned,
        )
        .unwrap();
        assert_eq!(rebuilt.docs.len(), grown.docs.len());
        for (a, b) in rebuilt.docs.iter().zip(&grown.docs) {
            assert_eq!(a.ids, b.ids);
            assert_eq!(a.len, b.len);
        }
        // Without pinning, the grown dataset would rebuild a different
        // vocabulary and from_parts must refuse the stale vector table...
        // unless the new words happen not to cross min_count. Pinning makes
        // the guarantee unconditional; here we just check the pinned vocab
        // is the base vocab.
        assert_eq!(rebuilt.vocab.len(), base.vocab.len());
        // A pin past the end of the dataset is a structural error.
        assert!(EncodedCorpus::from_parts_pinned(&ds, 12, 2, base.word_vectors.clone(), ds.len() + 1)
            .is_err());
    }

    #[test]
    fn deterministic_given_config() {
        let ds = generate(&SynthConfig::cds().scaled(0.03));
        let cfg = CorpusConfig {
            word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
            ..Default::default()
        };
        let a = EncodedCorpus::build(&ds, &cfg);
        let b = EncodedCorpus::build(&ds, &cfg);
        assert_eq!(a.word_vectors.as_flat(), b.word_vectors.as_flat());
    }
}
