//! # rrre-data
//!
//! Review dataset model for the RRRE reproduction: labelled review types, a
//! time-sorted user/item index, the paper's train/test protocol, dataset
//! statistics (Table II), JSON persistence, and a synthetic generator with
//! five presets shaped like the paper's YelpChi / YelpNYC / YelpZip / Musics
//! / CDs datasets (see DESIGN.md for the substitution rationale).

#![warn(missing_docs)]

pub mod corpus;
mod dataset;
pub mod export;
pub mod io;
pub mod repr;
pub mod split;
pub mod stats;
pub mod synth;
mod types;
pub mod yelp_format;

pub use corpus::{CorpusConfig, EncodedCorpus};
pub use dataset::{Dataset, DatasetIndex};
pub use split::{train_test_split, Split};
pub use stats::{dataset_stats, DatasetStats};
pub use types::{ItemId, Label, Review, UserId};
