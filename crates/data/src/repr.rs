//! Shared infrastructure for the review-based rating models.
//!
//! Input convention (uniform across RRRE and every baseline, see DESIGN.md):
//! a user's input set `W^u` / an item's `W^i` is the *latest m* reviews of
//! that user/item over the whole dataset — the paper's problem definition
//! `W^u = {w_ui | i ∈ I}` with its time-based sampling strategy. Texts and
//! timestamps of test reviews are observable (transductive detection);
//! labels and target ratings never enter inputs.

use crate::{Dataset, DatasetIndex, EncodedCorpus};
use rrre_tensor::Tensor;

/// Fixed per-review feature vectors (mean pretrained word vectors) used as
/// frozen review representations by NARRE/DER, aligned with
/// `dataset.reviews`.
#[derive(Debug, Clone)]
pub struct ReviewVectors {
    dim: usize,
    flat: Vec<f32>,
}

impl ReviewVectors {
    /// Computes the mean-word-vector representation of every review.
    pub fn build(ds: &Dataset, corpus: &EncodedCorpus) -> Self {
        let dim = corpus.embed_dim();
        let mut flat = Vec::with_capacity(ds.len() * dim);
        for i in 0..ds.len() {
            flat.extend_from_slice(&corpus.mean_vector(i));
        }
        Self { dim, flat }
    }

    /// Wraps externally computed review vectors (e.g. BiLSTM encodings).
    ///
    /// # Panics
    /// Panics if `flat.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, flat: Vec<f32>) -> Self {
        assert!(dim > 0 && flat.len().is_multiple_of(dim), "ReviewVectors::from_flat: bad dimensions");
        Self { dim, flat }
    }

    /// Representation dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of reviews covered.
    pub fn len(&self) -> usize {
        self.flat.len() / self.dim
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// The vector of review `idx`.
    pub fn vector(&self, idx: usize) -> &[f32] {
        &self.flat[idx * self.dim..(idx + 1) * self.dim]
    }

    /// Appends one review's vector (incremental cache growth for streamed
    /// reviews).
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn append(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "ReviewVectors::append: dimension mismatch");
        self.flat.extend_from_slice(v);
    }

    /// Stacks the listed reviews into an `m × dim` matrix, zero-padding to
    /// exactly `m` rows (the paper's zero-padding for `|W| < m`). Returns the
    /// matrix and the validity mask. If `indices` exceeds `m`, the *last*
    /// `m` are used (callers pass time-sorted lists, so these are the latest).
    pub fn stack_padded(&self, indices: &[usize], m: usize) -> (Tensor, Vec<bool>) {
        assert!(m > 0, "stack_padded: m must be positive");
        let take = indices.len().min(m);
        let start = indices.len() - take;
        let mut out = Tensor::zeros(m, self.dim);
        let mut mask = vec![false; m];
        for (row, &idx) in indices[start..].iter().enumerate() {
            out.row_mut(row).copy_from_slice(self.vector(idx));
            mask[row] = true;
        }
        (out, mask)
    }
}

/// The latest-`m` review indices of a user (the paper's time-based sampling
/// strategy).
pub fn user_input_reviews(index: &DatasetIndex, user: crate::UserId, m: usize) -> Vec<usize> {
    index.latest_user_reviews(user, m).to_vec()
}

/// The latest-`m` review indices of an item.
pub fn item_input_reviews(index: &DatasetIndex, item: crate::ItemId, m: usize) -> Vec<usize> {
    index.latest_item_reviews(item, m).to_vec()
}

/// Concatenates the token ids of a user's/item's latest reviews into one
/// document of at most `max_tokens` ids — DeepCoNN's input convention.
/// Always returns at least one token (PAD) so convolution widths are valid.
pub fn concat_document(corpus: &EncodedCorpus, review_indices: &[usize], max_tokens: usize) -> Vec<usize> {
    let mut doc = Vec::with_capacity(max_tokens);
    // Newest first so truncation drops the oldest text.
    for &ri in review_indices.iter().rev() {
        let d = &corpus.docs[ri];
        for &id in &d.ids[..d.len] {
            if doc.len() >= max_tokens {
                break;
            }
            doc.push(id);
        }
        if doc.len() >= max_tokens {
            break;
        }
    }
    if doc.is_empty() {
        doc.push(rrre_text::PAD);
    }
    doc
}

/// Looks up word vectors for a token-id document as a `[T, dim]` tensor.
pub fn embed_document(corpus: &EncodedCorpus, ids: &[usize]) -> Tensor {
    let dim = corpus.embed_dim();
    let flat = corpus.word_vectors.as_flat();
    let mut out = Tensor::zeros(ids.len(), dim);
    for (row, &id) in ids.iter().enumerate() {
        out.row_mut(row).copy_from_slice(&flat[id * dim..(id + 1) * dim]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use crate::CorpusConfig;
    use rrre_text::word2vec::Word2VecConfig;

    fn setup() -> (Dataset, EncodedCorpus) {
        let ds = generate(&SynthConfig::yelp_chi().scaled(0.03));
        let corpus = EncodedCorpus::build(
            &ds,
            &CorpusConfig {
                word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
                ..Default::default()
            },
        );
        (ds, corpus)
    }

    #[test]
    fn review_vectors_align_with_corpus() {
        let (ds, corpus) = setup();
        let rv = ReviewVectors::build(&ds, &corpus);
        assert_eq!(rv.len(), ds.len());
        assert_eq!(rv.dim(), 8);
        assert_eq!(rv.vector(3), corpus.mean_vector(3).as_slice());
    }

    #[test]
    fn stack_padded_pads_and_masks() {
        let (ds, corpus) = setup();
        let rv = ReviewVectors::build(&ds, &corpus);
        let (m, mask) = rv.stack_padded(&[0, 1], 4);
        assert_eq!(m.shape(), (4, 8));
        assert_eq!(mask, vec![true, true, false, false]);
        assert!(m.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn stack_padded_keeps_latest_when_overflowing() {
        let (ds, corpus) = setup();
        let rv = ReviewVectors::build(&ds, &corpus);
        let (m, mask) = rv.stack_padded(&[0, 1, 2], 2);
        assert_eq!(mask, vec![true, true]);
        assert_eq!(m.row(0), rv.vector(1));
        assert_eq!(m.row(1), rv.vector(2));
    }

    #[test]
    fn concat_document_truncates_from_oldest() {
        let (_ds, corpus) = setup();
        let doc = concat_document(&corpus, &[0, 1, 2], 10);
        assert!(doc.len() <= 10);
        // Newest review's tokens lead.
        let newest = &corpus.docs[2];
        assert_eq!(doc[0], newest.ids[0]);
    }

    #[test]
    fn concat_document_never_empty() {
        let (_, corpus) = setup();
        let doc = concat_document(&corpus, &[], 10);
        assert_eq!(doc, vec![rrre_text::PAD]);
    }

    #[test]
    fn embed_document_shape() {
        let (_, corpus) = setup();
        let t = embed_document(&corpus, &[0, 1, 2]);
        assert_eq!(t.shape(), (3, 8));
    }
}
