//! The testkit's fixture contract, checked from the data crate's side: a
//! [`FixtureSpec`] pins every source of randomness in the data pipeline, so
//! the same spec rebuilds the same dataset and corpus bit-for-bit — the
//! property the committed golden traces and parity oracles stand on.

use rrre_data::Label;
use rrre_testkit::{corpus_for, FixtureSpec};

#[test]
fn same_spec_rebuilds_an_identical_dataset_and_corpus() {
    let spec = FixtureSpec::small();
    let (a_ds, a_corpus) = spec.corpus();
    let (b_ds, b_corpus) = spec.corpus();

    assert_eq!(a_ds.n_users, b_ds.n_users);
    assert_eq!(a_ds.n_items, b_ds.n_items);
    assert_eq!(a_ds.len(), b_ds.len());
    for (x, y) in a_ds.reviews.iter().zip(&b_ds.reviews) {
        assert_eq!((x.user, x.item, x.label, x.timestamp), (y.user, y.item, y.label, y.timestamp));
        assert_eq!(x.rating.to_bits(), y.rating.to_bits(), "ratings must match bit-for-bit");
        assert_eq!(x.text, y.text);
    }

    assert_eq!(a_corpus.vocab.len(), b_corpus.vocab.len());
    let (a_flat, b_flat) = (a_corpus.word_vectors.as_flat(), b_corpus.word_vectors.as_flat());
    assert_eq!(a_flat.len(), b_flat.len());
    for (x, y) in a_flat.iter().zip(b_flat) {
        assert_eq!(x.to_bits(), y.to_bits(), "word vectors must match bit-for-bit");
    }
    for (x, y) in a_corpus.docs.iter().zip(&b_corpus.docs) {
        assert_eq!(x.ids, y.ids);
        assert_eq!(x.len, y.len);
    }
}

#[test]
fn corpus_shape_follows_the_spec() {
    let spec = FixtureSpec::micro();
    let (ds, corpus) = spec.corpus();
    assert_eq!(corpus.max_len, spec.max_len);
    assert_eq!(corpus.word_vectors.dim(), spec.embed_dim);
    assert_eq!(corpus.docs.len(), ds.len(), "one encoded doc per review");
    for doc in &corpus.docs {
        assert_eq!(doc.ids.len(), spec.max_len);
        assert!(doc.len <= spec.max_len);
    }
}

#[test]
fn different_master_seeds_generate_different_data() {
    let a = FixtureSpec::micro().dataset();
    let b = FixtureSpec::micro().with_seed(0xD1FF).dataset();
    // Same shape family, but the actual reviews must differ somewhere —
    // otherwise the multi-seed parity oracle would be testing one model
    // three times.
    let any_differs = a
        .reviews
        .iter()
        .zip(&b.reviews)
        .any(|(x, y)| x.text != y.text || x.rating != y.rating || x.user != y.user || x.item != y.item);
    assert!(a.len() != b.len() || any_differs);
}

#[test]
fn standard_fixture_keeps_both_label_classes() {
    // Downstream fixtures (SpEagle supervision, fraud-aware eval metrics)
    // assume the standard spec plants both benign and fake reviews.
    for spec in [FixtureSpec::small(), FixtureSpec::micro()] {
        let ds = spec.dataset();
        assert!(ds.reviews.iter().any(|r| r.label == Label::Benign), "no benign review in {spec:?}");
        assert!(ds.reviews.iter().any(|r| r.label == Label::Fake), "no fake review in {spec:?}");
    }
}

#[test]
fn custom_dataset_corpus_uses_spec_hyper_parameters() {
    let spec = FixtureSpec::micro();
    let ds = spec.dataset();
    let corpus = corpus_for(&ds, &spec);
    assert_eq!(corpus.max_len, spec.max_len);
    assert_eq!(corpus.word_vectors.dim(), spec.embed_dim);
    assert_eq!(corpus.docs.len(), ds.len());
}
