//! Property-based tests of the synthetic dataset generator across random
//! configurations — the invariants every downstream experiment relies on.

use proptest::prelude::*;
use rrre_data::synth::{generate, SynthConfig};
use rrre_data::{dataset_stats, train_test_split, Label};
use std::collections::HashSet;

fn any_preset() -> impl Strategy<Value = SynthConfig> {
    (0usize..5, 0.02f64..0.08, 0u64..100_000).prop_map(|(which, scale, seed)| {
        let base = SynthConfig::all_presets().swap_remove(which);
        base.scaled(scale).with_seed(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_duplicate_user_item_pairs(cfg in any_preset()) {
        let ds = generate(&cfg);
        let mut seen = HashSet::new();
        for r in &ds.reviews {
            prop_assert!(seen.insert((r.user, r.item)), "duplicate pair {:?}/{:?}", r.user, r.item);
        }
    }

    #[test]
    fn timestamps_inside_horizon(cfg in any_preset()) {
        let ds = generate(&cfg);
        for r in &ds.reviews {
            prop_assert!(r.timestamp >= 0);
            // Campaign bursts may spill a few days past their start draw.
            prop_assert!(r.timestamp < cfg.horizon_days + 30, "timestamp {}", r.timestamp);
        }
    }

    #[test]
    fn stats_are_internally_consistent(cfg in any_preset()) {
        let ds = generate(&cfg);
        let s = dataset_stats(&ds);
        prop_assert_eq!(s.n_reviews, ds.len());
        prop_assert!(s.n_users <= ds.n_users);
        prop_assert!(s.median_user_degree <= s.max_user_degree);
        prop_assert!(s.median_item_degree <= s.max_item_degree);
        prop_assert!((0.0..=100.0).contains(&s.fake_pct));
        prop_assert!((1.0..=5.0).contains(&s.benign_mean_rating));
    }

    #[test]
    fn splits_cover_and_partition(cfg in any_preset(), split_seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let ds = generate(&cfg);
        prop_assume!(ds.len() >= 10);
        let split = train_test_split(&ds, 0.3, &mut StdRng::seed_from_u64(split_seed));
        prop_assert_eq!(split.train.len() + split.test.len(), ds.len());
        let train: HashSet<usize> = split.train.iter().copied().collect();
        prop_assert!(split.test.iter().all(|i| !train.contains(i)));
    }

    #[test]
    fn both_classes_present_at_reasonable_sizes(cfg in any_preset()) {
        let ds = generate(&cfg);
        prop_assume!(ds.len() >= 100);
        let fakes = ds.reviews.iter().filter(|r| r.label == Label::Fake).count();
        prop_assert!(fakes > 0, "no fakes generated");
        prop_assert!(fakes < ds.len(), "everything fake");
    }
}
