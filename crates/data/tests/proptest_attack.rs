//! Property-based tests of the attack-campaign generator: the determinism
//! and isolation invariants the robustness grid's byte-for-byte CI diff
//! rests on. A campaign must be a pure function of `(family, strength,
//! seed, base)` — bit-identical when regenerated in a fresh process — and
//! campaigns with different seeds must never mint colliding review uids.

use proptest::prelude::*;
use rrre_data::synth::{generate, AttackCampaign, AttackFamily, SynthConfig};
use rrre_data::Label;
use std::collections::HashSet;

fn any_family() -> impl Strategy<Value = AttackFamily> {
    (0usize..AttackFamily::ALL.len()).prop_map(|i| AttackFamily::ALL[i])
}

fn any_campaign() -> impl Strategy<Value = (AttackFamily, f64, u64)> {
    (any_family(), 0.05f64..0.6, 0u64..1_000_000)
}

fn small_base() -> rrre_data::Dataset {
    generate(&SynthConfig::yelp_chi().scaled(0.03))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ bit-identical poisoned corpus, including when the two
    /// copies are built from independently regenerated base datasets (the
    /// cross-process scenario: nothing is shared but the config).
    #[test]
    fn same_seed_is_bit_identical((family, strength, seed) in any_campaign()) {
        let campaign = AttackCampaign::new(family, strength, seed);
        let a = campaign.poison(&small_base());
        let b = campaign.poison(&small_base());
        prop_assert_eq!(a.dataset.reviews.len(), b.dataset.reviews.len());
        prop_assert_eq!(&a.dataset.reviews, &b.dataset.reviews);
        prop_assert_eq!(&a.injected, &b.injected);
        prop_assert_eq!(a.sybil_users.clone(), b.sybil_users.clone());
        // The streaming variant is deterministic too.
        let s1 = campaign.stream(50, 20, 30);
        let s2 = campaign.stream(50, 20, 30);
        prop_assert_eq!(s1, s2);
    }

    /// Disjoint seeds ⇒ disjoint fake-review uid spaces (and uids are
    /// unique within one campaign): two concurrently simulated campaigns
    /// can be merged without id collisions.
    #[test]
    fn disjoint_seeds_never_collide(
        (family, strength, seed_a) in any_campaign(),
        seed_offset in 1u64..1_000_000,
    ) {
        let seed_b = seed_a.wrapping_add(seed_offset);
        let base = small_base();
        let a = AttackCampaign::new(family, strength, seed_a).generate(&base);
        let b = AttackCampaign::new(family, strength, seed_b).generate(&base);
        let uids_a: HashSet<u64> = a.iter().map(|r| r.uid).collect();
        let uids_b: HashSet<u64> = b.iter().map(|r| r.uid).collect();
        prop_assert_eq!(uids_a.len(), a.len(), "uid collision within campaign a");
        prop_assert_eq!(uids_b.len(), b.len(), "uid collision within campaign b");
        prop_assert!(uids_a.is_disjoint(&uids_b), "uid collision across seeds");
    }

    /// Injection bookkeeping: every injected index is ground-truth fake,
    /// base review indices are stable, and the sybil user range sits
    /// entirely beyond the base user space.
    #[test]
    fn poison_appends_and_labels_consistently((family, strength, seed) in any_campaign()) {
        let base = small_base();
        let p = AttackCampaign::new(family, strength, seed).poison(&base);
        prop_assert_eq!(p.dataset.reviews.len(), base.len() + p.n_injected());
        for (i, r) in base.reviews.iter().enumerate() {
            prop_assert_eq!(r, &p.dataset.reviews[i], "base review {} moved", i);
        }
        for &i in &p.injected {
            prop_assert!(i >= base.len());
            prop_assert_eq!(p.dataset.reviews[i].label, Label::Fake);
            prop_assert!(p.dataset.reviews[i].user.index() >= base.n_users);
        }
        // The training view masks exactly the injected labels, nothing else.
        let view = p.training_view();
        for (i, r) in view.reviews.iter().enumerate() {
            let expect = if p.injected.contains(&i) { Label::Benign } else { p.dataset.reviews[i].label };
            prop_assert_eq!(r.label, expect);
        }
    }
}
