//! Shared fixture: a small trained model + artifact directory.

use rrre_core::{Rrre, RrreConfig};
use rrre_data::synth::{generate, SynthConfig};
use rrre_data::{CorpusConfig, Dataset, EncodedCorpus};
use rrre_text::word2vec::Word2VecConfig;
use std::path::PathBuf;

pub const MIN_COUNT: u64 = 2;

pub struct Fixture {
    pub dataset: Dataset,
    pub corpus: EncodedCorpus,
    pub model: Rrre,
}

pub fn trained_fixture() -> Fixture {
    let dataset = generate(&SynthConfig::yelp_chi().scaled(0.04));
    let corpus = EncodedCorpus::build(
        &dataset,
        &CorpusConfig {
            max_len: 12,
            min_count: MIN_COUNT,
            word2vec: Word2VecConfig { dim: 8, epochs: 1, ..Default::default() },
            ..Default::default()
        },
    );
    let train: Vec<usize> = (0..dataset.len()).collect();
    let model = Rrre::fit(&dataset, &corpus, &train, RrreConfig { epochs: 2, ..RrreConfig::tiny() });
    Fixture { dataset, corpus, model }
}

/// A per-test artifact directory under the system temp dir.
pub fn artifact_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rrre-serve-tests")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
