//! Connection-scale soak for the event-driven server core.
//!
//! Ramps to thousands of concurrent connections — a mix of fully idle
//! sockets, slow-loris writers parked mid-frame, and active requesters —
//! and asserts the properties a readiness-driven core must keep at scale:
//!
//! * **accept fairness**: a brand-new connection gets accepted and
//!   answered promptly while thousands of established sockets sit open;
//! * **no event-loop stalls**: a `Health` probe (answered inline on the
//!   loop thread, no worker hop) round-trips in well under 100 ms at every
//!   point of the ramp;
//! * **idle-timeout reaping**: once traffic stops, idle and loris sockets
//!   are closed by the timer wheel and the `open_conns` gauge collapses.
//!
//! The test is `#[ignore]`d: it needs thousands of file descriptors (two
//! per connection — both ends live in this process) and several seconds of
//! wall clock. `scripts/ci.sh` runs it with a raised `ulimit -n`; the
//! in-test guard skips gracefully when the soft limit is too small.
//! `RRRE_CONN_SCALE` overrides the target connection count.

#![cfg(target_os = "linux")]

use rrre_serve::server::{Server, ServerConfig};
use rrre_serve::{Engine, EngineConfig, ModelArtifact};
use rrre_testkit::{trained_fixture, TempDir};
use rrre_wire::{Request, Response};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE_TIMEOUT: Duration = Duration::from_secs(6);

/// Soft cap on open files, from `/proc/self/limits` (Linux-only, like the
/// epoll core under test).
fn max_open_files() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

fn target_conns() -> usize {
    std::env::var("RRRE_CONN_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(5000)
}

fn send_line(stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    let mut line = serde_json::to_string(req).expect("Request serialises");
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<Response> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    serde_json::from_str(line.trim())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .expect("connect must succeed under the connection cap");
    stream.set_nodelay(true).unwrap();
    stream
}

/// One request–response round trip on a fresh connection, returning the
/// elapsed time.
fn fresh_roundtrip(addr: SocketAddr, req: &Request) -> Duration {
    let started = Instant::now();
    let mut stream = connect(addr);
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    send_line(&mut stream, req).unwrap();
    let mut reader = BufReader::new(stream);
    let resp = read_response(&mut reader).expect("fresh connection must be answered");
    assert!(resp.ok, "fresh connection refused: {:?}", resp.error);
    started.elapsed()
}

#[test]
#[ignore = "needs thousands of fds and seconds of wall clock; run via scripts/ci.sh"]
fn five_thousand_connections_stay_fair_responsive_and_reapable() {
    let target = target_conns();
    // Two fds per connection (client + server end share this process),
    // plus generous slack for the fixture, probe and accept-fairness
    // churn.
    let needed = 2 * target as u64 + 512;
    match max_open_files() {
        Some(soft) if soft >= needed => {}
        Some(soft) => {
            eprintln!(
                "skipping: soft fd limit {soft} < {needed} needed for {target} connections \
                 (raise with `ulimit -n` or shrink with RRRE_CONN_SCALE)"
            );
            return;
        }
        None => {
            eprintln!("skipping: /proc/self/limits unreadable");
            return;
        }
    }

    let fx = trained_fixture();
    let dir = TempDir::new("conn-scale");
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Arc::new(Engine::new(
        artifact,
        EngineConfig { workers: 2, ..EngineConfig::default() },
    ));
    let mut server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: target + 64,
            idle_timeout: Some(IDLE_TIMEOUT),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // The stall probe: `Health` is intercepted inline on the event-loop
    // thread (no worker hop), so its round trip is a direct measurement of
    // loop responsiveness. It runs through the whole ramp; to stay alive
    // under the idle timeout it is, by construction, never idle.
    let probe_stop = Arc::new(AtomicBool::new(false));
    let probe = {
        let stop = Arc::clone(&probe_stop);
        std::thread::spawn(move || -> Duration {
            let mut stream = connect(addr);
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut worst = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                let started = Instant::now();
                send_line(&mut stream, &Request::health()).unwrap();
                read_response(&mut reader).expect("probe must always be answered");
                worst = worst.max(started.elapsed());
                std::thread::sleep(Duration::from_millis(10));
            }
            worst
        })
    };

    // The ramp: ~80% fully idle, ~10% slow loris (a partial frame, then
    // silence), ~10% active (one answered request, then idle). All of them
    // stay open — the point is the standing population.
    let mut idle = Vec::new();
    let mut loris = Vec::new();
    let mut active = Vec::new();
    let ramp_started = Instant::now();
    for i in 0..target {
        match i % 10 {
            0 => {
                let mut stream = connect(addr);
                // Half a frame: valid JSON prefix, no newline. The decoder
                // buffers it as a partial and the reaper must still claim
                // the socket later.
                stream.write_all(b"{\"op\":\"Pre").unwrap();
                loris.push(stream);
            }
            1 => {
                let mut stream = connect(addr);
                stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                send_line(&mut stream, &Request::predict(i as u32 % 2, i as u32 % 2)).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let resp = read_response(&mut reader).expect("active conn must be answered");
                assert!(resp.ok, "active request failed at conn {i}: {:?}", resp.error);
                active.push(stream);
            }
            _ => idle.push(connect(addr)),
        }
    }
    assert_eq!(idle.len() + loris.len() + active.len(), target);
    // The idle clock starts from each socket's last bytes, so a ramp
    // slower than the timeout would have early conns reaped mid-test —
    // that's an environment problem, not a server one.
    assert!(
        ramp_started.elapsed() < IDLE_TIMEOUT,
        "ramp to {target} conns took {:?} (≥ idle timeout {IDLE_TIMEOUT:?}); \
         rerun with a smaller RRRE_CONN_SCALE on this machine",
        ramp_started.elapsed()
    );
    // Refresh every standing socket's activity clock so the reap window
    // measured below starts *now*, not at each socket's connect time. A
    // blank line is a no-op frame (the server skips it); the loris conns
    // get one more mid-frame byte, staying parked on a partial.
    for stream in &mut idle {
        stream.write_all(b"\n").unwrap();
    }
    for stream in &mut loris {
        stream.write_all(b"d").unwrap();
    }
    for stream in &mut active {
        stream.write_all(b"\n").unwrap();
    }
    let refreshed_at = Instant::now();

    // Accept fairness: with `target` sockets established, a newcomer is
    // accepted and answered promptly. 25 fresh round trips, each bounded.
    for _ in 0..25 {
        let took = fresh_roundtrip(addr, &Request::predict(0, 0));
        assert!(
            took < Duration::from_secs(1),
            "fresh connection starved behind {target} standing conns: {took:?}"
        );
    }

    // The standing population really is standing: the server-side gauge
    // counts the ramp plus the probe (fresh conns above are closed; their
    // teardown may still be in flight, hence the small slack).
    let stats_resp = {
        let mut stream = connect(addr);
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        send_line(&mut stream, &Request::stats()).unwrap();
        read_response(&mut BufReader::new(stream)).unwrap()
    };
    let open = stats_resp.stats.as_ref().expect("Stats carries a snapshot").open_conns;
    assert!(
        open >= target as u64 && open <= target as u64 + 32,
        "open_conns gauge {open} does not reflect the ~{target} standing connections"
    );

    // Zero event-loop stalls: stop the probe and check its worst round
    // trip. 100 ms is the acceptance bound; an accept burst of `target`
    // connections plus epoll churn must not block the loop anywhere.
    probe_stop.store(true, Ordering::Relaxed);
    let worst = probe.join().unwrap();
    assert!(
        worst < Duration::from_millis(100),
        "event loop stalled: worst Health round trip {worst:?} ≥ 100ms"
    );

    // Reaping: all ramp sockets now go silent. Within the idle timeout
    // plus wheel-granularity slack, the server closes them — observed as
    // EOF on a sample of client ends and a collapsed gauge.
    let reap_deadline = refreshed_at + IDLE_TIMEOUT + Duration::from_secs(7);
    let mut sample: Vec<TcpStream> = Vec::new();
    sample.extend(idle.drain(..).take(20));
    sample.extend(loris.drain(..).take(20));
    sample.extend(active.drain(..).take(20));
    for (i, stream) in sample.iter_mut().enumerate() {
        let budget = reap_deadline.saturating_duration_since(Instant::now()).max(
            Duration::from_millis(1),
        );
        stream.set_read_timeout(Some(budget)).unwrap();
        let mut byte = [0u8; 16];
        match stream.read(&mut byte) {
            Ok(0) => {} // reaped: clean FIN
            Ok(n) => panic!("sampled conn {i} got {n} unexpected bytes instead of a reap"),
            Err(e) => panic!("sampled conn {i} was not reaped within the deadline: {e}"),
        }
    }
    // The gauge collapses to (roughly) just the Stats connection below;
    // stragglers within one wheel revolution are tolerated.
    let collapsed_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut stream = connect(addr);
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        send_line(&mut stream, &Request::stats()).unwrap();
        let resp = read_response(&mut BufReader::new(stream)).unwrap();
        let open = resp.stats.as_ref().unwrap().open_conns;
        if open <= 64 {
            break;
        }
        assert!(
            Instant::now() < collapsed_deadline,
            "idle reaping left {open} of ~{target} connections open"
        );
        std::thread::sleep(Duration::from_millis(200));
    }

    drop(idle);
    drop(loris);
    drop(active);
    server.stop();
    engine.shutdown();
}
