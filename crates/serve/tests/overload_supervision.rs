//! Overload shedding and worker supervision drills.
//!
//! The deterministic shed recipe: one worker, queue bound 1, a long panic
//! backoff, and the `Crash` drill verb. The crash puts the lone worker to
//! sleep for the backoff window; a barrier-released burst then contends for
//! the single queue slot, so exactly one request queues and the rest shed
//! with structured `overloaded` responses — no sleeps in the test itself.

use rrre_serve::{Engine, EngineConfig, ErrorKind, ModelArtifact, Op, Request};
use rrre_testkit::sync::run_concurrently;
use rrre_testkit::{trained_fixture, TempDir};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine_with(tag: &str, cfg: EngineConfig) -> (TempDir, Arc<Engine>) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    (dir, Arc::new(Engine::new(artifact, cfg)))
}

fn crash() -> Request {
    Request { op: Op::Crash, ..Request::stats() }
}

#[test]
fn full_queue_sheds_with_structured_overloaded_responses() {
    let (_dir, engine) = engine_with(
        "shed-burst",
        EngineConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_cap: 1,
            fault_injection: true,
            breaker_threshold: 1000, // never trips in this test
            panic_backoff: Duration::from_millis(500),
            ..EngineConfig::default()
        },
    );

    // The crash response comes back right before the worker starts its
    // backoff sleep — the burst below lands while the worker is down.
    let resp = engine.submit(crash());
    assert!(!resp.ok);
    assert_eq!(resp.kind, Some(ErrorKind::Internal));

    const BURST: usize = 32;
    let shared = Arc::clone(&engine);
    let outcomes = run_concurrently(BURST, move |_| {
        let resp = shared.submit(Request::predict(0, 0));
        (resp.ok, resp.kind)
    });

    let oks = outcomes.iter().filter(|(ok, _)| *ok).count();
    let sheds =
        outcomes.iter().filter(|(_, kind)| *kind == Some(ErrorKind::Overloaded)).count();
    assert_eq!(oks + sheds, BURST, "every response is served or structurally shed: {outcomes:?}");
    assert!(oks >= 1, "the one queued request must be served once the worker wakes");
    assert!(sheds >= 1, "a bound-1 queue under a {BURST}-client burst must shed");

    let stats = engine.stats();
    assert!(stats.shed >= sheds as u64);
    assert!(!stats.breaker_open);
    // Shed requests never entered the engine, so they are invisible to the
    // request/error counters: requests = crash + served predicts.
    assert_eq!(stats.requests, 1 + oks as u64);

    // The engine recovers: the next request is served normally.
    let resp = engine.submit(Request::predict(0, 0));
    assert!(resp.ok, "engine must serve again after the burst: {:?}", resp.error);
}

#[test]
fn repeated_panics_trip_the_circuit_breaker() {
    let (_dir, engine) = engine_with(
        "breaker-trip",
        EngineConfig {
            workers: 1,
            fault_injection: true,
            breaker_threshold: 3,
            breaker_window: Duration::from_secs(60),
            panic_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        },
    );

    for _ in 0..3 {
        let resp = engine.submit(crash());
        assert_eq!(resp.kind, Some(ErrorKind::Internal));
    }

    let resp = engine.submit(Request::predict(0, 0));
    assert!(!resp.ok);
    assert_eq!(resp.kind, Some(ErrorKind::Unavailable));
    assert!(
        resp.error.as_deref().unwrap_or("").contains("circuit breaker"),
        "refusal must say why: {:?}",
        resp.error
    );

    let stats = engine.stats();
    assert!(stats.breaker_open);
    assert!(stats.worker_panics >= 3);
    assert!(stats.shed >= 1, "breaker refusals count as shed load");
}

#[test]
fn breaker_closes_once_the_panic_window_slides_past() {
    let (_dir, engine) = engine_with(
        "breaker-heal",
        EngineConfig {
            workers: 1,
            fault_injection: true,
            breaker_threshold: 2,
            breaker_window: Duration::from_millis(100),
            panic_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        },
    );

    for _ in 0..2 {
        let resp = engine.submit(crash());
        assert_eq!(resp.kind, Some(ErrorKind::Internal));
    }
    let resp = engine.submit(Request::predict(0, 0));
    assert_eq!(resp.kind, Some(ErrorKind::Unavailable), "breaker must be open: {resp:?}");

    // The breaker closes by itself once the recorded panics age out.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = engine.submit(Request::predict(0, 0));
        if resp.ok {
            break;
        }
        assert_eq!(resp.kind, Some(ErrorKind::Unavailable));
        assert!(Instant::now() < deadline, "breaker failed to close within 10s");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!engine.stats().breaker_open);
}

#[test]
fn crash_verb_is_refused_unless_fault_injection_is_enabled() {
    let (_dir, engine) = engine_with("crash-gated", EngineConfig::default());
    let resp = engine.submit(crash());
    assert!(!resp.ok);
    assert_eq!(resp.kind, Some(ErrorKind::BadRequest));
    assert_eq!(engine.stats().worker_panics, 0, "a refused drill must not panic anything");
}

#[test]
fn worker_panic_still_answers_the_crashing_client() {
    let (_dir, engine) = engine_with(
        "panic-answer",
        EngineConfig {
            workers: 2,
            fault_injection: true,
            breaker_threshold: 1000,
            panic_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        },
    );
    let resp = engine.submit(crash().with_id(42));
    assert!(!resp.ok);
    assert_eq!(resp.id, Some(42), "the panicking request's own client gets the error");
    assert_eq!(resp.kind, Some(ErrorKind::Internal));

    // Both workers keep serving afterwards (supervision respawned nothing
    // visible to clients; the per-job guard contained the panic).
    let n_items = engine.generation().artifact.dataset.n_items as u32;
    for i in 0..8u32 {
        let resp = engine.submit(Request::predict(0, i % n_items));
        assert!(resp.ok, "post-panic request {i} failed: {:?}", resp.error);
    }
    assert_eq!(engine.stats().worker_panics, 1);
}
