//! Shard-scoped engine semantics: ownership enforcement, manifest v3
//! round-trips, catalog partitioning and the reload guard.

use rrre_serve::{Engine, EngineConfig, ModelArtifact};
use rrre_shard::ShardMap;
use rrre_testkit::{trained_fixture_with, FixtureSpec, TempDir};
use rrre_wire::{ErrorKind, Request, ShardSpec};
use std::sync::Arc;
use std::time::Duration;

fn saved_artifact(fx: &rrre_testkit::Fixture, dir: &TempDir, spec: ShardSpec) {
    ModelArtifact::save_with_shards(
        dir.path(),
        &fx.dataset,
        &fx.corpus,
        &fx.model,
        fx.min_count(),
        spec,
    )
    .unwrap();
}

fn shard_engine(dir: &TempDir, shard: u32) -> Engine {
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    Engine::new(
        artifact,
        EngineConfig {
            shard_id: Some(shard),
            workers: 1,
            max_wait: Duration::ZERO,
            ..EngineConfig::default()
        },
    )
}

/// Misrouted point lookups come back as a structured `WrongShard` naming
/// the owning shard and the map version — enough for a client to re-route
/// without a second round trip.
#[test]
fn wrong_shard_refusal_names_owner_and_map_version() {
    let fx = trained_fixture_with(FixtureSpec { scale: 0.2, ..FixtureSpec::micro() });
    let dir = TempDir::new("wrong-shard");
    let spec = ShardSpec::with_shards(3);
    saved_artifact(&fx, &dir, spec);
    let map = ShardMap::new(spec).unwrap();
    let n_items = fx.dataset.n_items as u32;

    // Find an item and a shard that does NOT own it.
    let item = 0u32;
    let owner = map.shard_of_item(item);
    let wrong = (owner + 1) % 3;
    let engine = shard_engine(&dir, wrong);

    let resp = engine.submit(Request::predict(0, item));
    assert!(!resp.ok, "unowned item must be refused");
    assert_eq!(resp.kind, Some(ErrorKind::WrongShard));
    assert_eq!(resp.shard, Some(owner), "refusal must name the owning shard");
    assert_eq!(resp.map_version, Some(spec.version as u64), "refusal must carry the map version");

    // The owner accepts the same request.
    let owner_engine = shard_engine(&dir, owner);
    let resp = owner_engine.submit(Request::predict(0, item));
    assert!(resp.ok, "owner must serve its own item: {:?}", resp.error);
    assert_eq!(resp.shard, Some(owner));

    // Rejections are counted per engine.
    assert_eq!(engine.stats().cross_shard_rejects, 1);
    assert_eq!(owner_engine.stats().cross_shard_rejects, 0);

    // Explain is gated by the same ownership rule.
    let resp = engine.submit(Request::explain(item, 2));
    assert_eq!(resp.kind, Some(ErrorKind::WrongShard));

    // Item-targeted invalidation too; user-only invalidation runs anywhere
    // (clients broadcast it).
    let resp = engine.submit(Request::invalidate(None, Some(item)));
    assert_eq!(resp.kind, Some(ErrorKind::WrongShard));
    let resp = engine.submit(Request::invalidate(Some(0), None));
    assert!(resp.ok, "user-only invalidation is shard-agnostic: {:?}", resp.error);

    let _ = n_items;
    engine.shutdown();
    owner_engine.shutdown();
}

/// The shard spec survives the manifest round trip bit for bit, and loads
/// reject a manifest whose spec is invalid.
#[test]
fn shard_spec_round_trips_through_manifest_bit_for_bit() {
    let fx = trained_fixture_with(FixtureSpec::micro());
    let dir = TempDir::new("manifest-spec");
    let spec = ShardSpec { version: 7, shards: 5, vnodes: 32, seed: 0xABCD_EF01_2345_6789 };
    saved_artifact(&fx, &dir, spec);

    let artifact = ModelArtifact::load(dir.path()).unwrap();
    assert_eq!(artifact.manifest.shard_spec, spec, "spec must round-trip exactly");

    // Same bytes in, same ring out: an engine anywhere rebuilds the exact map.
    let a = ShardMap::new(artifact.manifest.shard_spec).unwrap();
    let b = ShardMap::new(spec).unwrap();
    for item in 0..64u32 {
        assert_eq!(a.shard_of_item(item), b.shard_of_item(item));
    }

    // A manifest with a corrupted (zero-shard) spec must not load.
    let manifest_path = dir.path().join(rrre_serve::artifact::MANIFEST_FILE);
    let json = std::fs::read_to_string(&manifest_path).unwrap();
    let broken = json.replace("\"shards\": 5", "\"shards\": 0");
    assert_ne!(json, broken, "fixture must actually corrupt the spec");
    std::fs::write(&manifest_path, broken).unwrap();
    assert!(ModelArtifact::load(dir.path()).is_err(), "invalid shard spec must fail the load");
}

/// Each shard's Recommend scores a strict slice of the catalog, and the
/// slices tile it: disjoint, complete, nothing scored twice.
#[test]
fn scoped_recommends_partition_the_catalog() {
    let fx = trained_fixture_with(FixtureSpec { scale: 0.2, ..FixtureSpec::micro() });
    let dir = TempDir::new("catalog-slice");
    let spec = ShardSpec::with_shards(3);
    saved_artifact(&fx, &dir, spec);
    let n_items = fx.dataset.n_items;

    let mut seen = vec![0u32; n_items];
    for shard in 0..3 {
        let engine = shard_engine(&dir, shard);
        let resp = engine.submit(Request::recommend(0, n_items));
        assert!(resp.ok, "shard {shard} recommend refused: {:?}", resp.error);
        assert_eq!(resp.shard, Some(shard), "scoped answers are stamped with their shard");
        for row in resp.recommendations.unwrap() {
            seen[row.item as usize] += 1;
        }
        assert_eq!(engine.stats().scatter_fanout, 1, "scoped recommends count as fan-out legs");
        engine.shutdown();
    }
    assert!(
        seen.iter().all(|&n| n == 1),
        "shard slices must tile the catalog exactly once: {seen:?}"
    );
}

/// Hot reload rejects an artifact that would strand the engine (its shard
/// id out of the new map's range) and keeps serving the old generation.
#[test]
fn reload_guard_keeps_old_generation_on_bad_spec() {
    let fx = trained_fixture_with(FixtureSpec::micro());
    let dir = TempDir::new("reload-guard");
    saved_artifact(&fx, &dir, ShardSpec::with_shards(3));
    let engine = Arc::new(shard_engine(&dir, 2));

    let before = engine.submit(Request::predict(0, 0));

    // Re-save with a 2-shard map: shard 2 no longer exists.
    saved_artifact(&fx, &dir, ShardSpec::with_shards(2));
    let err = engine.reload().expect_err("reload must refuse a map that strands this engine");
    assert!(err.contains("shard"), "error should explain the shard mismatch: {err}");

    // The old generation is still serving, bit-identically.
    let after = engine.submit(Request::predict(0, 0));
    assert_eq!(before.ok, after.ok);
    if let (Some(a), Some(b)) = (&before.prediction, &after.prediction) {
        assert_eq!(a.rating.to_bits(), b.rating.to_bits());
    }
    assert_eq!(engine.stats().reload_failures, 1);

    // A valid 3-shard artifact reloads fine and bumps the generation.
    saved_artifact(&fx, &dir, ShardSpec::with_shards(3));
    let generation = engine.reload().expect("valid spec must reload");
    assert!(generation > 1);
    engine.shutdown();
}

/// Whole-model fallback: a one-shard map (or no `shard_id` at all) owns
/// everything — no refusals anywhere.
#[test]
fn single_shard_and_unscoped_engines_own_everything() {
    let fx = trained_fixture_with(FixtureSpec { scale: 0.2, ..FixtureSpec::micro() });
    let dir = TempDir::new("whole-model");
    saved_artifact(&fx, &dir, ShardSpec::with_shards(1));
    let n_items = fx.dataset.n_items as u32;

    for cfg in [
        EngineConfig { shard_id: Some(0), workers: 1, max_wait: Duration::ZERO, ..EngineConfig::default() },
        EngineConfig { shard_id: None, workers: 1, max_wait: Duration::ZERO, ..EngineConfig::default() },
    ] {
        let artifact = ModelArtifact::load(dir.path()).unwrap();
        let engine = Engine::new(artifact, cfg);
        for item in 0..n_items.min(8) {
            let resp = engine.submit(Request::predict(0, item));
            assert!(resp.ok, "whole-model engine must own item {item}: {:?}", resp.error);
        }
        assert_eq!(engine.stats().cross_shard_rejects, 0);
        engine.shutdown();
    }
}
