//! Hot-reload fault drills: every way the artifact on disk can be damaged
//! must make [`Engine::reload`] fail *closed* — the old generation keeps
//! serving bit-identical answers, the failure is visible in stats, and
//! clients hammering the engine while corrupted reloads are attempted see
//! zero failed requests.

use rrre_serve::artifact::{DATASET_FILE, MANIFEST_FILE, MODEL_FILE, VECTORS_FILE};
use rrre_serve::protocol::PredictionDto;
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Request};
use rrre_testkit::fault::{flip_byte, truncate_file};
use rrre_testkit::sync::run_concurrently;
use rrre_testkit::{trained_fixture, TempDir};
use std::sync::Arc;

fn served_artifact(tag: &str) -> (TempDir, Engine) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Engine::new(artifact, EngineConfig { workers: 2, ..EngineConfig::default() });
    (dir, engine)
}

/// A deterministic probe set: predictions for a small grid of pairs.
fn probe(engine: &Engine) -> Vec<(u32, u32, PredictionDto)> {
    let generation = engine.generation();
    let (n_users, n_items) =
        (generation.artifact.dataset.n_users, generation.artifact.dataset.n_items);
    drop(generation);
    let mut out = Vec::new();
    for u in 0..n_users.min(4) as u32 {
        for i in 0..n_items.min(4) as u32 {
            let resp = engine.submit(Request::predict(u, i));
            assert!(resp.ok, "probe predict failed: {:?}", resp.error);
            out.push((u, i, resp.prediction.expect("ok predict carries a prediction")));
        }
    }
    out
}

#[test]
fn every_corruption_fails_closed_and_restore_recovers() {
    let (dir, engine) = served_artifact("reload-fault");
    let baseline = probe(&engine);
    assert_eq!(engine.stats().generation, 1);

    // Payload files get truncated AND bit-flipped (the checksum layer must
    // catch both); the manifest gets truncated (a mid-write torn manifest).
    // A flipped manifest byte can land in an unvalidated field like the
    // dataset display name, so it is not a guaranteed-rejection drill.
    let mut expected_failures = 0u64;
    let corruptions: Vec<(&str, bool)> = vec![
        (DATASET_FILE, true),
        (VECTORS_FILE, true),
        (MODEL_FILE, true),
        (MANIFEST_FILE, false),
    ];
    for (file, also_flip) in corruptions {
        let path = dir.file(file);
        let pristine = std::fs::read(&path).unwrap();

        let mut drills: Vec<(&str, Box<dyn Fn()>)> = Vec::new();
        {
            let p = path.clone();
            let len = pristine.len() as u64;
            drills.push(("truncate", Box::new(move || truncate_file(&p, len / 3).unwrap())));
        }
        if also_flip {
            let p = path.clone();
            let mid = pristine.len() / 2;
            drills.push(("flip", Box::new(move || {
                flip_byte(&p, mid).unwrap();
            })));
        }

        for (what, corrupt) in drills {
            corrupt();
            let err = engine
                .reload()
                .expect_err(&format!("{what} of {file} must fail the reload"));
            assert!(
                err.contains("keeps serving"),
                "reload error must name the surviving generation: {err}"
            );
            expected_failures += 1;

            let stats = engine.stats();
            assert_eq!(stats.generation, 1, "generation must not advance on a failed reload");
            assert_eq!(stats.reload_failures, expected_failures);
            assert_eq!(
                probe(&engine),
                baseline,
                "old generation must serve bit-identical predictions after {what} of {file}"
            );
            std::fs::write(&path, &pristine).unwrap();
        }
    }

    // Pristine artifact again: the reload goes through and bumps the
    // generation, with fresh (cold) caches.
    let new_id = engine.reload().expect("reload of the restored artifact must succeed");
    assert_eq!(new_id, 2);
    let stats = engine.stats();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.reloads, expected_failures + 1);
    assert_eq!(stats.reload_failures, expected_failures);
    assert_eq!(probe(&engine), baseline, "reloaded weights are the same weights");
}

#[test]
fn reload_refuses_a_shard_map_version_rollback() {
    use rrre_wire::ShardSpec;
    let fx = trained_fixture();
    let dir = TempDir::new("reload-rollback");
    let spec_v5 = ShardSpec { version: 5, ..ShardSpec::with_shards(1) };
    ModelArtifact::save_with_shards(
        dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count(), spec_v5,
    )
    .unwrap();
    let engine = Engine::new(
        ModelArtifact::load(dir.path()).unwrap(),
        EngineConfig { workers: 2, ..EngineConfig::default() },
    );
    let baseline = probe(&engine);

    // A stale artifact restored over a newer one: identical weights, older
    // topology version. Every byte on disk validates — only the version
    // ordering is wrong — so this is exactly the rollback the guard exists
    // to catch.
    let spec_v4 = ShardSpec { version: 4, ..spec_v5 };
    ModelArtifact::save_with_shards(
        dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count(), spec_v4,
    )
    .unwrap();
    let err = engine.reload().expect_err("a version rollback must refuse to reload");
    assert!(
        err.contains("behind the serving version"),
        "the refusal must name the version ordering: {err}"
    );
    let stats = engine.stats();
    assert_eq!(stats.generation, 1, "generation must not advance on a refused rollback");
    assert_eq!(stats.reload_failures, 1);
    assert_eq!(probe(&engine), baseline, "the serving generation must be untouched");

    // Moving forward again reloads cleanly.
    let spec_v6 = ShardSpec { version: 6, ..spec_v5 };
    ModelArtifact::save_with_shards(
        dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count(), spec_v6,
    )
    .unwrap();
    assert_eq!(engine.reload().unwrap(), 2);
    assert_eq!(probe(&engine), baseline);
    engine.shutdown();
}

#[test]
fn reload_protocol_verb_swaps_and_reports_the_new_generation() {
    let (_dir, engine) = served_artifact("reload-verb");
    let resp = engine.submit(Request::reload().with_id(7));
    assert!(resp.ok, "Reload verb failed: {:?}", resp.error);
    assert_eq!(resp.id, Some(7));
    assert_eq!(resp.generation, Some(2));
    assert_eq!(engine.stats().generation, 2);
}

#[test]
fn concurrent_clients_see_zero_failures_during_corrupted_reloads() {
    let (dir, engine) = served_artifact("reload-storm");
    let engine = Arc::new(engine);
    let baseline = probe(&engine);

    let model_path = dir.file(MODEL_FILE);
    let pristine = std::fs::read(&model_path).unwrap();
    let len = std::fs::metadata(&model_path).unwrap().len();
    truncate_file(&model_path, len / 3).unwrap();

    // Thread 0 hammers reloads of the corrupted artifact; the rest serve
    // traffic. Not one client request may fail while reloads are failing.
    const CLIENTS: usize = 6;
    const REQUESTS: usize = 25;
    const RELOADS: usize = 5;
    let (n_users, n_items) = {
        let generation = engine.generation();
        (generation.artifact.dataset.n_users as u32, generation.artifact.dataset.n_items as u32)
    };
    let shared = Arc::clone(&engine);
    let failures = run_concurrently(CLIENTS + 1, move |idx| {
        if idx == 0 {
            let mut failed_reloads = 0usize;
            for _ in 0..RELOADS {
                if shared.reload().is_err() {
                    failed_reloads += 1;
                }
            }
            assert_eq!(failed_reloads, RELOADS, "corrupted artifact must never reload");
            0usize
        } else {
            (0..REQUESTS)
                .filter(|&r| {
                    let u = (idx - 1) as u32 % n_users;
                    let resp = shared.submit(Request::predict(u, r as u32 % n_items));
                    !resp.ok || resp.generation != Some(1)
                })
                .count()
        }
    });
    assert_eq!(
        failures.iter().sum::<usize>(),
        0,
        "every client request during corrupted reloads must succeed on generation 1"
    );

    let stats = engine.stats();
    assert_eq!(stats.reload_failures, RELOADS as u64);
    assert_eq!(stats.generation, 1);

    // Repair and verify a clean swap still works afterwards.
    std::fs::write(&model_path, &pristine).unwrap();
    assert_eq!(engine.reload().unwrap(), 2);
    assert_eq!(probe(&engine), baseline);
}
