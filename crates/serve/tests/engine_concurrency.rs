//! Engine semantics under concurrency: every response arrives, every
//! prediction matches the single-threaded reference exactly, the cache
//! counters reconcile, and a warm cache serves predictions without
//! re-running the towers.
//!
//! All fan-out goes through `rrre_testkit::sync::run_concurrently`, which
//! releases the worker threads from a barrier — contention is guaranteed by
//! construction, not by hoping the spawns overlap — and the deadline test
//! uses a by-definition-expired deadline instead of sleeping.

use rrre_data::{ItemId, UserId};
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Request};
use rrre_testkit::sync::{run_concurrently, EXPIRED_DEADLINE_MS};
use rrre_testkit::{trained_fixture, Fixture, TempDir};
use std::sync::Arc;
use std::time::Duration;

fn engine_over_fixture(tag: &str) -> (Engine, Fixture) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Engine::new(
        artifact,
        EngineConfig {
            workers: 4,
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            cache_shards: 4,
            ..EngineConfig::default()
        },
    );
    (engine, fx)
}

#[test]
fn concurrent_predicts_match_reference_and_counters_reconcile() {
    let (engine, fx) = engine_over_fixture("concurrency");
    let engine = Arc::new(engine);
    let n_users = fx.dataset.n_users as u32;
    let n_items = fx.dataset.n_items as u32;

    const THREADS: usize = 8;
    const REQUESTS: u32 = 40;

    let per_thread = {
        let engine = Arc::clone(&engine);
        run_concurrently(THREADS, move |t| {
            let t = t as u32;
            let mut out = Vec::new();
            for r in 0..REQUESTS {
                // Deterministic pair mix with deliberate cross-thread
                // collisions so the cache sees hits *and* misses.
                let user = (t * 7 + r) % n_users;
                let item = (t + r * 3) % n_items;
                let resp = engine.submit(Request::predict(user, item).with_id(u64::from(r)));
                assert!(resp.ok, "predict failed: {:?}", resp.error);
                assert_eq!(resp.id, Some(u64::from(r)), "response id mismatch");
                out.push((user, item, resp.prediction.expect("missing payload")));
            }
            out
        })
    };

    let mut total = 0u64;
    for out in per_thread {
        for (user, item, dto) in out {
            total += 1;
            let reference = fx.model.predict(&fx.corpus, UserId(user), ItemId(item));
            assert_eq!(dto.rating, reference.rating, "rating diverged for ({user}, {item})");
            assert_eq!(
                dto.reliability, reference.reliability,
                "reliability diverged for ({user}, {item})"
            );
        }
    }
    assert_eq!(total, THREADS as u64 * u64::from(REQUESTS), "lost responses");

    let stats = engine.stats();
    assert_eq!(stats.requests, total);
    assert_eq!(stats.errors, 0);
    // Each predict performs exactly one lookup per cache.
    assert_eq!(stats.user_cache_hits + stats.user_cache_misses, total);
    assert_eq!(stats.item_cache_hits + stats.item_cache_misses, total);
    // Towers run exactly once per cache miss, never more (the shard lock
    // serialises concurrent misses on the same pair).
    assert_eq!(stats.tower_evals, stats.user_cache_misses + stats.item_cache_misses);
    assert!(stats.cache_hit_rate > 0.0, "collision-heavy mix must produce hits");
    assert!(stats.batches > 0);
    assert!(stats.mean_batch >= 1.0);
}

#[test]
fn warm_cache_serves_without_tower_reruns() {
    let (engine, _fx) = engine_over_fixture("warm");

    let cold = engine.submit(Request::predict(1, 1));
    assert!(cold.ok);
    let after_cold = engine.stats();
    assert_eq!(after_cold.tower_evals, 2, "cold predict = one user + one item tower");

    for _ in 0..10 {
        let warm = engine.submit(Request::predict(1, 1));
        assert!(warm.ok);
        assert_eq!(warm.prediction, cold.prediction, "warm path changed the answer");
    }
    let after_warm = engine.stats();
    assert_eq!(
        after_warm.tower_evals, after_cold.tower_evals,
        "warm predictions must not re-run the towers"
    );
    assert_eq!(after_warm.user_cache_hits, 10);
    assert_eq!(after_warm.item_cache_hits, 10);
}

#[test]
fn invalidation_recomputes_only_the_invalidated_axis() {
    let (engine, _fx) = engine_over_fixture("invalidate");

    let first = engine.submit(Request::predict(0, 1));
    assert!(first.ok);
    assert_eq!(engine.stats().tower_evals, 2);

    let inv = engine.submit(Request::invalidate(Some(0), None));
    assert!(inv.ok);
    assert_eq!(inv.evicted, Some(1), "exactly the user-tower entry is dropped");

    let again = engine.submit(Request::predict(0, 1));
    assert!(again.ok);
    assert_eq!(again.prediction, first.prediction, "weights unchanged ⇒ same answer");
    // User tower recomputed, item tower still cached.
    assert_eq!(engine.stats().tower_evals, 3);
}

#[test]
fn errors_are_responses_not_hangs() {
    let (engine, fx) = engine_over_fixture("errors");

    let resp = engine.submit(Request::predict(u32::MAX, 0));
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("out of range"));

    let resp = engine.submit(Request::recommend(0, 0));
    assert!(!resp.ok, "k = 0 must be rejected");

    let resp = engine.submit(Request { user: None, ..Request::predict(0, 0) });
    assert!(!resp.ok, "missing user must be rejected");

    let stats = engine.stats();
    assert_eq!(stats.errors, 3);
    // Errors never touch the caches.
    assert_eq!(stats.user_cache_hits + stats.user_cache_misses, 0);

    // A valid request still works afterwards.
    let ok = engine.submit(Request::predict(0, (fx.dataset.n_items - 1) as u32));
    assert!(ok.ok);
}

#[test]
fn expired_deadline_is_rejected_not_served() {
    let (engine, _fx) = engine_over_fixture("deadline");
    // A zero deadline has expired the instant the job is enqueued — the
    // engine's `elapsed >= deadline` check refuses it deterministically,
    // with no race against worker pickup speed.
    let resp = engine.submit(Request { deadline_ms: Some(EXPIRED_DEADLINE_MS), ..Request::predict(0, 0) });
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("deadline"));
    assert_eq!(engine.stats().deadline_misses, 1);
}

#[test]
fn concurrent_invalidation_never_corrupts_answers() {
    let (engine, fx) = engine_over_fixture("race-invalidate");
    let engine = Arc::new(engine);
    let reference = fx.model.predict(&fx.corpus, UserId(0), ItemId(0));

    // Half the threads hammer predict(0,0), half invalidate the pair;
    // whatever the interleaving, every served answer must equal the
    // single-threaded reference (weights never change).
    let results = {
        let engine = Arc::clone(&engine);
        run_concurrently(8, move |idx| {
            for _ in 0..20 {
                if idx % 2 == 0 {
                    let resp = engine.submit(Request::predict(0, 0));
                    assert!(resp.ok, "predict failed: {:?}", resp.error);
                    let dto = resp.prediction.unwrap();
                    assert_eq!((dto.rating, dto.reliability), (reference.rating, reference.reliability));
                } else {
                    assert!(engine.submit(Request::invalidate(Some(0), Some(0))).ok);
                }
            }
        })
    };
    assert_eq!(results.len(), 8);
    assert_eq!(engine.stats().errors, 0);
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let (engine, _fx) = engine_over_fixture("shutdown");
    assert!(engine.submit(Request::stats()).ok);
    engine.shutdown();
    engine.shutdown();
    let resp = engine.submit(Request::predict(0, 0));
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("shut down"));
}
