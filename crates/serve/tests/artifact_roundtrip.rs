//! Artifact save → load must reproduce the trained model bit-for-bit, and
//! every kind of on-disk damage must be rejected at load time.

mod common;

use common::{artifact_dir, trained_fixture, MIN_COUNT};
use rrre_data::{ItemId, UserId};
use rrre_serve::artifact::{DATASET_FILE, MANIFEST_FILE, MODEL_FILE, VECTORS_FILE};
use rrre_serve::ModelArtifact;

#[test]
fn roundtrip_is_bit_identical_and_manifest_is_faithful() {
    let fx = trained_fixture();
    let dir = artifact_dir("roundtrip");
    ModelArtifact::save(&dir, &fx.dataset, &fx.corpus, &fx.model, MIN_COUNT).unwrap();

    let art = ModelArtifact::load(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(art.manifest.dataset_name, fx.dataset.name);
    assert_eq!(art.manifest.n_users, fx.dataset.n_users);
    assert_eq!(art.manifest.n_items, fx.dataset.n_items);
    assert_eq!(art.manifest.n_reviews, fx.dataset.len());
    assert_eq!(art.manifest.vocab_len, fx.corpus.word_vectors.len());
    assert_eq!(art.manifest.embed_dim, fx.corpus.embed_dim());
    assert!(art.model.has_frozen_cache());

    // The rebuilt corpus is the one the model was trained on.
    assert_eq!(art.corpus.docs.len(), fx.corpus.docs.len());
    assert_eq!(art.corpus.word_vectors.as_flat(), fx.corpus.word_vectors.as_flat());

    for u in 0..fx.dataset.n_users {
        for i in 0..fx.dataset.n_items {
            let (user, item) = (UserId(u as u32), ItemId(i as u32));
            assert_eq!(
                art.model.predict(&art.corpus, user, item),
                fx.model.predict(&fx.corpus, user, item),
                "prediction diverged for pair ({u}, {i})"
            );
        }
    }
}

#[test]
fn missing_directory_fails() {
    assert!(ModelArtifact::load(artifact_dir("never-written")).is_err());
}

#[test]
fn wrong_manifest_version_fails() {
    let fx = trained_fixture();
    let dir = artifact_dir("bad-version");
    ModelArtifact::save(&dir, &fx.dataset, &fx.corpus, &fx.model, MIN_COUNT).unwrap();

    let manifest_path = dir.join(MANIFEST_FILE);
    let json = std::fs::read_to_string(&manifest_path).unwrap();
    std::fs::write(&manifest_path, json.replacen("\"version\": 1", "\"version\": 999", 1)).unwrap();

    let err = ModelArtifact::load(&dir).err().expect("version 999 must be rejected");
    std::fs::remove_dir_all(&dir).ok();
    assert!(err.to_string().contains("version"), "unexpected error: {err}");
}

#[test]
fn manifest_dataset_disagreement_fails() {
    let fx = trained_fixture();
    let dir = artifact_dir("bad-counts");
    ModelArtifact::save(&dir, &fx.dataset, &fx.corpus, &fx.model, MIN_COUNT).unwrap();

    let manifest_path = dir.join(MANIFEST_FILE);
    let json = std::fs::read_to_string(&manifest_path).unwrap();
    let needle = format!("\"n_users\": {}", fx.dataset.n_users);
    assert!(json.contains(&needle), "manifest format changed: {json}");
    std::fs::write(&manifest_path, json.replacen(&needle, "\"n_users\": 12345", 1)).unwrap();

    let err = ModelArtifact::load(&dir).err().expect("count mismatch must be rejected");
    std::fs::remove_dir_all(&dir).ok();
    assert!(err.to_string().contains("disagrees"), "unexpected error: {err}");
}

#[test]
fn truncated_weights_fail() {
    let fx = trained_fixture();
    let dir = artifact_dir("truncated-weights");
    ModelArtifact::save(&dir, &fx.dataset, &fx.corpus, &fx.model, MIN_COUNT).unwrap();

    let model_path = dir.join(MODEL_FILE);
    let bytes = std::fs::read(&model_path).unwrap();
    std::fs::write(&model_path, &bytes[..bytes.len() / 3]).unwrap();

    assert!(ModelArtifact::load(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_vectors_fail() {
    let fx = trained_fixture();
    let dir = artifact_dir("bad-vectors");
    ModelArtifact::save(&dir, &fx.dataset, &fx.corpus, &fx.model, MIN_COUNT).unwrap();

    // Garbage that is not an RRRP file at all.
    std::fs::write(dir.join(VECTORS_FILE), b"not a checkpoint").unwrap();

    assert!(ModelArtifact::load(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampered_dataset_fails_validation() {
    let fx = trained_fixture();
    let dir = artifact_dir("tampered-dataset");
    ModelArtifact::save(&dir, &fx.dataset, &fx.corpus, &fx.model, MIN_COUNT).unwrap();

    // Swap in a dataset with different review text: the rebuilt vocabulary
    // no longer matches the stored vector table.
    let mut other = fx.dataset.clone();
    for r in &mut other.reviews {
        r.text = "entirely different words everywhere".into();
    }
    rrre_data::io::save_json(&other, dir.join(DATASET_FILE)).unwrap();

    let err = ModelArtifact::load(&dir).err().expect("vocab mismatch must be rejected");
    std::fs::remove_dir_all(&dir).ok();
    assert!(err.to_string().contains("vocabulary"), "unexpected error: {err}");
}
