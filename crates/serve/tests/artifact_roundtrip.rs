//! Artifact save → load must reproduce the trained model bit-for-bit, and
//! every kind of on-disk damage must be rejected at load time.

use rrre_data::{ItemId, UserId};
use rrre_serve::artifact::{
    file_digest, DATASET_FILE, MANIFEST_FILE, MANIFEST_VERSION, MODEL_FILE, VECTORS_FILE,
};
use rrre_serve::ModelArtifact;
use rrre_testkit::fault::{flip_byte, truncate_file};
use rrre_testkit::{trained_fixture, Fixture, TempDir};

fn saved_fixture(tag: &str) -> (Fixture, TempDir) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    (fx, dir)
}

#[test]
fn roundtrip_is_bit_identical_and_manifest_is_faithful() {
    let (fx, dir) = saved_fixture("roundtrip");
    let art = ModelArtifact::load(dir.path()).unwrap();

    assert_eq!(art.manifest.dataset_name, fx.dataset.name);
    assert_eq!(art.manifest.n_users, fx.dataset.n_users);
    assert_eq!(art.manifest.n_items, fx.dataset.n_items);
    assert_eq!(art.manifest.n_reviews, fx.dataset.len());
    assert_eq!(art.manifest.vocab_len, fx.corpus.word_vectors.len());
    assert_eq!(art.manifest.embed_dim, fx.corpus.embed_dim());
    assert!(art.model.has_frozen_cache());

    // The rebuilt corpus is the one the model was trained on.
    assert_eq!(art.corpus.docs.len(), fx.corpus.docs.len());
    assert_eq!(art.corpus.word_vectors.as_flat(), fx.corpus.word_vectors.as_flat());

    for u in 0..fx.dataset.n_users {
        for i in 0..fx.dataset.n_items {
            let (user, item) = (UserId(u as u32), ItemId(i as u32));
            assert_eq!(
                art.model.predict(&art.corpus, user, item),
                fx.model.predict(&fx.corpus, user, item),
                "prediction diverged for pair ({u}, {i})"
            );
        }
    }
}

#[test]
fn missing_directory_fails() {
    let dir = TempDir::new("never-written");
    assert!(ModelArtifact::load(dir.file("absent")).is_err());
}

#[test]
fn wrong_manifest_version_fails() {
    let (_fx, dir) = saved_fixture("bad-version");

    let manifest_path = dir.file(MANIFEST_FILE);
    let json = std::fs::read_to_string(&manifest_path).unwrap();
    let needle = format!("\"version\": {MANIFEST_VERSION}");
    assert!(json.contains(&needle), "manifest format changed: {json}");
    std::fs::write(&manifest_path, json.replacen(&needle, "\"version\": 999", 1)).unwrap();

    let err = ModelArtifact::load(dir.path()).err().expect("version 999 must be rejected");
    assert!(err.to_string().contains("version"), "unexpected error: {err}");
}

#[test]
fn manifest_dataset_disagreement_fails() {
    let (fx, dir) = saved_fixture("bad-counts");

    let manifest_path = dir.file(MANIFEST_FILE);
    let json = std::fs::read_to_string(&manifest_path).unwrap();
    let needle = format!("\"n_users\": {}", fx.dataset.n_users);
    assert!(json.contains(&needle), "manifest format changed: {json}");
    std::fs::write(&manifest_path, json.replacen(&needle, "\"n_users\": 12345", 1)).unwrap();

    let err = ModelArtifact::load(dir.path()).err().expect("count mismatch must be rejected");
    assert!(err.to_string().contains("disagrees"), "unexpected error: {err}");
}

#[test]
fn truncated_weights_fail() {
    let (_fx, dir) = saved_fixture("truncated-weights");
    let model_path = dir.file(MODEL_FILE);
    let len = std::fs::metadata(&model_path).unwrap().len();
    truncate_file(&model_path, len / 3).unwrap();
    assert!(ModelArtifact::load(dir.path()).is_err());
}

#[test]
fn flipped_weight_bytes_fail_or_change_nothing_silently_never() {
    let (fx, dir) = saved_fixture("flipped-weights");
    // Flip a byte in the middle of the tensor payload (past any header).
    let model_path = dir.file(MODEL_FILE);
    let len = std::fs::metadata(&model_path).unwrap().len() as usize;
    flip_byte(&model_path, len / 2).unwrap();

    // Either the load rejects the damage outright, or the file still parses
    // — but then the damage landed in a weight and the model must disagree
    // with the original somewhere. What must never happen is a clean load
    // that serves the original predictions from corrupted bytes.
    if let Ok(art) = ModelArtifact::load(dir.path()) {
        let diverged = (0..fx.dataset.n_users).any(|u| {
            (0..fx.dataset.n_items).any(|i| {
                let (user, item) = (UserId(u as u32), ItemId(i as u32));
                art.model.predict(&art.corpus, user, item) != fx.model.predict(&fx.corpus, user, item)
            })
        });
        assert!(diverged, "a flipped payload byte loaded cleanly AND predicted identically");
    }
}

#[test]
fn corrupted_vectors_fail() {
    let (_fx, dir) = saved_fixture("bad-vectors");

    // Garbage that is not an RRRP file at all.
    std::fs::write(dir.file(VECTORS_FILE), b"not a checkpoint").unwrap();

    assert!(ModelArtifact::load(dir.path()).is_err());
}

#[test]
fn tampered_dataset_fails_validation() {
    let (fx, dir) = saved_fixture("tampered-dataset");

    // Swap in a dataset with different review text. The checksum layer
    // sees the swap first — the file no longer hashes to what the manifest
    // recorded at save time.
    let original = std::fs::read(dir.file(DATASET_FILE)).unwrap();
    let mut other = fx.dataset.clone();
    for r in &mut other.reviews {
        r.text = "entirely different words everywhere".into();
    }
    rrre_data::io::save_json(&other, dir.file(DATASET_FILE)).unwrap();

    let err = ModelArtifact::load(dir.path()).err().expect("tampered dataset must be rejected");
    assert!(err.to_string().contains("checksum"), "unexpected error: {err}");

    // Re-hash the tampered file into the manifest (an attacker who can edit
    // both files, or an honest re-export of a different dataset): the deeper
    // semantic check still refuses, because the rebuilt vocabulary no longer
    // matches the stored vector table.
    let tampered = std::fs::read(dir.file(DATASET_FILE)).unwrap();
    let manifest_path = dir.file(MANIFEST_FILE);
    let json = std::fs::read_to_string(&manifest_path).unwrap();
    let patched = json.replacen(&file_digest(&original), &file_digest(&tampered), 1);
    assert_ne!(patched, json, "manifest did not record the original dataset digest");
    std::fs::write(&manifest_path, patched).unwrap();

    let err = ModelArtifact::load(dir.path()).err().expect("vocab mismatch must be rejected");
    assert!(err.to_string().contains("vocabulary"), "unexpected error: {err}");
}
