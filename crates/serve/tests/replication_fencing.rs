//! Epoch fencing on the replication *catch-up* path, and replication-log
//! hygiene across compaction.
//!
//! The push path (`Replicate`) was fenced from the start; these drills pin
//! the pull path (`FetchWal`) to the same contract:
//!
//! * a requester carrying a **stale** term is refused `StaleEpoch` and
//!   learns the current term from the response;
//! * a requester carrying a **higher** term proves the serving replica was
//!   fenced — it must refuse (its log may hold records the new term never
//!   committed), adopt the higher term, and depose any local leadership,
//!   so a follower whose `leader_hint` still names a partitioned old
//!   leader can never pull that leader's uncommitted records;
//! * compaction drains the folded prefix out of the in-memory replication
//!   log and advances its base (bounded memory), while absolute positions
//!   — and therefore follower ack watermarks — stay intact.

use rrre_serve::{
    AckLevel, Engine, EngineConfig, ErrorKind, IngestConfig, ModelArtifact, ReplRole,
    ReplicationConfig, Request,
};
use rrre_testkit::{trained_fixture, TempDir};
use std::path::Path;

fn saved_fixture(tag: &str) -> TempDir {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    dir
}

/// A standalone leader at `epoch` with no followers: quorum of one, so
/// every ingest acks immediately and the drills stay single-process.
fn open_leader(dir: &Path, epoch: u64) -> Engine {
    Engine::open_replicated(
        dir,
        EngineConfig { workers: 2, ..EngineConfig::default() },
        IngestConfig::default(),
        ReplicationConfig {
            role: ReplRole::Leader { followers: vec![], epoch },
            ack: AckLevel::Quorum,
            ..ReplicationConfig::default()
        },
    )
    .expect("replicated open must succeed on an undamaged directory")
}

fn ingest(engine: &Engine, seq: u64) {
    let resp =
        engine.submit(Request::ingest_review(seq, 0, 0, 4.0, format!("review {seq}"), seq as i64));
    assert!(resp.ok, "ingest of seq {seq} refused: {:?}", resp.error);
}

#[test]
fn fetch_wal_refuses_a_stale_requester_with_the_current_term() {
    let dir = saved_fixture("fetchwal-stale-req");
    let engine = open_leader(dir.path(), 3);
    ingest(&engine, 1);

    let resp = engine.submit(Request::fetch_wal(1, 0, 16));
    assert!(!resp.ok);
    assert_eq!(resp.kind, Some(ErrorKind::StaleEpoch));
    // The refusal teaches the stale follower the term to adopt and retry.
    assert_eq!(resp.epoch, Some(3));

    // At the current term the same range serves.
    let resp = engine.submit(Request::fetch_wal(3, 0, 16));
    assert!(resp.ok, "current-term fetch refused: {:?}", resp.error);
    assert_eq!(resp.records.as_ref().map(Vec::len), Some(1));
}

#[test]
fn fetch_wal_from_a_fenced_replica_refuses_and_self_deposes() {
    let dir = saved_fixture("fetchwal-fenced-server");
    let engine = open_leader(dir.path(), 1);
    ingest(&engine, 1);

    // A follower of term 5 (a new leader this deposed one never heard of)
    // pulls catch-up from the old leader. The old leader's log may hold
    // records term 5 never committed — it must refuse, not serve.
    let resp = engine.submit(Request::fetch_wal(5, 0, 16));
    assert!(!resp.ok, "a fenced replica must not serve its log");
    assert_eq!(resp.kind, Some(ErrorKind::StaleEpoch));
    assert!(resp.records.is_none(), "no records may leak past the fence");
    // The response names the term the refusing log was last written under
    // (ours, the lower one) — nothing here is worth adopting.
    assert_eq!(resp.epoch, Some(1));

    // Learning of the higher term fenced us: leadership is gone and the
    // term is persisted, so ingest now redirects instead of acking writes
    // the new term's quorum would never see.
    let repl = engine.replication().expect("replicated engine has replication state");
    assert_eq!(repl.current_epoch(), 5);
    assert!(!repl.is_leader());
    let resp = engine.submit(Request::ingest_review(2, 0, 0, 4.0, "fenced", 2));
    assert!(!resp.ok);
    assert_eq!(resp.kind, Some(ErrorKind::NotLeader));

    // The adopted term survives a restart (it was persisted before the
    // refusal went out).
    drop(engine);
    let reopened = open_leader(dir.path(), 1);
    assert_eq!(
        reopened.replication().unwrap().current_epoch(),
        5,
        "a fenced replica must not resurrect its old term on reopen"
    );
}

#[test]
fn compaction_trims_the_replication_log_and_keeps_positions_absolute() {
    let dir = saved_fixture("compact-trims-log");
    let engine = open_leader(dir.path(), 1);
    for seq in 1..=4 {
        ingest(&engine, seq);
    }
    assert_eq!(engine.stats().replicated_seq, 4);

    let (folded, _) = engine.compact_now().expect("compaction must succeed");
    assert_eq!(folded, 4);
    // The watermark is an absolute position: folding must not rewind it.
    assert_eq!(engine.stats().replicated_seq, 4);

    // Folded positions left the in-memory log: fetching below the new base
    // is a structured refusal (that follower needs an artifact resync)...
    let resp = engine.submit(Request::fetch_wal(1, 0, 16));
    assert!(!resp.ok);
    assert_eq!(resp.kind, Some(ErrorKind::BadRequest));
    assert!(
        resp.error.as_deref().unwrap_or_default().contains("resync"),
        "refusal should point at a resync: {:?}",
        resp.error
    );

    // ...while the live tail still serves: a new record lands at the next
    // absolute position and is fetchable from there.
    ingest(&engine, 5);
    let resp = engine.submit(Request::fetch_wal(1, 4, 16));
    assert!(resp.ok, "post-compaction tail fetch refused: {:?}", resp.error);
    let records = resp.records.expect("tail fetch returns records");
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].seq, 5);
    assert_eq!(resp.replicated, Some(5));

    // Repeated compactions keep draining (bounded memory, not one-shot).
    let (folded, _) = engine.compact_now().expect("second compaction must succeed");
    assert_eq!(folded, 1);
    let resp = engine.submit(Request::fetch_wal(1, 4, 16));
    assert!(!resp.ok, "position 4 was folded by the second compaction");
    assert_eq!(resp.kind, Some(ErrorKind::BadRequest));
}

#[test]
fn fetch_wal_without_an_epoch_still_serves_for_compatibility() {
    // Requests from peers that predate the fence carry no epoch; they are
    // served (the push path still fences them the moment they apply).
    let dir = saved_fixture("fetchwal-epochless");
    let engine = open_leader(dir.path(), 2);
    ingest(&engine, 1);
    let req = Request { epoch: None, ..Request::fetch_wal(2, 0, 16) };
    let resp = engine.submit(req);
    assert!(resp.ok, "epochless fetch refused: {:?}", resp.error);
    assert_eq!(resp.records.map(|r| r.len()), Some(1));
}
