//! End-to-end acceptance: train a tiny model → write an artifact → load it
//! into an engine → serve it over TCP → drive concurrent clients through
//! the wire protocol → every answer matches direct `rrre_core` calls, and
//! the cache counters prove warm predictions skip the towers.

use rrre_data::{ItemId, UserId};
use rrre_serve::protocol::Response;
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Server};
use rrre_testkit::{trained_fixture, TempDir};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.ends_with('\n'), "responses are newline-terminated");
    serde_json::from_str(&reply).expect("response must be valid JSON")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn full_pipeline_train_checkpoint_serve_query() {
    // Train → artifact on disk → fresh process-equivalent load.
    let fx = trained_fixture();
    let dir = TempDir::new("e2e");
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    drop(dir);

    let engine = Arc::new(Engine::new(
        artifact,
        EngineConfig {
            workers: 3,
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            cache_shards: 8,
            ..EngineConfig::default()
        },
    ));
    let mut server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // --- Concurrent clients over real sockets -------------------------------
    let n_users = fx.dataset.n_users as u32;
    let n_items = fx.dataset.n_items as u32;
    let clients: Vec<_> = (0..4u32)
        .map(|c| {
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let mut out = Vec::new();
                for r in 0..20u32 {
                    let user = (c * 5 + r) % n_users;
                    let item = (c + r * 2) % n_items;
                    let resp = roundtrip(
                        &mut stream,
                        &mut reader,
                        &format!(r#"{{"op":"Predict","user":{user},"item":{item},"id":{r}}}"#),
                    );
                    assert!(resp.ok, "predict failed: {:?}", resp.error);
                    assert_eq!(resp.id, Some(u64::from(r)), "pipelined replies arrive in order");
                    out.push((user, item, resp.prediction.unwrap()));
                }
                out
            })
        })
        .collect();

    for client in clients {
        for (user, item, dto) in client.join().expect("client thread panicked") {
            let reference = fx.model.predict(&fx.corpus, UserId(user), ItemId(item));
            assert_eq!(dto.rating, reference.rating, "wire rating diverged for ({user}, {item})");
            assert_eq!(dto.reliability, reference.reliability);
        }
    }

    let (mut stream, mut reader) = connect(addr);

    // --- Recommend and explain match rrre_core exactly ----------------------
    let resp = roundtrip(&mut stream, &mut reader, r#"{"op":"Recommend","user":0,"k":3}"#);
    assert!(resp.ok);
    let wire_recs = resp.recommendations.unwrap();
    let direct = rrre_core::recommend(&fx.model, &fx.dataset, &fx.corpus, UserId(0), 3);
    assert_eq!(wire_recs.len(), direct.len());
    for (w, d) in wire_recs.iter().zip(&direct) {
        assert_eq!(w.item, d.item.0);
        assert_eq!(w.item_name, d.item_name);
        assert_eq!(w.rating, d.rating);
        assert_eq!(w.reliability, d.reliability);
    }

    let resp = roundtrip(&mut stream, &mut reader, r#"{"op":"Explain","item":0,"k":2}"#);
    assert!(resp.ok);
    let wire_ex = resp.explanations.unwrap();
    let direct = rrre_core::explain(&fx.model, &fx.dataset, &fx.corpus, ItemId(0), 2);
    assert_eq!(wire_ex.len(), direct.len());
    for (w, d) in wire_ex.iter().zip(&direct) {
        assert_eq!(w.review_idx, d.review_idx);
        assert_eq!(w.text, d.text);
        assert_eq!(w.rating, d.rating);
        assert_eq!(w.reliability, d.reliability);
        assert_eq!(w.filtered, d.filtered);
    }

    // --- Warm-cache proof over the wire -------------------------------------
    let before: Response = roundtrip(&mut stream, &mut reader, r#"{"op":"Stats"}"#);
    let before = before.stats.unwrap();
    for _ in 0..5 {
        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"Predict","user":0,"item":0}"#);
        assert!(r.ok);
    }
    let after: Response = roundtrip(&mut stream, &mut reader, r#"{"op":"Stats"}"#);
    let after = after.stats.unwrap();
    // Pair (0,0) was warmed by the recommend sweep above: five repeats add
    // zero tower evaluations — the review encoder and towers never run on
    // the warm path.
    assert_eq!(after.tower_evals, before.tower_evals, "warm predicts must not evaluate towers");
    assert_eq!(after.requests, before.requests + 6);
    assert!(after.cache_hit_rate > 0.0);
    assert!(after.p99_latency_us > 0);

    // --- Protocol robustness -------------------------------------------------
    let resp = roundtrip(&mut stream, &mut reader, "this is not json");
    assert!(!resp.ok, "malformed lines get error responses, not dropped connections");
    assert!(resp.error.unwrap().contains("bad request"));

    let resp = roundtrip(&mut stream, &mut reader, r#"{"op":"Predict","user":0}"#);
    assert!(!resp.ok, "missing item must be an error");

    // The connection still works after errors.
    let resp = roundtrip(&mut stream, &mut reader, r#"{"op":"Predict","user":0,"item":0}"#);
    assert!(resp.ok);

    // --- Invalidation over the wire ------------------------------------------
    let resp = roundtrip(&mut stream, &mut reader, r#"{"op":"Invalidate","user":0,"item":0}"#);
    assert!(resp.ok);
    assert!(resp.evicted.unwrap() > 0, "warm entries must actually be evicted");

    // --- Graceful teardown ----------------------------------------------------
    drop(stream);
    server.stop();
    engine.shutdown();
    let stats = engine.stats();
    // The malformed line was answered by the front end before reaching the
    // engine; only the missing-item request counts as an engine error.
    assert_eq!(stats.errors, 1, "exactly the one deliberate engine error");
    assert!(stats.deadline_misses == 0);
}
