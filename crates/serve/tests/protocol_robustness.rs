//! Serve-boundary robustness: malformed, oversized, truncated and
//! adversarial client behaviour must surface as *structured* protocol
//! errors — never a panic, never a silently dropped connection, and never
//! unbounded buffering.

use rrre_serve::protocol::{Response, MAX_LINE_BYTES};
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Server};
use rrre_testkit::fault::{oversized_line, roundtrip_line, send_partial_line};
use rrre_testkit::{trained_fixture, TempDir};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn served_engine(tag: &str) -> (Arc<Engine>, Server) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Arc::new(Engine::new(
        artifact,
        EngineConfig { workers: 2, max_batch: 4, max_wait: Duration::from_micros(500), cache_shards: 2, ..EngineConfig::default() },
    ));
    let mut server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    (engine, server)
}

fn parse(reply: &str) -> Response {
    serde_json::from_str(reply.trim()).unwrap_or_else(|e| panic!("not a protocol response: {reply:?} ({e})"))
}

#[test]
fn oversized_line_gets_error_and_connection_survives() {
    let (_engine, mut server) = served_engine("oversized");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // A line well past the bound: the server must answer with a structured
    // error naming the limit, without buffering the whole line.
    let big = oversized_line(4 * MAX_LINE_BYTES);
    stream.write_all(big.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let resp = parse(&reply);
    assert!(!resp.ok);
    assert!(resp.error.as_deref().unwrap().contains(&MAX_LINE_BYTES.to_string()), "{resp:?}");

    // The oversized line was fully discarded: the same connection keeps
    // speaking the protocol.
    stream.write_all(b"{\"op\":\"Stats\"}\n").unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let resp = parse(&reply);
    assert!(resp.ok, "connection must stay usable after an oversized line: {resp:?}");
    assert!(resp.stats.is_some());

    server.stop();
}

#[test]
fn partial_line_at_disconnect_gets_best_effort_error() {
    let (_engine, mut server) = served_engine("partial");
    let addr = server.local_addr();

    // Client dies mid-request: 12 bytes of a valid predict line, no
    // newline, then the write half closes. The server answers with a parse
    // error instead of closing silently.
    let line = r#"{"op":"Predict","user":0,"item":0}"#;
    let reply = send_partial_line(addr, line, 12).unwrap();
    let resp = parse(&reply);
    assert!(!resp.ok);
    assert!(resp.error.as_deref().unwrap().contains("bad request"), "{resp:?}");

    // A *complete* line without a trailing newline before shutdown is still
    // served — the payload was all there.
    let reply = send_partial_line(addr, line, line.len()).unwrap();
    let resp = parse(&reply);
    assert!(resp.ok, "complete unterminated line must be served: {resp:?}");
    assert!(resp.prediction.is_some());

    server.stop();
}

#[test]
fn unknown_fields_and_malformed_json_get_structured_errors() {
    let (_engine, mut server) = served_engine("unknown-fields");
    let addr = server.local_addr();

    let resp = parse(&roundtrip_line(addr, r#"{"op":"Predict","user":0,"item":0,"speed":"max"}"#).unwrap());
    assert!(!resp.ok);
    assert!(resp.error.as_deref().unwrap().contains("speed"), "{resp:?}");

    let resp = parse(&roundtrip_line(addr, r#"[{"op":"Stats"}]"#).unwrap());
    assert!(!resp.ok);
    assert!(resp.error.as_deref().unwrap().contains("object"), "{resp:?}");

    let resp = parse(&roundtrip_line(addr, "\u{7f}garbage\u{1}").unwrap());
    assert!(!resp.ok);

    server.stop();
}

#[test]
fn abrupt_disconnects_do_not_poison_the_server() {
    let (engine, mut server) = served_engine("disconnect");
    let addr = server.local_addr();

    // A batch of clients that connect, maybe write a fragment, and vanish.
    for i in 0..8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        if i % 2 == 0 {
            let _ = stream.write_all(b"{\"op\":\"Pre");
        }
        drop(stream);
    }

    // The server still serves real clients afterwards.
    let resp = parse(&roundtrip_line(addr, r#"{"op":"Predict","user":1,"item":1}"#).unwrap());
    assert!(resp.ok, "server must survive abrupt disconnects: {resp:?}");
    assert!(resp.prediction.is_some());

    server.stop();
    engine.shutdown();
}
