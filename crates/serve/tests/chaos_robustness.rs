//! Chaos-proxy drills against a real engine + TCP server: network faults
//! between client and server must never corrupt results, wedge the
//! server, or surface as client-visible failures while retry budget
//! remains.
//!
//! All faults are injected by [`rrre_testkit::chaos::ChaosProxy`] with
//! forced schedules, so each test exercises one specific failure at one
//! specific request — no probabilistic flakiness.

use rrre_client::{Client, ClientConfig};
use rrre_serve::server::Server;
use rrre_serve::{Engine, EngineConfig, ModelArtifact, Request};
use rrre_testkit::chaos::{ChaosConfig, ChaosProxy, Fault};
use rrre_testkit::{trained_fixture, TempDir};
use std::sync::Arc;
use std::time::Duration;

fn serving_stack(tag: &str) -> (TempDir, Arc<Engine>, Server) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Arc::new(Engine::new(artifact, EngineConfig { workers: 2, ..EngineConfig::default() }));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    (dir, engine, server)
}

fn quick_client(addrs: Vec<String>) -> Client {
    Client::new(
        addrs,
        ClientConfig {
            connect_timeout: Duration::from_millis(300),
            request_timeout: Duration::from_millis(500),
            retries: 3,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            breaker_threshold: 2,
            breaker_window: 4,
            breaker_cooldown: Duration::from_secs(30),
            seed: 11,
            ..ClientConfig::default()
        },
    )
}

#[test]
fn mid_line_disconnect_is_retried_and_the_server_keeps_serving() {
    let (_dir, engine, mut server) = serving_stack("chaos-midline");
    let proxy = ChaosProxy::start(server.local_addr().to_string(), ChaosConfig::default()).unwrap();
    proxy.force_once(Fault::TruncateRequest);

    let client = quick_client(vec![proxy.local_addr().to_string()]);
    let resp = client.request(Request::predict(0, 0)).unwrap();
    assert!(resp.ok, "retry must absorb the mid-line disconnect: {:?}", resp.error);
    let snap = client.snapshot();
    assert!(snap.retries >= 1, "the truncated attempt must have been retried");
    assert_eq!(proxy.stats().truncated_requests, 1);

    // The server shrugged off the partial line: direct traffic still works.
    let direct = engine.submit(Request::predict(1, 0));
    assert!(direct.ok, "server must keep serving after a mid-line disconnect");
    server.stop();
}

#[test]
fn corrupted_response_bytes_are_rejected_and_retried() {
    let (_dir, engine, mut server) = serving_stack("chaos-corrupt");
    let proxy = ChaosProxy::start(server.local_addr().to_string(), ChaosConfig::default()).unwrap();
    proxy.force_once(Fault::CorruptResponse);

    let client = quick_client(vec![proxy.local_addr().to_string()]);
    let resp = client.request(Request::predict(0, 0)).unwrap();
    assert!(resp.ok, "corruption must be survived via retry: {:?}", resp.error);
    assert_eq!(proxy.stats().corrupted, 1, "the fault must actually have fired");
    assert!(client.snapshot().retries >= 1);

    // The recovered answer equals the engine's own (the client never
    // returned the corrupted bytes as data).
    let truth = engine.submit(Request::predict(0, 0));
    assert_eq!(resp.prediction, truth.prediction);
    server.stop();
}

#[test]
fn blackholed_replica_times_out_opens_its_breaker_and_traffic_fails_over() {
    let (_dir_a, _engine_a, mut server_a) = serving_stack("chaos-blackhole-a");
    let (_dir_b, _engine_b, mut server_b) = serving_stack("chaos-blackhole-b");
    let proxy_a = ChaosProxy::start(server_a.local_addr().to_string(), ChaosConfig::default()).unwrap();
    let proxy_b = ChaosProxy::start(server_b.local_addr().to_string(), ChaosConfig::default()).unwrap();
    proxy_a.set_forced(Some(Fault::Blackhole));

    let client = quick_client(vec![
        proxy_a.local_addr().to_string(),
        proxy_b.local_addr().to_string(),
    ]);
    for i in 0..6 {
        let resp = client.request(Request::predict(i % 3, 0)).unwrap();
        assert!(resp.ok, "failover must hide the blackholed replica: {:?}", resp.error);
    }
    let snap = client.snapshot();
    assert!(snap.replicas[0].breaker_open, "the blackholed replica's breaker must be open");
    assert!(snap.replicas[0].breaker_opens >= 1);
    assert!(
        snap.replicas[0].failures >= 2,
        "timeouts against the blackhole must be recorded: {snap:?}"
    );
    assert!(snap.replicas[1].attempts >= 6, "the healthy replica must have absorbed the traffic");
    assert!(proxy_a.stats().blackholed >= 2, "attempts must actually have been blackholed");
    server_a.stop();
    server_b.stop();
}
