//! Durable streaming-ingest drills: every acknowledged `IngestReview` must
//! survive any crash and apply to the serving model **exactly once**.
//!
//! The contract under test, end to end:
//!
//! * an ack is a durability promise — the record is fsync'd into the WAL
//!   before the response leaves the engine, so a restart replays it;
//! * sequence ids dedup — a resend (the client's answer to a lost ack)
//!   acks `duplicate: true` without re-applying;
//! * a torn WAL tail (crash mid-write) is repaired by truncation — the torn
//!   record was never acked, so nothing promised is lost;
//! * a complete record failing its CRC mid-log is bit rot, not a crash
//!   artifact — the open fails **closed** rather than serve a guess;
//! * the incremental tower refresh is bit-identical to folding the WAL into
//!   a new artifact generation and reloading it from disk;
//! * compaction commits through a sealed staging directory: no COMMIT
//!   marker → roll back, COMMIT marker → roll forward, and the seq ledger
//!   keeps replay idempotent across every interleaving.

use rrre_serve::artifact::MANIFEST_FILE;
use rrre_serve::protocol::PredictionDto;
use rrre_serve::wal::{self, FsyncPolicy, IngestLedger, SeqSet};
use rrre_serve::{Engine, EngineConfig, IngestConfig, ModelArtifact, Request, WAL_DIR};
use rrre_testkit::fault::{flip_byte, shave_tail, wal_segments};
use rrre_testkit::{trained_fixture, Fixture, TempDir};
use std::path::Path;

fn saved_fixture(tag: &str) -> (TempDir, Fixture) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    (dir, fx)
}

fn ingest_cfg() -> IngestConfig {
    IngestConfig { fsync: FsyncPolicy::EveryRecord, refresh_every: 1, ..IngestConfig::default() }
}

fn open(dir: &Path, ingest: IngestConfig) -> Engine {
    Engine::open_with_ingest(
        dir,
        EngineConfig { workers: 2, ..EngineConfig::default() },
        ingest,
    )
    .expect("open_with_ingest must succeed on an undamaged directory")
}

/// The deterministic review for sequence id `seq` — the same function the
/// CLI's `ingest` verb uses in spirit: every field derives from the seq,
/// so a resend is byte-identical to the original.
fn review_req(seq: u64, n_users: usize, n_items: usize) -> Request {
    Request::ingest_review(
        seq,
        (seq % n_users as u64) as u32,
        (seq % n_items as u64) as u32,
        1.0 + (seq % 5) as f32,
        format!("review {seq} arrived by stream"),
        1_700_000_000 + seq as i64,
    )
}

/// Ingests `seq` and asserts the ack's duplicate flag.
fn ingest_one(engine: &Engine, seq: u64, n_users: usize, n_items: usize, expect_dup: bool) {
    let resp = engine.submit(review_req(seq, n_users, n_items));
    assert!(resp.ok, "ingest of seq {seq} failed: {:?}", resp.error);
    let ack = resp.ingest.expect("ok IngestReview carries an ingest ack");
    assert_eq!(ack.seq, seq);
    assert_eq!(
        ack.duplicate, expect_dup,
        "seq {seq}: expected duplicate={expect_dup}, got {}",
        ack.duplicate
    );
}

/// Deterministic prediction probe over a small entity grid.
fn probe(engine: &Engine) -> Vec<(u32, u32, PredictionDto)> {
    let generation = engine.generation();
    let (n_users, n_items) =
        (generation.artifact.dataset.n_users, generation.artifact.dataset.n_items);
    drop(generation);
    let mut out = Vec::new();
    for u in 0..n_users.min(5) as u32 {
        for i in 0..n_items.min(5) as u32 {
            let resp = engine.submit(Request::predict(u, i));
            assert!(resp.ok, "probe predict failed: {:?}", resp.error);
            out.push((u, i, resp.prediction.expect("ok predict carries a prediction")));
        }
    }
    out
}

fn served_reviews(engine: &Engine) -> usize {
    engine.generation().artifact.dataset.len()
}

#[test]
fn acked_reviews_survive_a_crash_and_resends_dedup() {
    let (dir, fx) = saved_fixture("ingest-restart");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();

    let engine = open(dir.path(), ingest_cfg());
    for seq in 0..6 {
        ingest_one(&engine, seq, n_users, n_items, false);
    }
    assert_eq!(served_reviews(&engine), base + 6, "refresh_every=1 folds each ack in");
    let stats = engine.stats();
    assert_eq!(stats.ingested, 6);
    assert!(stats.wal_bytes > 0, "acked records occupy the WAL");
    assert!(stats.refreshes >= 6);
    let before_crash = probe(&engine);
    drop(engine); // the crash: no compaction ever ran, the WAL is the only copy

    let engine = open(dir.path(), ingest_cfg());
    assert_eq!(
        served_reviews(&engine),
        base + 6,
        "every acked review must be serving again after restart"
    );
    assert_eq!(
        probe(&engine),
        before_crash,
        "replayed towers must be bit-identical to the pre-crash refresh"
    );
    // The client's answer to a lost ack is a resend of the same seq: every
    // one must come back `duplicate` without growing the dataset.
    for seq in 0..6 {
        ingest_one(&engine, seq, n_users, n_items, true);
    }
    assert_eq!(engine.stats().ingest_duplicates, 6);
    assert_eq!(served_reviews(&engine), base + 6, "duplicates must not re-apply");
    engine.shutdown();
}

#[test]
fn duplicate_seq_acks_without_reapplying_within_one_process() {
    let (dir, fx) = saved_fixture("ingest-dup-live");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();

    let engine = open(dir.path(), ingest_cfg());
    ingest_one(&engine, 7, n_users, n_items, false);
    ingest_one(&engine, 7, n_users, n_items, true);
    assert_eq!(served_reviews(&engine), base + 1);
    let stats = engine.stats();
    assert_eq!((stats.ingested, stats.ingest_duplicates), (1, 1));
    engine.shutdown();
}

#[test]
fn torn_wal_tail_is_repaired_and_only_the_torn_record_reingests_fresh() {
    let (dir, fx) = saved_fixture("ingest-torn");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();

    let engine = open(dir.path(), ingest_cfg());
    for seq in 0..4 {
        ingest_one(&engine, seq, n_users, n_items, false);
    }
    drop(engine);

    // Crash mid-write: the final record loses its tail bytes. That record's
    // fsync never returned, so its ack never left — truncating it loses
    // nothing that was promised.
    let segments = wal_segments(dir.path().join(WAL_DIR)).unwrap();
    shave_tail(segments.last().unwrap(), 3).unwrap();

    let engine = open(dir.path(), ingest_cfg());
    assert_eq!(engine.stats().wal_recoveries, 1, "the repaired tail must be counted");
    assert_eq!(served_reviews(&engine), base + 3, "three intact records replay");
    for seq in 0..3 {
        ingest_one(&engine, seq, n_users, n_items, true);
    }
    // The torn record was never acked, so its seq is unknown to the dedup:
    // the client's retry lands as a fresh, durable ingest.
    ingest_one(&engine, 3, n_users, n_items, false);
    assert_eq!(served_reviews(&engine), base + 4);
    engine.shutdown();
}

#[test]
fn mid_log_corruption_fails_the_open_closed() {
    let (dir, fx) = saved_fixture("ingest-bitrot");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);

    let engine = open(dir.path(), ingest_cfg());
    for seq in 0..4 {
        ingest_one(&engine, seq, n_users, n_items, false);
    }
    drop(engine);

    // Flip a payload byte of the *first* record: a bytewise-complete record
    // whose CRC no longer matches. That is bit rot, not a torn tail — the
    // only safe answer is to refuse to serve.
    let segments = wal_segments(dir.path().join(WAL_DIR)).unwrap();
    flip_byte(&segments[0], 10).unwrap();

    let err = match Engine::open_with_ingest(dir.path(), EngineConfig::default(), ingest_cfg()) {
        Err(e) => e,
        Ok(_) => panic!("a corrupt mid-log record must fail the open"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
}

#[test]
fn incremental_refresh_is_bit_identical_to_compaction_reload_and_restart() {
    let (dir, fx) = saved_fixture("ingest-parity");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();

    let engine = open(dir.path(), ingest_cfg());
    for seq in 0..5 {
        ingest_one(&engine, seq, n_users, n_items, false);
    }
    // The towers as the incremental (frozen-encoder, suffix-only) refresh
    // computed them.
    let refreshed = probe(&engine);

    // Fold the WAL into a brand-new artifact generation and reload it from
    // disk: the full load path re-encodes every review from bytes.
    let (folded, generation) = engine.compact_now().unwrap();
    assert_eq!(folded, 5);
    assert_eq!(generation, 2, "compaction must publish a new generation");
    assert_eq!(engine.stats().compactions, 1);
    assert_eq!(served_reviews(&engine), base + 5);
    assert_eq!(
        probe(&engine),
        refreshed,
        "compacted reload must reproduce the incremental refresh bit for bit"
    );

    drop(engine);
    let engine = open(dir.path(), ingest_cfg());
    assert_eq!(
        probe(&engine),
        refreshed,
        "a cold restart of the compacted artifact must also be bit-identical"
    );
    // The ledger carries the dedup across the compaction: resends still ack
    // duplicate even though the WAL segments holding them are gone.
    for seq in 0..5 {
        ingest_one(&engine, seq, n_users, n_items, true);
    }
    assert_eq!(served_reviews(&engine), base + 5);
    engine.shutdown();
}

#[test]
fn compaction_truncates_folded_segments_and_the_ledger_survives_wal_resurrection() {
    let (dir, fx) = saved_fixture("ingest-truncate");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();
    let wal_dir = dir.path().join(WAL_DIR);

    let engine = open(dir.path(), ingest_cfg());
    for seq in 0..4 {
        ingest_one(&engine, seq, n_users, n_items, false);
    }
    // Preserve the pre-compaction segments: the drill below resurrects them
    // to simulate a crash after the fold committed but before the WAL was
    // truncated.
    let preserved: Vec<(String, Vec<u8>)> = wal_segments(&wal_dir)
        .unwrap()
        .iter()
        .map(|p| {
            (p.file_name().unwrap().to_string_lossy().into_owned(), std::fs::read(p).unwrap())
        })
        .collect();
    let bytes_before = engine.stats().wal_bytes;
    assert!(bytes_before > 0);

    engine.compact_now().unwrap();
    assert!(
        engine.stats().wal_bytes < bytes_before,
        "folded segments must be truncated away"
    );
    drop(engine);

    // Resurrect the folded segments. Replay must recognise every record as
    // ledger-covered and apply none of them a second time.
    for (name, bytes) in &preserved {
        std::fs::write(wal_dir.join(name), bytes).unwrap();
    }
    let engine = open(dir.path(), ingest_cfg());
    assert_eq!(
        served_reviews(&engine),
        base + 4,
        "ledger-covered WAL records must not double-apply"
    );
    for seq in 0..4 {
        ingest_one(&engine, seq, n_users, n_items, true);
    }
    engine.shutdown();
}

#[test]
fn uncommitted_staging_rolls_back_and_sealed_staging_rolls_forward() {
    let (dir, fx) = saved_fixture("ingest-staging");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();

    let engine = open(dir.path(), ingest_cfg());
    for seq in 0..3 {
        ingest_one(&engine, seq, n_users, n_items, false);
    }
    drop(engine);

    // Crash mid-stage, before the COMMIT marker: the fold never happened.
    // Recovery must delete the staging debris and replay from the WAL.
    let staging = wal::staging_dir(dir.path());
    std::fs::create_dir_all(&staging).unwrap();
    std::fs::write(staging.join("dataset.bin"), b"half-written garbage").unwrap();
    let engine = open(dir.path(), ingest_cfg());
    assert!(!staging.exists(), "uncommitted staging must be rolled back");
    assert_eq!(served_reviews(&engine), base + 3, "the WAL still holds every ack");
    drop(engine);

    // Crash after the COMMIT marker, before promotion: the fold is decided.
    // Build the staged artifact exactly as compaction stages it — the
    // on-disk dataset plus the three WAL records, vocab pinned to the
    // original training prefix — then seal and "crash".
    let manifest_json = std::fs::read_to_string(dir.path().join(MANIFEST_FILE)).unwrap();
    let manifest: rrre_serve::ArtifactManifest = serde_json::from_str(&manifest_json).unwrap();
    let mut dataset = fx.dataset.clone();
    let mut corpus = fx.corpus.clone();
    let mut applied = SeqSet::new();
    for seq in 0..3u64 {
        let req = review_req(seq, n_users, n_items);
        dataset
            .append_review(rrre_data::Review {
                user: rrre_data::UserId(req.user.unwrap()),
                item: rrre_data::ItemId(req.item.unwrap()),
                rating: req.rating.unwrap(),
                label: rrre_data::Label::Benign,
                timestamp: req.ts.unwrap(),
                text: req.text.clone().unwrap(),
            })
            .unwrap();
        corpus.append_doc(req.text.as_deref().unwrap());
        applied.insert(seq);
    }
    ModelArtifact::save_pinned(
        &staging,
        &dataset,
        &corpus,
        &fx.model,
        manifest.min_count,
        manifest.shard_spec,
        manifest.vocab_reviews,
    )
    .unwrap();
    wal::save_ledger(&staging, &IngestLedger { applied, segment_watermark: 0 }).unwrap();
    wal::seal_staging(&staging).unwrap();

    let engine = open(dir.path(), ingest_cfg());
    assert!(!staging.exists(), "sealed staging must be promoted");
    assert_eq!(
        engine.generation().artifact.manifest.n_reviews,
        base + 3,
        "the promoted manifest must carry the folded reviews"
    );
    assert_eq!(
        served_reviews(&engine),
        base + 3,
        "WAL replay over the promoted fold must dedup through the ledger"
    );
    for seq in 0..3 {
        ingest_one(&engine, seq, n_users, n_items, true);
    }
    engine.shutdown();
}

#[test]
fn cold_start_prior_answers_thin_pairs_with_the_calibrated_base_rate() {
    let (dir, fx) = saved_fixture("ingest-coldstart");
    let expected = (1.0 - fx.dataset.fake_fraction()) as f32;

    // Threshold far above any entity's degree: every pair is "thin", so
    // every prediction's reliability must be the calibrated benign base
    // rate — while ratings still come from the model.
    let engine = open(
        dir.path(),
        IngestConfig { cold_start_min: usize::MAX / 2, ..ingest_cfg() },
    );
    let gated = probe(&engine);
    for (u, i, pred) in &gated {
        assert_eq!(
            pred.reliability, expected,
            "thin pair ({u},{i}) must answer the calibrated prior"
        );
    }
    engine.shutdown();

    // Threshold 0 disables the prior entirely: the head's scores return,
    // and (for a trained model) they are not all one constant.
    let engine = open(dir.path(), IngestConfig { cold_start_min: 0, ..ingest_cfg() });
    let ungated = probe(&engine);
    assert_eq!(gated.len(), ungated.len());
    for ((_, _, a), (_, _, b)) in gated.iter().zip(&ungated) {
        assert_eq!(a.rating, b.rating, "the prior must never touch ratings");
    }
    let distinct: std::collections::HashSet<u32> =
        ungated.iter().map(|(_, _, p)| p.reliability.to_bits()).collect();
    assert!(distinct.len() > 1, "head reliabilities should vary across pairs");
    engine.shutdown();
}

/// The seeded kill-loop: ten rounds, each ingesting a couple of reviews and
/// then dying at a different point in the ingest/compact lifecycle. After
/// every restart the full contract is re-verified: the serving dataset
/// holds base + |acked| reviews (exactly once), and a resend of *every*
/// acked seq in history acks `duplicate` without applying.
#[test]
fn seeded_kill_loop_applies_every_acked_review_exactly_once() {
    let (dir, fx) = saved_fixture("ingest-killloop");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();
    let wal_dir = dir.path().join(WAL_DIR);

    let mut acked: Vec<u64> = Vec::new();
    let mut next_seq = 0u64;
    for round in 0..10u64 {
        let engine = open(dir.path(), ingest_cfg());

        // Invariants on entry, after whatever the previous round's crash
        // left behind.
        assert_eq!(
            served_reviews(&engine),
            base + acked.len(),
            "round {round}: every acked review exactly once"
        );
        for &seq in &acked {
            ingest_one(&engine, seq, n_users, n_items, true);
        }
        assert_eq!(
            served_reviews(&engine),
            base + acked.len(),
            "round {round}: resends of the full history must not apply"
        );

        // Two new reviews this round.
        for _ in 0..2 {
            ingest_one(&engine, next_seq, n_users, n_items, false);
            acked.push(next_seq);
            next_seq += 1;
        }

        // The crash, seeded by round number. Each arm is a different point
        // in the lifecycle.
        match round % 5 {
            // Kill between fsync and the client seeing the ack: the record
            // is durable, the ack is lost. The resend check at the top of
            // the next round is exactly the client's retry.
            0 => drop(engine),
            // Kill immediately after a committed compaction.
            1 => {
                let already_folded = count_folded(dir.path(), base);
                let (folded, _) = engine.compact_now().unwrap();
                assert_eq!(folded as usize, acked.len() - already_folded);
                drop(engine);
            }
            // Kill mid-append: the active segment loses its tail, tearing
            // the last record. Its ack never left, so the drill forfeits
            // the seq and re-ingests it fresh next round.
            2 => {
                drop(engine);
                let segments = wal_segments(&wal_dir).unwrap();
                shave_tail(segments.last().unwrap(), 2).unwrap();
                let torn = acked.pop().unwrap();
                let reopened = open(dir.path(), ingest_cfg());
                ingest_one(&reopened, torn, n_users, n_items, false);
                acked.push(torn);
                drop(reopened);
            }
            // Kill mid-stage, before the COMMIT marker: rollback.
            3 => {
                drop(engine);
                let staging = wal::staging_dir(dir.path());
                std::fs::create_dir_all(&staging).unwrap();
                std::fs::write(staging.join("model.bin"), b"torn stage").unwrap();
            }
            // Kill after the fold committed but before the WAL truncation:
            // resurrect the folded segments and let the ledger dedup them.
            _ => {
                let preserved: Vec<(String, Vec<u8>)> = wal_segments(&wal_dir)
                    .unwrap()
                    .iter()
                    .map(|p| {
                        (
                            p.file_name().unwrap().to_string_lossy().into_owned(),
                            std::fs::read(p).unwrap(),
                        )
                    })
                    .collect();
                engine.compact_now().unwrap();
                drop(engine);
                for (name, bytes) in &preserved {
                    std::fs::write(wal_dir.join(name), bytes).unwrap();
                }
            }
        }
    }

    // Final audit after the last crash.
    let engine = open(dir.path(), ingest_cfg());
    assert_eq!(served_reviews(&engine), base + acked.len());
    for &seq in &acked {
        ingest_one(&engine, seq, n_users, n_items, true);
    }
    assert_eq!(served_reviews(&engine), base + acked.len());
    engine.shutdown();
}

/// The ingest-under-attack drill: a seeded burst campaign arrives through
/// the ordinary `IngestReview` stream. The durability contract must not
/// care that the traffic is hostile — every acked fake applies exactly
/// once, resends dedup, a restart replays bit-identically — and the
/// cold-start prior must pin the reliability served for the attack's
/// thin-history pairs to the calibrated base rate, so a fresh burst cannot
/// talk the serving tier into extra trust.
#[test]
fn burst_campaign_through_ingest_dedups_and_cold_start_bounds_its_reliability() {
    use rrre_data::synth::{AttackCampaign, AttackFamily};

    let (dir, fx) = saved_fixture("ingest-attack");
    let (n_users, n_items) = (fx.dataset.n_users, fx.dataset.n_items);
    let base = fx.dataset.len();

    let campaign = AttackCampaign::new(AttackFamily::Burst, 0.0, 0xB1A5);
    let burst = campaign.stream(n_users, n_items, 8);
    assert_eq!(burst.len(), 8);
    let ingest = |engine: &Engine, seq: u64, expect_dup: bool| {
        let r = &burst[seq as usize];
        let resp = engine.submit(Request::ingest_review(
            seq,
            r.user.0,
            r.item.0,
            r.rating,
            r.text.clone(),
            r.timestamp,
        ));
        assert!(resp.ok, "burst seq {seq} failed: {:?}", resp.error);
        let ack = resp.ingest.expect("ok IngestReview carries an ingest ack");
        assert_eq!(ack.duplicate, expect_dup, "burst seq {seq}");
    };

    let engine = open(dir.path(), ingest_cfg());
    for seq in 0..burst.len() as u64 {
        ingest(&engine, seq, false);
    }
    assert_eq!(served_reviews(&engine), base + burst.len(), "each fake folds in once");
    // The attacker's client retries the whole burst (lost acks): every
    // resend must dedup without growing the dataset or forcing a refresh.
    let refreshes_before = engine.stats().refreshes;
    for seq in 0..burst.len() as u64 {
        ingest(&engine, seq, true);
    }
    assert_eq!(served_reviews(&engine), base + burst.len(), "resends must not re-apply");
    assert_eq!(engine.stats().refreshes, refreshes_before, "duplicates must not refresh");
    let before_crash = probe(&engine);
    drop(engine); // crash with the burst only in the WAL

    let engine = open(dir.path(), ingest_cfg());
    assert_eq!(served_reviews(&engine), base + burst.len(), "replay holds the burst once");
    assert_eq!(probe(&engine), before_crash, "replayed towers are bit-identical");
    engine.shutdown();

    // Cold-start gate over the attack's own pairs: with the evidence
    // threshold above the sybils' thin histories, every pair the campaign
    // touched answers exactly the calibrated base-rate reliability. The
    // engine recalibrates the prior against the dataset it serves — the
    // base plus the replayed burst — so the drill reads the rate back from
    // the serving generation.
    let engine = open(
        dir.path(),
        IngestConfig { cold_start_min: usize::MAX / 2, ..ingest_cfg() },
    );
    let prior = (1.0 - engine.generation().artifact.dataset.fake_fraction()) as f32;
    for r in &burst {
        let resp = engine.submit(Request::predict(r.user.0, r.item.0));
        assert!(resp.ok, "predict on attack pair failed: {:?}", resp.error);
        let pred = resp.prediction.expect("ok predict carries a prediction");
        assert_eq!(
            pred.reliability, prior,
            "attack pair ({},{}) must be pinned to the prior",
            r.user.0, r.item.0
        );
    }
    engine.shutdown();
}

/// How many reviews the on-disk artifact (manifest) already folds, beyond
/// the training base — the kill-loop uses it to predict a compaction's
/// fold count.
fn count_folded(dir: &Path, base: usize) -> usize {
    let manifest_json = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
    let manifest: rrre_serve::ArtifactManifest = serde_json::from_str(&manifest_json).unwrap();
    manifest.n_reviews - base
}
