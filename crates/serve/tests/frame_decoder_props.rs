//! Property tests for the incremental NDJSON frame decoder.
//!
//! The decoder's contract (see `crates/serve/src/frame.rs`) is that chunk
//! boundaries are invisible: feeding a byte stream in arbitrary pieces
//! yields byte-identical frames to whole-buffer parsing, never panics, and
//! enforces the line bound with one structured [`FrameError`] per
//! oversized line while buffering at most `max_line + 1` bytes. These
//! properties drive randomized streams and randomized chunkings through
//! both a fresh decoder and a reference model and demand exact agreement.

use proptest::prelude::*;
use rrre_serve::protocol::MAX_LINE_BYTES;
use rrre_serve::{FrameDecoder, FrameError, FrameEvent};

/// What a decode run produced: every claimable event, then the EOF tail.
fn drain(decoder: &mut FrameDecoder) -> Vec<FrameEvent> {
    std::iter::from_fn(|| decoder.next_event()).collect()
}

/// Reference semantics computed on the whole buffer at once: split on
/// `\n`; each complete line becomes a `Frame` (within the bound) or one
/// `Oversized` (past it); an unterminated tail is a `Frame` from
/// `finish()` when within the bound, or an `Oversized` already emitted
/// during `push` when past it.
fn reference(stream: &[u8], limit: usize) -> (Vec<FrameEvent>, Option<FrameEvent>) {
    let parts: Vec<&[u8]> = stream.split(|&b| b == b'\n').collect();
    let (tail, lines) = parts.split_last().expect("split yields at least one part");
    let mut events = Vec::new();
    for line in lines {
        events.push(if line.len() > limit {
            FrameEvent::Oversized(FrameError { limit })
        } else {
            FrameEvent::Frame(line.to_vec())
        });
    }
    let finish = if tail.is_empty() {
        None
    } else if tail.len() > limit {
        events.push(FrameEvent::Oversized(FrameError { limit }));
        None
    } else {
        Some(FrameEvent::Frame(tail.to_vec()))
    };
    (events, finish)
}

/// Joins `lines` with `\n`, optionally newline-terminated — the raw bytes
/// a peer would have written.
fn build_stream(lines: &[Vec<u8>], terminated: bool) -> Vec<u8> {
    let mut stream = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            stream.push(b'\n');
        }
        stream.extend_from_slice(line);
    }
    if terminated && !lines.is_empty() {
        stream.push(b'\n');
    }
    stream
}

/// Line content: any byte except the frame delimiter, including invalid
/// UTF-8 — framing is byte-level and must not care.
fn line_byte() -> impl Strategy<Value = u8> {
    (0u8..=255).prop_map(|b| if b == b'\n' { b'~' } else { b })
}

/// Lines straddling the bound on both sides for small limits.
fn lines_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(line_byte(), 0..96), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline property: any chunking of any stream produces exactly
    /// the whole-buffer events (which in turn match the reference model),
    /// and the same EOF tail.
    #[test]
    fn arbitrary_chunk_splits_match_whole_buffer_parsing(
        limit in 4usize..48,
        lines in lines_strategy(),
        terminated in any::<bool>(),
        chunk_sizes in prop::collection::vec(1usize..17, 1..48),
    ) {
        let stream = build_stream(&lines, terminated);

        let mut whole = FrameDecoder::new(limit);
        whole.push(&stream);
        let whole_events = drain(&mut whole);
        let whole_tail = whole.finish();

        let mut chunked = FrameDecoder::new(limit);
        let mut rest: &[u8] = &stream;
        let mut cuts = chunk_sizes.iter().cycle();
        while !rest.is_empty() {
            let take = (*cuts.next().unwrap()).min(rest.len());
            chunked.push(&rest[..take]);
            rest = &rest[take..];
        }
        let chunked_events = drain(&mut chunked);
        let chunked_tail = chunked.finish();

        prop_assert_eq!(&chunked_events, &whole_events, "chunk boundaries changed the frames");
        prop_assert_eq!(&chunked_tail, &whole_tail, "chunk boundaries changed the EOF tail");

        let (expected_events, expected_tail) = reference(&stream, limit);
        prop_assert_eq!(&whole_events, &expected_events, "decoder diverged from the reference");
        prop_assert_eq!(&whole_tail, &expected_tail);
        // finish() is idempotent: the tail is taken exactly once.
        prop_assert_eq!(chunked.finish(), None);
    }

    /// Claiming events *between* pushes (as the event loop does under
    /// backpressure) must not change what is decoded.
    #[test]
    fn interleaved_claims_see_the_same_frames(
        limit in 4usize..48,
        lines in lines_strategy(),
        terminated in any::<bool>(),
        chunk_sizes in prop::collection::vec(1usize..17, 1..48),
    ) {
        let stream = build_stream(&lines, terminated);
        let mut decoder = FrameDecoder::new(limit);
        let mut events = Vec::new();
        let mut rest: &[u8] = &stream;
        let mut cuts = chunk_sizes.iter().cycle();
        while !rest.is_empty() {
            let take = (*cuts.next().unwrap()).min(rest.len());
            decoder.push(&rest[..take]);
            rest = &rest[take..];
            events.extend(std::iter::from_fn(|| decoder.next_event()));
            prop_assert_eq!(decoder.pending_events(), 0);
        }
        let tail = decoder.finish();
        let (expected_events, expected_tail) = reference(&stream, limit);
        prop_assert_eq!(&events, &expected_events);
        prop_assert_eq!(&tail, &expected_tail);
    }

    /// Each oversized line yields exactly one structured error naming the
    /// bound, and the decoder keeps decoding cleanly after it — no matter
    /// how far past the bound the line ran or how it was chunked.
    #[test]
    fn oversized_lines_error_once_and_decoding_recovers(
        limit in 4usize..32,
        excess in 1usize..300,
        chunk in 1usize..17,
        terminated in any::<bool>(),
    ) {
        let mut stream = vec![b'x'; limit + excess];
        stream.push(b'\n');
        stream.extend_from_slice(b"ok");
        if terminated {
            stream.push(b'\n');
        }
        let mut decoder = FrameDecoder::new(limit);
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
        }
        prop_assert_eq!(
            decoder.next_event(),
            Some(FrameEvent::Oversized(FrameError { limit })),
            "the bound crossing must produce exactly one structured error"
        );
        let ok = FrameEvent::Frame(b"ok".to_vec());
        if terminated {
            prop_assert_eq!(decoder.next_event(), Some(ok));
            prop_assert_eq!(decoder.finish(), None);
        } else {
            prop_assert_eq!(decoder.next_event(), None);
            prop_assert_eq!(decoder.finish(), Some(ok));
        }
        prop_assert_eq!(decoder.next_event(), None);
    }

    /// The production bound: a frame of exactly `MAX_LINE_BYTES` is legal,
    /// one byte more draws the structured refusal whose message names the
    /// number (protocol_robustness depends on that phrasing), wherever the
    /// chunk boundaries fall.
    #[test]
    fn sixteen_kib_bound_is_exclusive_and_structured(
        over in any::<bool>(),
        chunk in 1usize..4096,
    ) {
        let len = if over { MAX_LINE_BYTES + 1 } else { MAX_LINE_BYTES };
        let mut stream = vec![b'j'; len];
        stream.push(b'\n');
        let mut decoder = FrameDecoder::new(MAX_LINE_BYTES);
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
        }
        if over {
            match decoder.next_event() {
                Some(FrameEvent::Oversized(err)) => {
                    prop_assert_eq!(err.limit, MAX_LINE_BYTES);
                    prop_assert_eq!(
                        err.to_string(),
                        format!("request line exceeds {MAX_LINE_BYTES} bytes")
                    );
                }
                other => prop_assert!(false, "one-past-the-bound must be refused, got {other:?}"),
            }
        } else {
            prop_assert_eq!(decoder.next_event(), Some(FrameEvent::Frame(vec![b'j'; len])));
        }
        prop_assert_eq!(decoder.next_event(), None);
        prop_assert!(!decoder.has_partial());
    }
}
