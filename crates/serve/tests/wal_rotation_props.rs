//! Property tests for WAL segment-rotation boundaries.
//!
//! `WalWriter::append` rotates *before* appending once the current
//! segment has reached `segment_bytes`, so three boundary shapes exist
//! and each must replay losslessly:
//!
//! 1. a record whose bytes land the segment **exactly on** the rotation
//!    threshold (the next append opens a fresh segment);
//! 2. a record that **spans** the threshold — it starts below
//!    `segment_bytes` and ends past it, physically overflowing its
//!    segment (rotation only happens on the *next* append);
//! 3. a **final record ahead of a torn tail** — the crash-truncated
//!    record after it is repaired away, every intact record survives,
//!    and the repaired log accepts new appends.
//!
//! Record sizes, the boundary offsets and the tear length are all
//! property-driven; the committed `.proptest-regressions` sibling pins
//! known-nasty shapes to replay before novel cases.

use proptest::prelude::*;
use rrre_serve::wal::{replay_and_repair, WalRecord, WalWriter};
use rrre_serve::FsyncPolicy;
use rrre_testkit::TempDir;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A record with a fixed-width seq (3 digits keeps the JSON length a
/// pure function of the text length) and `text_len` bytes of text.
fn record(seq: u64, text_len: usize) -> WalRecord {
    assert!((100..1000).contains(&seq), "3-digit seqs keep encoded sizes predictable");
    WalRecord { seq, user: 0, item: 0, rating: 3.5, ts: 777, text: "x".repeat(text_len) }
}

/// Encoded size of `record(seq, text_len)` on disk, measured by writing a
/// probe record into a scratch WAL — the framing overhead is opaque to
/// this test, the *measured* arithmetic is what the properties rely on.
fn encoded_size(dir: &TempDir, text_len: usize) -> u64 {
    let probe = dir.path().join("probe-wal");
    let mut w = WalWriter::open(&probe, u64::MAX, FsyncPolicy::Batched { every: 1 << 20 })
        .expect("probe WAL open");
    let bytes = w.append(&record(555, text_len)).expect("probe append");
    std::fs::remove_dir_all(&probe).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rotation_boundary_shapes_replay_losslessly(
        fill_len in 1usize..64,    // text length of the exactly-filling record
        mid_len in 0usize..64,     // text length of the boundary-spanning record
        tail_len in 0usize..64,    // text length of the final intact record
        shave in 1u64..32,         // bytes torn off the crashed record
    ) {
        let dir = TempDir::new(&format!(
            "wal-rotation-{}-{}", std::process::id(), CASE.fetch_add(1, Ordering::SeqCst)
        ));
        let overhead = encoded_size(&dir, 0);
        let fill_size = overhead + fill_len as u64;

        // Shape 1: segment_bytes is sized so record A fills segment 0 to
        // the byte.
        let wal_dir = dir.path().join("wal");
        let mut w = WalWriter::open(&wal_dir, fill_size, FsyncPolicy::Batched { every: 1 << 20 })
            .expect("WAL open");
        let a = record(100, fill_len);
        prop_assert_eq!(w.append(&a).expect("append A"), fill_size);
        prop_assert_eq!(w.current_segment(), 0, "an exact fill must not rotate eagerly");

        // Shape 2: record B rotates into segment 1 (threshold reached),
        // then record C is appended when segment 1 sits one byte short of
        // the threshold — C *spans* the rotation point, overflowing
        // segment 1, and only D's append rotates.
        let b = record(101, fill_len.saturating_sub(1));
        w.append(&b).expect("append B");
        prop_assert_eq!(w.current_segment(), 1, "the append after an exact fill rotates first");
        let c = record(102, mid_len);
        w.append(&c).expect("append C");
        prop_assert_eq!(
            w.current_segment(), 1,
            "a record starting below the threshold stays in its segment, even overflowing it"
        );
        let d = record(103, mid_len);
        w.append(&d).expect("append D");
        prop_assert_eq!(w.current_segment(), 2, "the overflowed segment closes on the next append");

        // Shape 3: final intact record E, then a record that crashes
        // mid-write — shave bytes off the newest segment so its last
        // record is bytewise incomplete.
        let e = record(104, tail_len);
        w.append(&e).expect("append E");
        let torn = record(105, tail_len);
        let torn_size = w.append(&torn).expect("append torn");
        w.sync().expect("sync");
        prop_assert!(shave < torn_size, "the tear must leave a partial record, not erase it");
        let seg_path = {
            let segs = rrre_serve::wal::list_segments(&wal_dir).expect("list segments");
            segs.last().expect("segments exist").1.clone()
        };
        let len = std::fs::metadata(&seg_path).expect("segment metadata").len();
        let file = std::fs::OpenOptions::new().write(true).open(&seg_path).expect("open segment");
        file.set_len(len - shave).expect("shave tail");
        drop(file);
        drop(w);

        // Replay: every intact record in order, exactly one repaired tear.
        let recovery = replay_and_repair(&wal_dir).expect("replay must repair, not refuse");
        let expect = vec![a, b, c, d, e.clone()];
        prop_assert_eq!(&recovery.records, &expect, "intact records must survive the tear");
        prop_assert_eq!(recovery.truncated_tails, 1, "exactly the torn record is repaired away");

        // The repaired log keeps working: the retried record lands after
        // the truncation point and the next replay sees everything.
        let mut w = WalWriter::open(&wal_dir, fill_size, FsyncPolicy::Batched { every: 1 << 20 })
            .expect("reopen after repair");
        w.append(&torn).expect("retry the torn record");
        w.sync().expect("sync retry");
        drop(w);
        let recovery = replay_and_repair(&wal_dir).expect("second replay");
        let mut expect_retried = expect.clone();
        expect_retried.push(torn);
        prop_assert_eq!(recovery.records, expect_retried);
        prop_assert_eq!(recovery.truncated_tails, 0, "a repaired log has no tear left");
    }
}
