//! Pipelining correctness against the event-driven server core.
//!
//! One connection, many requests in flight: the server claims frames as
//! they decode, workers answer in **completion** order, and the client
//! must match responses back to requests by the correlation ids the wire
//! protocol echoes. These tests drive a [`PipelinedClient`] window of 64
//! through a real engine + TCP server and check that every id comes back
//! exactly once with the answer a direct engine call gives, that
//! per-request deadlines are honored independently of their neighbours in
//! the pipeline, and that a mid-pipeline `Crash` drill leaves every other
//! in-flight request answered or cleanly refused — never hung.

use rrre_client::{Pipelined, PipelinedClient};
use rrre_serve::server::{Server, ServerConfig};
use rrre_serve::{Engine, EngineConfig, ModelArtifact};
use rrre_testkit::{trained_fixture, TempDir};
use rrre_wire::{ErrorKind, Op, Request, Response};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const RECV_TIMEOUT: Duration = Duration::from_secs(5);
const WINDOW: usize = 64;

fn serving_stack(tag: &str, cfg: EngineConfig) -> (TempDir, Arc<Engine>, Server) {
    let fx = trained_fixture();
    let dir = TempDir::new(tag);
    ModelArtifact::save(dir.path(), &fx.dataset, &fx.corpus, &fx.model, fx.min_count()).unwrap();
    let artifact = ModelArtifact::load(dir.path()).unwrap();
    let engine = Arc::new(Engine::new(artifact, cfg));
    let server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig { max_inflight_per_conn: WINDOW, ..ServerConfig::default() },
    )
    .unwrap();
    (dir, engine, server)
}

fn connect(server: &Server) -> PipelinedClient {
    PipelinedClient::connect(server.local_addr(), Duration::from_secs(1)).unwrap()
}

/// Receives until the window is empty, keyed by id — tolerating (in fact
/// expecting) completion-order arrival.
fn drain_by_id(client: &mut PipelinedClient) -> HashMap<u64, Response> {
    let mut by_id = HashMap::new();
    while client.pending() > 0 {
        match client.recv(RECV_TIMEOUT).expect("every in-flight id must be answered") {
            Pipelined::Response(resp) => {
                let id = resp.id.expect("matched responses carry their id");
                assert!(by_id.insert(id, resp).is_none(), "id {id} answered twice");
            }
            Pipelined::Unmatched(resp) => panic!("response matched nothing in flight: {resp:?}"),
        }
    }
    by_id
}

#[test]
fn sixty_four_in_flight_match_direct_engine_answers_by_id() {
    let (_dir, engine, mut server) = serving_stack(
        "pipeline-64",
        EngineConfig { workers: 4, ..EngineConfig::default() },
    );
    let mut client = connect(&server);

    // A mix of cheap Predicts and heavier Recommends so completion order
    // genuinely shuffles relative to submission order across 4 workers.
    let make_req = |i: usize| {
        if i % 3 == 0 {
            Request::recommend(i as u32 % 2, 2)
        } else {
            Request::predict(i as u32 % 2, i as u32 % 2)
        }
    };
    let mut sent = Vec::new();
    for i in 0..WINDOW {
        // Non-contiguous explicit ids: correlation must not assume a dense
        // or ordered id space.
        let req = make_req(i).with_id(1000 + 7 * i as u64);
        sent.push((req.id.unwrap(), make_req(i)));
        client.send(req).unwrap();
    }
    assert_eq!(client.pending(), WINDOW);

    let by_id = drain_by_id(&mut client);
    assert_eq!(by_id.len(), WINDOW, "every id answered exactly once");
    for (id, req) in sent {
        let resp = &by_id[&id];
        assert!(resp.ok, "id {id} must succeed: {:?}", resp.error);
        // The pipelined answer is bit-identical to a direct engine call —
        // correlation ids route payloads, not just acks.
        let truth = engine.submit(req);
        assert_eq!(resp.prediction, truth.prediction, "id {id} got another request's payload");
        assert_eq!(
            resp.recommendations.as_ref().map(|r| r.iter().map(|x| x.item).collect::<Vec<_>>()),
            truth.recommendations.as_ref().map(|r| r.iter().map(|x| x.item).collect::<Vec<_>>()),
            "id {id} got another request's ranking"
        );
    }

    // The front-end counters saw the pipeline: a fresh Stats request on
    // the same connection reports this very socket as open and nothing
    // still in flight.
    let id = client.send(Request::stats()).unwrap();
    let by_id = drain_by_id(&mut client);
    let stats = by_id[&id].stats.as_ref().expect("Stats carries a snapshot");
    assert!(stats.open_conns >= 1, "this connection must be counted open");
    // The gauge is decremented when the completion drains back to the
    // event loop, so the Stats request sees exactly itself in flight.
    assert_eq!(stats.pipelined_inflight, 1, "only the Stats request itself is in flight");
    server.stop();
}

#[test]
fn deadlines_are_honored_per_request_within_the_pipeline() {
    let (_dir, _engine, mut server) = serving_stack(
        "pipeline-deadlines",
        // One worker serializes the queue so queued neighbours genuinely
        // wait behind each other — the expired deadline must fail alone.
        EngineConfig { workers: 1, ..EngineConfig::default() },
    );
    let mut client = connect(&server);

    let mut expired = Vec::new();
    let mut generous = Vec::new();
    for i in 0..32u64 {
        let req = Request::predict(i as u32 % 2, i as u32 % 2).with_id(i);
        let req = if i % 4 == 0 {
            expired.push(i);
            // Already-expired deadline: must come back DeadlineExceeded,
            // without poisoning the requests pipelined around it.
            req.with_deadline_ms(0)
        } else {
            generous.push(i);
            req.with_deadline_ms(30_000)
        };
        client.send(req).unwrap();
    }

    let by_id = drain_by_id(&mut client);
    for id in expired {
        let resp = &by_id[&id];
        assert!(!resp.ok, "id {id} carried an expired deadline");
        assert_eq!(resp.kind, Some(ErrorKind::DeadlineExceeded), "id {id}: {resp:?}");
    }
    for id in generous {
        let resp = &by_id[&id];
        assert!(resp.ok, "id {id} had 30s of budget: {:?}", resp.error);
    }
    server.stop();
}

#[test]
fn oversized_frame_mid_pipeline_fails_alone_and_the_pipeline_keeps_answering() {
    use rrre_serve::protocol::MAX_LINE_BYTES;
    use rrre_testkit::fault::oversized_line;
    use std::io::{BufRead, BufReader, Write};

    let (_dir, engine, mut server) = serving_stack(
        "pipeline-oversized",
        EngineConfig { workers: 2, ..EngineConfig::default() },
    );

    // Three frames written back to back before reading anything: a valid
    // request, a line past the 16 KiB bound, another valid request. The
    // middle one must be refused *by itself* — a structured BadRequest
    // with a null id (its id is inside the bytes the server refused to
    // buffer) — while both real requests around it are answered.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(RECV_TIMEOUT)).unwrap();
    let first = r#"{"op":"Predict","user":0,"item":0,"id":1}"#;
    let big = oversized_line(MAX_LINE_BYTES);
    let second = r#"{"op":"Predict","user":1,"item":1,"id":2}"#;
    assert!(big.len() > MAX_LINE_BYTES);
    stream.write_all(format!("{first}\n{big}\n{second}\n").as_bytes()).unwrap();

    let mut reader = BufReader::new(stream);
    let mut answered = std::collections::HashMap::new();
    let mut refused = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("every frame gets a response line");
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        match resp.id {
            Some(id) => {
                assert!(answered.insert(id, resp).is_none(), "id {id} answered twice");
            }
            None => refused.push(resp),
        }
    }

    let [oversized] = refused.as_slice() else {
        panic!("exactly one null-id refusal expected, got {refused:?}");
    };
    assert!(!oversized.ok);
    assert_eq!(oversized.kind, Some(ErrorKind::BadRequest), "{oversized:?}");
    for id in [1u64, 2] {
        let resp = &answered[&id];
        assert!(resp.ok, "request {id} around the oversized frame must succeed: {resp:?}");
        let truth = engine.submit(Request::predict(id as u32 - 1, id as u32 - 1));
        assert_eq!(resp.prediction, truth.prediction, "id {id} payload must be its own");
    }
    server.stop();
}

#[test]
fn mid_pipeline_crash_leaves_every_other_request_answered_or_refused() {
    let (_dir, _engine, mut server) = serving_stack(
        "pipeline-crash",
        EngineConfig {
            workers: 2,
            fault_injection: true,
            breaker_threshold: 1000, // the breaker must not steal this test
            panic_backoff: Duration::from_millis(10),
            ..EngineConfig::default()
        },
    );
    let mut client = connect(&server);

    let mut normal = Vec::new();
    let mut crash_id = 0;
    for i in 0..WINDOW as u64 {
        let req = if i == WINDOW as u64 / 2 {
            crash_id = i;
            Request { op: Op::Crash, ..Request::stats() }.with_id(i)
        } else {
            normal.push(i);
            Request::predict(i as u32 % 2, i as u32 % 2).with_id(i)
        };
        client.send(req).unwrap();
    }

    // Every id — the crash included — must be answered; a worker panic
    // mid-batch may take co-batched neighbours down with it, but only to a
    // structured refusal, never to silence or a hang.
    let by_id = drain_by_id(&mut client);
    assert_eq!(by_id.len(), WINDOW);
    let crash_resp = &by_id[&crash_id];
    assert!(!crash_resp.ok);
    assert_eq!(crash_resp.kind, Some(ErrorKind::Internal), "{crash_resp:?}");
    let mut answered = 0;
    for id in normal {
        let resp = &by_id[&id];
        if resp.ok {
            answered += 1;
        } else {
            assert!(
                matches!(
                    resp.kind,
                    Some(ErrorKind::Internal)
                        | Some(ErrorKind::Overloaded)
                        | Some(ErrorKind::Unavailable)
                ),
                "id {id} must fail structurally if at all: {resp:?}"
            );
        }
    }
    assert!(answered >= 1, "the surviving worker must keep answering around the crash");

    // The connection itself survived the drill: it speaks again.
    let id = client.send(Request::health()).unwrap();
    let by_id = drain_by_id(&mut client);
    assert!(by_id[&id].health.is_some(), "health must answer on the same connection");
    server.stop();
}
