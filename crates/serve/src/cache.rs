//! Sharded, lock-striped caches of tower representations.
//!
//! RRRE's UserNet/ItemNet outputs are *pair*-dependent — the fraud
//! attention conditions on both the user's and the item's ID embedding
//! (paper Eq. 5) — so entries are keyed by the `(user, item)` pair, not by
//! the entity alone. Shard selection, however, uses only the cache's
//! *invalidation axis* (the user id for the UserNet cache, the item id for
//! the ItemNet cache): every entry that a new review for entity `e` stales
//! then lives in exactly one shard, and [`TowerCache::invalidate`] touches
//! one lock instead of all of them.
//!
//! Misses compute under the shard lock. That serialises concurrent misses
//! *within* a shard (no duplicated tower evaluations, which keeps the
//! `tower_evals` counter an exact measure of encoder-side work) while
//! leaving the other shards fully concurrent — lock striping doing its job.

use rrre_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which entity id invalidates (and therefore shards) a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheAxis {
    /// Entries stale when the *user* gains a review (UserNet cache).
    User,
    /// Entries stale when the *item* gains a review (ItemNet cache).
    Item,
}

/// A pair-keyed cache of `[1, id_dim]` tower representations.
pub struct TowerCache {
    axis: CacheAxis,
    shards: Vec<Mutex<HashMap<u64, Tensor>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn pair_key(user: u32, item: u32) -> u64 {
    (u64::from(user) << 32) | u64::from(item)
}

impl TowerCache {
    /// Creates an empty cache with `shards` independent lock stripes.
    pub fn new(axis: CacheAxis, shards: usize) -> Self {
        assert!(shards > 0, "TowerCache: need at least one shard");
        Self {
            axis,
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn entity(&self, user: u32, item: u32) -> u32 {
        match self.axis {
            CacheAxis::User => user,
            CacheAxis::Item => item,
        }
    }

    fn shard_index(&self, entity: u32) -> usize {
        // Fibonacci multiplicative spread so consecutive ids don't pile
        // into consecutive shards.
        (entity.wrapping_mul(0x9E37_79B1) as usize) % self.shards.len()
    }

    /// The cached representation for the pair, computing and storing it on
    /// a miss. `compute` runs under the pair's shard lock, so each pair is
    /// evaluated at most once between invalidations.
    pub fn get_or_compute(
        &self,
        user: u32,
        item: u32,
        compute: impl FnOnce() -> Tensor,
    ) -> Tensor {
        let shard = &self.shards[self.shard_index(self.entity(user, item))];
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&pair_key(user, item)) {
            Some(t) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                t.clone()
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let t = compute();
                map.insert(pair_key(user, item), t.clone());
                t
            }
        }
    }

    /// Drops every entry whose axis entity is `entity` — call when that
    /// entity gains (or loses) a review. Returns the number of evicted
    /// entries. Only the entity's own shard is locked.
    pub fn invalidate(&self, entity: u32) -> usize {
        let shard = &self.shards[self.shard_index(entity)];
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        let before = map.len();
        match self.axis {
            CacheAxis::User => map.retain(|k, _| (k >> 32) as u32 != entity),
            CacheAxis::Item => map.retain(|k, _| *k as u32 != entity),
        }
        before - map.len()
    }

    /// Drops everything (e.g. after a weight reload), without resetting the
    /// hit/miss counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Total cached entries across all shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f32) -> Tensor {
        Tensor::from_vec(1, 1, vec![v])
    }

    #[test]
    fn hit_after_miss_and_counters() {
        let cache = TowerCache::new(CacheAxis::User, 4);
        let a = cache.get_or_compute(1, 2, || t(7.0));
        let b = cache.get_or_compute(1, 2, || panic!("must be cached"));
        assert_eq!(a.item(), b.item());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn pairs_are_distinct_entries() {
        let cache = TowerCache::new(CacheAxis::User, 4);
        cache.get_or_compute(1, 2, || t(1.0));
        cache.get_or_compute(1, 3, || t(2.0));
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.get_or_compute(1, 3, || unreachable!()).item(), 2.0);
    }

    #[test]
    fn invalidate_user_axis_drops_all_pairs_of_that_user() {
        let cache = TowerCache::new(CacheAxis::User, 4);
        cache.get_or_compute(1, 2, || t(1.0));
        cache.get_or_compute(1, 3, || t(2.0));
        cache.get_or_compute(9, 2, || t(3.0));
        assert_eq!(cache.invalidate(1), 2);
        assert_eq!(cache.entries(), 1);
        // The survivor is untouched.
        assert_eq!(cache.get_or_compute(9, 2, || unreachable!()).item(), 3.0);
        // The invalidated pair recomputes.
        assert_eq!(cache.get_or_compute(1, 2, || t(8.0)).item(), 8.0);
    }

    #[test]
    fn invalidate_item_axis_uses_the_low_half() {
        let cache = TowerCache::new(CacheAxis::Item, 3);
        cache.get_or_compute(1, 2, || t(1.0));
        cache.get_or_compute(5, 2, || t(2.0));
        cache.get_or_compute(5, 6, || t(3.0));
        assert_eq!(cache.invalidate(2), 2);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = TowerCache::new(CacheAxis::Item, 2);
        cache.get_or_compute(1, 2, || t(1.0));
        cache.clear();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.misses(), 1);
    }
}
