//! Write-ahead log for streaming review ingest.
//!
//! Every accepted `IngestReview` is appended here — length-prefixed,
//! CRC-checksummed, fsync'd per [`FsyncPolicy`] — *before* the client sees
//! an ack, so an acked review survives any crash. The refresh worker and
//! the compactor both read the log back through [`replay_and_repair`],
//! which distinguishes the two ways a log can be damaged:
//!
//! * **Torn tail** — the process (or machine) died mid-append and the last
//!   segment ends in an incomplete record. Appends are strictly
//!   sequential, so an incomplete *suffix* is exactly what a crash
//!   produces; the tail is truncated at the last good record and recovery
//!   proceeds (`wal_recoveries` counts these).
//! * **Mid-log corruption** — a record is bytewise *complete* but its CRC
//!   (or its JSON payload) doesn't check out. A sequential append can
//!   never leave that shape behind; it is bit rot or tampering, and
//!   replay fails closed with a structured [`WalError::Corrupt`] rather
//!   than guessing which reviews to drop.
//!
//! On-disk record framing (all integers little-endian):
//!
//! ```text
//! [ payload_len: u32 ][ crc32(payload): u32 ][ payload: JSON WalRecord ]
//! ```
//!
//! Segments are `seg-NNNNNNNN.log` files under the WAL directory, rotated
//! at a size threshold so the compactor can drop *applied* segments with
//! whole-file deletes instead of rewriting a log in place.
//!
//! The module also owns the two sidecar pieces of the exactly-once story:
//! [`SeqSet`], the merged-range set of client sequence ids the server has
//! durably accepted (duplicates are re-acked, never re-applied), and the
//! two-phase `<artifact>.next` + `COMMIT` protocol the compactor uses so
//! the folded dataset and the [`IngestLedger`] recording what was folded
//! commit *atomically* — there is no window where the artifact says one
//! thing and the ledger another.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// One ingested review as logged. `seq` is the *client-supplied* sequence
/// id that makes retries idempotent; everything else is the review payload
/// exactly as it will be folded into the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Client-supplied idempotency sequence id.
    pub seq: u64,
    /// Dense user id (must be inside the artifact's id space).
    pub user: u32,
    /// Dense item id (must be inside the artifact's id space).
    pub item: u32,
    /// Star rating in `[1, 5]`.
    pub rating: f32,
    /// Review timestamp (dataset time axis).
    pub ts: i64,
    /// Review text.
    pub text: String,
}

/// Why a WAL could not be replayed (or written).
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A bytewise-complete record failed its CRC or payload check — bit
    /// rot, not a torn write — so replay refuses to guess and fails
    /// closed. The fields pinpoint the damage for the operator.
    Corrupt {
        /// Segment file name containing the bad record.
        segment: String,
        /// Byte offset of the record header inside the segment.
        offset: u64,
        /// What exactly failed (CRC mismatch, bad JSON, ...).
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { segment, offset, detail } => {
                write!(f, "wal corrupt: {segment} at byte {offset}: {detail}")
            }
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// When appended records reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — an ack means the review is on disk.
    /// The durability default.
    EveryRecord,
    /// `fsync` once per `every` records (and on rotation/explicit sync).
    /// Acks between syncs are *not* yet durable — a throughput knob for
    /// benchmarking, documented as relaxed.
    Batched {
        /// Records between forced syncs.
        every: usize,
    },
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise —
/// dependency-free and plenty fast for review-sized payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

const RECORD_HEADER: usize = 8;
/// Sanity bound on a single record's payload; anything larger is framing
/// garbage (review text is capped far below this by the wire layer).
const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

fn segment_name(index: u64) -> String {
    format!("seg-{index:08}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// Lists the WAL's segment files, sorted by index. A missing directory is
/// an empty log.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((idx, entry.path()));
        }
    }
    out.sort_by_key(|(idx, _)| *idx);
    Ok(out)
}

fn encode_record(rec: &WalRecord) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(rec).map_err(io::Error::other)?;
    let payload = payload.as_bytes();
    let mut buf = Vec::with_capacity(RECORD_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Appends records to the log, rotating segments at a size threshold.
pub struct WalWriter {
    dir: PathBuf,
    segment_bytes: u64,
    policy: FsyncPolicy,
    file: File,
    seg_index: u64,
    written: u64,
    since_sync: usize,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL under `dir`, appending to the
    /// newest existing segment. Run [`replay_and_repair`] *first* so a
    /// torn tail is truncated before new records land after it.
    pub fn open(dir: &Path, segment_bytes: u64, policy: FsyncPolicy) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let (seg_index, path) = match segments.last() {
            Some((idx, path)) => (*idx, path.clone()),
            None => (0, dir.join(segment_name(0))),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(Self { dir: dir.to_path_buf(), segment_bytes, policy, file, seg_index, written, since_sync: 0 })
    }

    /// Appends one record, honouring the fsync policy; returns the bytes
    /// written (for the `wal_bytes` counter). After `append` returns under
    /// [`FsyncPolicy::EveryRecord`], the record is durable.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<u64> {
        if self.written >= self.segment_bytes {
            self.rotate()?;
        }
        let buf = encode_record(rec)?;
        self.file.write_all(&buf)?;
        self.written += buf.len() as u64;
        self.since_sync += 1;
        match self.policy {
            FsyncPolicy::EveryRecord => self.sync()?,
            FsyncPolicy::Batched { every } => {
                if self.since_sync >= every.max(1) {
                    self.sync()?;
                }
            }
        }
        Ok(buf.len() as u64)
    }

    /// Forces pending appends to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.since_sync > 0 {
            self.file.sync_data()?;
            self.since_sync = 0;
        }
        Ok(())
    }

    /// Syncs and closes the current segment and starts the next one.
    /// Returns the new segment's index. The compactor rotates before
    /// snapshotting so records that arrive *during* compaction land in a
    /// segment it will not truncate.
    pub fn rotate(&mut self) -> io::Result<u64> {
        self.sync()?;
        self.seg_index += 1;
        let path = self.dir.join(segment_name(self.seg_index));
        self.file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.written = 0;
        Ok(self.seg_index)
    }

    /// Index of the segment currently being appended to.
    pub fn current_segment(&self) -> u64 {
        self.seg_index
    }
}

/// What a replay recovered.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every intact record, in append order across all segments.
    pub records: Vec<WalRecord>,
    /// Torn-tail truncations performed (the `wal_recoveries` counter).
    /// Mid-log corruption is *not* counted here — it fails closed.
    pub truncated_tails: u64,
    /// Total intact bytes scanned (seeds the `wal_bytes` counter).
    pub bytes: u64,
}

/// Reads one little-endian `u32` header field at `at`, turning a
/// short-by-construction slice into a structured corruption error instead
/// of a panic. Callers bound-check `remaining` first, so hitting the error
/// path means the framing arithmetic itself disagrees with the bytes — a
/// shape worth reporting precisely, never unwrapping over.
fn read_header_u32(bytes: &[u8], at: usize, segment: &str, what: &str) -> Result<u32, WalError> {
    let field = at
        .checked_add(4)
        .and_then(|end| bytes.get(at..end))
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .ok_or_else(|| WalError::Corrupt {
            segment: segment.to_string(),
            offset: at as u64,
            detail: format!("record {what} extends past the segment end"),
        })?;
    Ok(u32::from_le_bytes(field))
}

/// Replays every segment, repairing a torn tail in place.
///
/// Only the *final* segment may legitimately end mid-record (appends are
/// sequential and rotation syncs); an incomplete suffix there is truncated
/// at the last good record and counted. Any complete-but-invalid record —
/// in any segment — fails closed with [`WalError::Corrupt`].
pub fn replay_and_repair(dir: &Path) -> Result<Recovery, WalError> {
    let segments = list_segments(dir)?;
    let mut out = Recovery::default();
    let last = segments.len().saturating_sub(1);
    for (pos, (_, path)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let remaining = bytes.len() - offset;
            // An incomplete suffix: header or payload cut short. A *complete*
            // header advertising an impossible payload is handled separately
            // below — the writer never produces such a record, so it is
            // framing garbage, not a torn write.
            let torn = if remaining < RECORD_HEADER {
                true
            } else {
                let len = read_header_u32(&bytes, offset, &name, "length prefix")?;
                if len > MAX_PAYLOAD {
                    // Fail closed *before* attempting the allocation, in any
                    // segment including the final one: truncating here would
                    // silently discard whatever valid-looking bytes follow
                    // the garbage header.
                    return Err(WalError::Corrupt {
                        segment: name,
                        offset: offset as u64,
                        detail: format!(
                            "length prefix {len} exceeds the {MAX_PAYLOAD}-byte record cap"
                        ),
                    });
                }
                (len as usize) > remaining - RECORD_HEADER
            };
            if torn {
                if pos != last {
                    return Err(WalError::Corrupt {
                        segment: name,
                        offset: offset as u64,
                        detail: format!("incomplete record in a non-final segment ({remaining} trailing bytes)"),
                    });
                }
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(offset as u64)?;
                file.sync_data()?;
                out.truncated_tails += 1;
                break;
            }
            let len = read_header_u32(&bytes, offset, &name, "length prefix")? as usize;
            let stored_crc = read_header_u32(&bytes, offset + 4, &name, "crc field")?;
            let payload = &bytes[offset + RECORD_HEADER..offset + RECORD_HEADER + len];
            let actual_crc = crc32(payload);
            if actual_crc != stored_crc {
                // The record is bytewise complete: a crash cannot have
                // produced this, so it is corruption — fail closed.
                return Err(WalError::Corrupt {
                    segment: name,
                    offset: offset as u64,
                    detail: format!("crc mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"),
                });
            }
            let text = std::str::from_utf8(payload).map_err(|e| WalError::Corrupt {
                segment: name.clone(),
                offset: offset as u64,
                detail: format!("payload is not utf-8: {e}"),
            })?;
            let rec: WalRecord = serde_json::from_str(text).map_err(|e| WalError::Corrupt {
                segment: name.clone(),
                offset: offset as u64,
                detail: format!("payload is not a WalRecord: {e}"),
            })?;
            out.records.push(rec);
            offset += RECORD_HEADER + len;
            out.bytes += (RECORD_HEADER + len) as u64;
        }
    }
    Ok(out)
}

/// Deletes every segment with index strictly below `below` — the
/// compactor's cleanup once a fold has committed. Deleting whole applied
/// segments (never rewriting live ones) keeps truncation crash-safe: a
/// crash mid-cleanup just leaves already-applied segments whose records
/// the ledger will dedupe on replay.
pub fn remove_segments_below(dir: &Path, below: u64) -> io::Result<u64> {
    let mut removed = 0;
    for (idx, path) in list_segments(dir)? {
        if idx < below {
            fs::remove_file(path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// One inclusive range of accepted sequence ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqRange {
    /// First id in the range.
    pub start: u64,
    /// Last id in the range (inclusive).
    pub end: u64,
}

/// A set of `u64` sequence ids stored as sorted, disjoint, inclusive
/// ranges — the accepted-set stays O(number of gaps) no matter how many
/// reviews stream in, and serialises compactly into the ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqSet {
    ranges: Vec<SeqRange>,
}

impl SeqSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `seq` is present.
    pub fn contains(&self, seq: u64) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if seq < r.start {
                    std::cmp::Ordering::Greater
                } else if seq > r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Inserts `seq`; returns `false` if it was already present (the
    /// duplicate-delivery signal).
    pub fn insert(&mut self, seq: u64) -> bool {
        if self.contains(seq) {
            return false;
        }
        let pos = self.ranges.partition_point(|r| r.start < seq);
        self.ranges.insert(pos, SeqRange { start: seq, end: seq });
        // Merge with the neighbour on either side where adjacent.
        if pos + 1 < self.ranges.len() && self.ranges[pos].end + 1 == self.ranges[pos + 1].start {
            self.ranges[pos].end = self.ranges[pos + 1].end;
            self.ranges.remove(pos + 1);
        }
        if pos > 0 && self.ranges[pos - 1].end + 1 == self.ranges[pos].start {
            self.ranges[pos - 1].end = self.ranges[pos].end;
            self.ranges.remove(pos);
        }
        true
    }

    /// Inserts every seq of `other`.
    pub fn extend_from(&mut self, other: &SeqSet) {
        for r in &other.ranges {
            for seq in r.start..=r.end {
                self.insert(seq);
            }
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|r| r.end - r.start + 1).sum()
    }

    /// Whether no id is present.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// File inside the artifact directory recording which sequence ids have
/// been *folded into the artifact* by compaction. It lives next to the
/// manifest on purpose: the two-phase commit renames them into place
/// together, so "what the dataset contains" and "what the ledger says it
/// contains" can never diverge across a crash.
pub const LEDGER_FILE: &str = "ingest_ledger.json";

/// The durable compaction ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IngestLedger {
    /// Sequence ids already folded into the artifact's dataset.
    pub applied: SeqSet,
    /// First WAL segment index *not yet* folded; segments below this are
    /// safe to delete.
    pub segment_watermark: u64,
}

/// Loads the ledger from an artifact directory (absent file → empty).
pub fn load_ledger(artifact_dir: &Path) -> io::Result<IngestLedger> {
    let path = artifact_dir.join(LEDGER_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad ingest ledger: {e}"))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(IngestLedger::default()),
        Err(e) => Err(e),
    }
}

/// Writes the ledger atomically (tmp + rename + dir implied by rename on
/// the same filesystem) into `dir`.
pub fn save_ledger(dir: &Path, ledger: &IngestLedger) -> io::Result<()> {
    let json = serde_json::to_string(ledger).map_err(io::Error::other)?;
    let tmp = dir.join(format!("{LEDGER_FILE}.tmp"));
    let mut f = File::create(&tmp)?;
    f.write_all(json.as_bytes())?;
    f.sync_data()?;
    fs::rename(&tmp, dir.join(LEDGER_FILE))?;
    Ok(())
}

/// Staging directory of the two-phase artifact commit: a sibling of the
/// artifact directory named `<artifact>.next`.
pub fn staging_dir(artifact_dir: &Path) -> PathBuf {
    let mut name = artifact_dir.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".next");
    artifact_dir.with_file_name(name)
}

/// Commit marker: once this file exists (and is fsync'd) inside the
/// staging dir, the new generation is decided and recovery must roll it
/// forward; before it exists, recovery rolls the staging dir back.
pub const COMMIT_MARKER: &str = "COMMIT";

/// Phase one's final step: fsync every staged file, then create + fsync
/// the `COMMIT` marker. After this returns, the fold is decided.
pub fn seal_staging(staging: &Path) -> io::Result<()> {
    for entry in fs::read_dir(staging)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            File::open(entry.path())?.sync_data()?;
        }
    }
    let marker = File::create(staging.join(COMMIT_MARKER))?;
    marker.sync_data()?;
    Ok(())
}

/// Phase two: move every staged file into the artifact directory — the
/// manifest *last*, so a crash mid-rename leaves an old manifest whose
/// checksums still describe files that are about to be (or were already)
/// replaced, and the `COMMIT` marker routes recovery back here to finish
/// the job. Idempotent: files already moved are skipped.
pub fn promote_staging(artifact_dir: &Path, manifest_file: &str) -> io::Result<()> {
    let staging = staging_dir(artifact_dir);
    let mut files: Vec<PathBuf> = Vec::new();
    let mut manifest: Option<PathBuf> = None;
    for entry in fs::read_dir(&staging)? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_str() == Some(COMMIT_MARKER) {
            continue;
        }
        if name.to_str() == Some(manifest_file) {
            manifest = Some(entry.path());
        } else {
            files.push(entry.path());
        }
    }
    for src in files {
        fs::rename(&src, artifact_dir.join(src.file_name().unwrap()))?;
    }
    if let Some(src) = manifest {
        fs::rename(&src, artifact_dir.join(manifest_file))?;
    }
    fs::remove_file(staging.join(COMMIT_MARKER))?;
    fs::remove_dir_all(&staging)?;
    Ok(())
}

/// Crash recovery for the two-phase commit, run *before* the artifact is
/// loaded. Returns `true` if a decided fold was rolled forward.
pub fn recover_staging(artifact_dir: &Path, manifest_file: &str) -> io::Result<bool> {
    let staging = staging_dir(artifact_dir);
    if !staging.exists() {
        return Ok(false);
    }
    if staging.join(COMMIT_MARKER).exists() {
        promote_staging(artifact_dir, manifest_file)?;
        Ok(true)
    } else {
        // Phase one never finished: the fold was not decided — discard.
        fs::remove_dir_all(&staging)?;
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rrre-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(seq: u64) -> WalRecord {
        WalRecord { seq, user: 1, item: 2, rating: 4.0, ts: 100 + seq as i64, text: format!("review {seq}") }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_replay_roundtrip_across_rotation() {
        let dir = tmp("roundtrip");
        let mut w = WalWriter::open(&dir, 64, FsyncPolicy::EveryRecord).unwrap();
        for seq in 0..10 {
            w.append(&rec(seq)).unwrap();
        }
        assert!(w.current_segment() > 0, "64-byte segments must have rotated");
        let r = replay_and_repair(&dir).unwrap();
        assert_eq!(r.records.len(), 10);
        assert_eq!(r.truncated_tails, 0);
        assert_eq!(r.records.iter().map(|r| r.seq).collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
        assert_eq!(r.records[3], rec(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_writer_appends_after_existing_records() {
        let dir = tmp("reopen");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        w.append(&rec(0)).unwrap();
        drop(w);
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        w.append(&rec(1)).unwrap();
        let r = replay_and_repair(&dir).unwrap();
        assert_eq!(r.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = tmp("torn");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        for seq in 0..3 {
            w.append(&rec(seq)).unwrap();
        }
        drop(w);
        let seg = dir.join(segment_name(0));
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 5).unwrap();
        let r = replay_and_repair(&dir).unwrap();
        assert_eq!(r.records.len(), 2, "torn final record dropped");
        assert_eq!(r.truncated_tails, 1);
        // The repair is durable: a second replay is clean, and appends land
        // after the truncation point.
        let r2 = replay_and_repair(&dir).unwrap();
        assert_eq!(r2.truncated_tails, 0);
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        w.append(&rec(9)).unwrap();
        let r3 = replay_and_repair(&dir).unwrap();
        assert_eq!(r3.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 9]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn complete_record_with_bad_crc_fails_closed() {
        let dir = tmp("flip");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        for seq in 0..3 {
            w.append(&rec(seq)).unwrap();
        }
        drop(w);
        // Flip one payload byte of the *middle* record.
        let seg = dir.join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let mid_payload = RECORD_HEADER + first_len + RECORD_HEADER + 2;
        bytes[mid_payload] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        match replay_and_repair(&dir) {
            Err(WalError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset as usize, RECORD_HEADER + first_len);
                assert!(detail.contains("crc mismatch"), "{detail}");
            }
            other => panic!("expected fail-closed corruption, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_length_prefix_fails_closed_even_in_the_final_segment() {
        let dir = tmp("hugelen");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        w.append(&rec(0)).unwrap();
        drop(w);
        // A bytewise-complete header whose length prefix exceeds the record
        // cap: framing garbage, not a torn write. Replay must refuse before
        // attempting the (up to 4 GiB) allocation — and must NOT repair it
        // away as a torn tail, even though this is the final segment.
        let seg = dir.join(segment_name(0));
        let good_len = fs::metadata(&seg).unwrap().len();
        let mut garbage = (MAX_PAYLOAD + 1).to_le_bytes().to_vec();
        garbage.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&garbage).unwrap();
        drop(f);
        match replay_and_repair(&dir) {
            Err(WalError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset, good_len);
                assert!(detail.contains("record cap"), "{detail}");
            }
            other => panic!("expected fail-closed corruption, got {other:?}"),
        }
        // Fail closed means no repair happened: the segment is untouched.
        assert_eq!(fs::metadata(&seg).unwrap().len(), good_len + 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_trailing_header_is_still_a_torn_tail() {
        let dir = tmp("shorthdr");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        w.append(&rec(0)).unwrap();
        drop(w);
        // Fewer than RECORD_HEADER trailing bytes is exactly what a crash
        // mid-header-write leaves behind: repaired, not refused.
        let seg = dir.join(segment_name(0));
        let good_len = fs::metadata(&seg).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0x01, 0x02, 0x03]).unwrap();
        drop(f);
        let r = replay_and_repair(&dir).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.truncated_tails, 1);
        assert_eq!(fs::metadata(&seg).unwrap().len(), good_len);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_record_in_non_final_segment_fails_closed() {
        let dir = tmp("midseg");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        w.append(&rec(0)).unwrap();
        w.rotate().unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        let seg0 = dir.join(segment_name(0));
        let len = fs::metadata(&seg0).unwrap().len();
        OpenOptions::new().write(true).open(&seg0).unwrap().set_len(len - 3).unwrap();
        assert!(matches!(replay_and_repair(&dir), Err(WalError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_fsync_still_replays_whats_written() {
        let dir = tmp("batched");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::Batched { every: 4 }).unwrap();
        for seq in 0..6 {
            w.append(&rec(seq)).unwrap();
        }
        w.sync().unwrap();
        let r = replay_and_repair(&dir).unwrap();
        assert_eq!(r.records.len(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_segments_below_keeps_the_watermark() {
        let dir = tmp("trunc");
        let mut w = WalWriter::open(&dir, 1 << 20, FsyncPolicy::EveryRecord).unwrap();
        w.append(&rec(0)).unwrap();
        w.rotate().unwrap();
        w.append(&rec(1)).unwrap();
        w.rotate().unwrap();
        w.append(&rec(2)).unwrap();
        drop(w);
        assert_eq!(remove_segments_below(&dir, 2).unwrap(), 2);
        let r = replay_and_repair(&dir).unwrap();
        assert_eq!(r.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seqset_insert_dedup_merge_and_serde() {
        let mut s = SeqSet::new();
        assert!(s.insert(5));
        assert!(s.insert(3));
        assert!(s.insert(4), "fills the gap");
        assert!(!s.insert(4), "duplicate detected");
        assert!(s.insert(1));
        assert_eq!(s.len(), 4);
        assert!(s.contains(3) && s.contains(5) && !s.contains(2) && !s.contains(6));
        // 3..=5 merged into one range, 1 separate.
        assert_eq!(s.ranges, vec![SeqRange { start: 1, end: 1 }, SeqRange { start: 3, end: 5 }]);
        let json = serde_json::to_string(&s).unwrap();
        let back: SeqSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let mut t = SeqSet::new();
        t.insert(2);
        t.extend_from(&s);
        assert_eq!(t.len(), 5);
        assert_eq!(t.ranges, vec![SeqRange { start: 1, end: 5 }]);
    }

    #[test]
    fn ledger_roundtrips_and_defaults_when_absent() {
        let dir = tmp("ledger");
        assert!(load_ledger(&dir).unwrap().applied.is_empty());
        let mut ledger = IngestLedger::default();
        ledger.applied.insert(7);
        ledger.segment_watermark = 3;
        save_ledger(&dir, &ledger).unwrap();
        let back = load_ledger(&dir).unwrap();
        assert!(back.applied.contains(7));
        assert_eq!(back.segment_watermark, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staging_rolls_forward_only_after_commit_marker() {
        let artifact = tmp("twophase");
        fs::write(artifact.join("manifest.json"), b"old").unwrap();
        fs::write(artifact.join("data.bin"), b"old-data").unwrap();

        // Undecided fold (no COMMIT): rolled back wholesale.
        let staging = staging_dir(&artifact);
        fs::create_dir_all(&staging).unwrap();
        fs::write(staging.join("data.bin"), b"half-written").unwrap();
        assert!(!recover_staging(&artifact, "manifest.json").unwrap());
        assert!(!staging.exists());
        assert_eq!(fs::read(artifact.join("data.bin")).unwrap(), b"old-data");

        // Decided fold: rolled forward, marker and staging dir gone.
        fs::create_dir_all(&staging).unwrap();
        fs::write(staging.join("data.bin"), b"new-data").unwrap();
        fs::write(staging.join("manifest.json"), b"new").unwrap();
        seal_staging(&staging).unwrap();
        assert!(recover_staging(&artifact, "manifest.json").unwrap());
        assert!(!staging.exists());
        assert_eq!(fs::read(artifact.join("data.bin")).unwrap(), b"new-data");
        assert_eq!(fs::read(artifact.join("manifest.json")).unwrap(), b"new");

        // Recovery is also idempotent when interrupted mid-promote: simulate
        // a crash where some files moved but the marker survived.
        fs::create_dir_all(&staging).unwrap();
        fs::write(staging.join("manifest.json"), b"newer").unwrap();
        seal_staging(&staging).unwrap();
        assert!(recover_staging(&artifact, "manifest.json").unwrap());
        assert_eq!(fs::read(artifact.join("manifest.json")).unwrap(), b"newer");
        assert_eq!(fs::read(artifact.join("data.bin")).unwrap(), b"new-data");
        fs::remove_dir_all(&artifact).unwrap();
    }
}
